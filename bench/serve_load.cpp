// serve_load: closed-loop load generator for the full prm::serve stack over
// real loopback sockets, reporting throughput AND latency percentiles.
//
// Unlike serve_throughput (a fixed batch, wall-clock only), serve_load runs
// each (mix, connections) cell for a fixed duration against a fresh server,
// timestamps every round trip, and reports p50/p95/p99 per cell -- the
// numbers a capacity plan actually needs. Four request mixes:
//
//  * cached  -- POST /v1/fit round-robining over K pre-primed series: every
//               request is a fit-cache hit, so this measures the HTTP + JSON
//               + cache-lookup path (the sharded-serving hot loop).
//  * cold    -- POST /v1/fit with a globally unique jittered series per
//               request: every request runs the multistart optimizer.
//  * ingest  -- alternating POST /v1/streams/{s}/ingest and GET
//               /v1/streams/{s} on a per-connection stream: the live-monitor
//               path (sharded registry + refit scheduling).
//  * ingest_wal -- the same ingest traffic with a write-ahead log on a temp
//               directory (group commit, interval fsync): what durability
//               costs on the live path. Compare against ingest for the
//               WAL's acknowledged-write overhead.
//  * bulk_ingest -- alternating POST /v1/streams/{s}/ingest-batch (16
//               samples per request, one stream lock + one WAL record per
//               batch) and GET /v1/streams/{s}: the batched-append path.
//               Compare samples/sec against ingest for the batching win.
//
// --json emits the same schema compare_bench.py consumes (one entry per
// cell, mean latency as cpu_time/real_time in us), so the CI regression gate
// can diff runs; rps/p50/p95/p99/samples_per_sec ride along as extra
// fields, and the context block carries the summed buffer-pool / vectored-
// write counters the server reported across all cells.
#include <arpa/inet.h>
#include <dirent.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "data/recessions.hpp"
#include "report/table.hpp"
#include "serve/handlers.hpp"
#include "serve/http.hpp"
#include "serve/json.hpp"
#include "serve/poller.hpp"
#include "serve/server.hpp"
#include "wal/log.hpp"

namespace {

using namespace prm;
using Clock = std::chrono::steady_clock;

struct Options {
  double seconds = 3.0;
  std::vector<std::size_t> connections = {1, 4, 16, 64, 256, 1024};
  std::vector<std::string> mixes = {"cached", "cold", "ingest"};
  std::size_t cached_series = 64;  ///< Distinct pre-primed series in the cached mix.
  std::size_t server_threads = 0;  ///< 0 = one worker per connection (capped at 16).
  std::size_t event_threads = 0;   ///< 0 = server default.
  std::string json_path;
};

/// Fit-request body for the 1990-93 recession with every value nudged by a
/// distinct epsilon: bit-different doubles hash to a fresh fit-cache key
/// while the optimization problem stays numerically identical in difficulty.
std::string jittered_body(long variant) {
  const data::RecessionDataset& dataset = data::recession("1990-93");
  serve::Json series = serve::Json::object();
  serve::Json times = serve::Json::array();
  for (const double t : dataset.series.times()) times.push_back(serve::Json(t));
  serve::Json values = serve::Json::array();
  const double epsilon = 1e-9 * static_cast<double>(variant);
  for (const double v : dataset.series.values()) {
    values.push_back(serve::Json(v + epsilon));
  }
  series["times"] = std::move(times);
  series["values"] = std::move(values);
  serve::Json body = serve::Json::object();
  body["series"] = std::move(series);
  body["model"] = serve::Json("competing-risks");
  body["holdout"] = serve::Json(dataset.holdout);
  return body.dump();
}

/// Scratch WAL directory for the ingest_wal mix; removed (recursively) when
/// the cell ends. Declared before the App so it outlives the monitor's final
/// checkpoint.
class WalDir {
 public:
  WalDir() {
    const char* base = std::getenv("TMPDIR");
    path_ = std::string(base != nullptr ? base : "/tmp") + "/prm_load_wal_XXXXXX";
    if (::mkdtemp(path_.data()) == nullptr) {
      std::fprintf(stderr, "serve_load: mkdtemp failed\n");
      std::exit(1);
    }
  }
  ~WalDir() { remove_tree(path_); }
  const std::string& path() const { return path_; }

 private:
  static void remove_tree(const std::string& dir) {
    if (DIR* handle = ::opendir(dir.c_str())) {
      while (const dirent* entry = ::readdir(handle)) {
        const std::string name = entry->d_name;
        if (name == "." || name == "..") continue;
        ::unlink((dir + "/" + name).c_str());  // WAL dirs hold only flat files
      }
      ::closedir(handle);
    }
    ::rmdir(dir.c_str());
  }

  std::string path_;
};

/// Samples per POST in the bulk_ingest mix. 16 amortizes the route + lock +
/// WAL-append cost without distorting per-request latency past what a real
/// telemetry shipper would batch.
constexpr long kBatchSamples = 16;

/// One monotone V-shaped sample for the ingest mix: dip, trough, recovery,
/// then a long nominal tail so each stream walks the full phase machine once.
double ingest_value(long i) {
  const double t = static_cast<double>(i % 64);
  if (t < 8.0) return 1.0 + 0.001 * t;
  if (t < 20.0) return 1.0 - 0.03 * (t - 8.0);
  if (t < 44.0) return 0.64 + 0.015 * (t - 20.0);
  return 1.0 + 0.0005 * (t - 44.0);
}

struct CellResult {
  std::string mix;
  std::size_t connections = 0;
  std::size_t requests = 0;
  std::uint64_t samples = 0;  ///< Samples ingested (ingest-flavored mixes only).
  double seconds = 0.0;
  double mean_us = 0.0;
  double p50_us = 0.0;
  double p95_us = 0.0;
  double p99_us = 0.0;
  serve::ServerStats server;  ///< Snapshot taken just before the cell's stop().
  double rps() const {
    return seconds > 0.0 ? static_cast<double>(requests) / seconds : 0.0;
  }
  double samples_per_sec() const {
    return seconds > 0.0 ? static_cast<double>(samples) / seconds : 0.0;
  }
};

double percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const double rank = q * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

/// Run one (mix, connections) cell against a fresh App + Server.
CellResult run_cell(const std::string& mix, std::size_t connections,
                    const Options& options) {
  std::unique_ptr<WalDir> wal_dir;
  serve::AppOptions app_options;
  if (mix == "ingest_wal") {
    wal_dir = std::make_unique<WalDir>();
    app_options.monitor.wal.dir = wal_dir->path();
    app_options.monitor.wal.fsync = wal::FsyncPolicy::kInterval;
  }
  serve::App app(app_options);
  serve::ServerOptions server_options;
  server_options.port = 0;
  server_options.threads = options.server_threads > 0
                               ? options.server_threads
                               : std::min<std::size_t>(connections, 16);
  server_options.max_pending = std::max<std::size_t>(connections * 2, 64);
  if (options.event_threads > 0) server_options.event_threads = options.event_threads;
  serve::Server server(server_options, app.async_handler());
  server.start();

  // Cached mix: prime every distinct series once so the timed run is hits only.
  std::vector<std::string> cached_bodies;
  if (mix == "cached") {
    cached_bodies.reserve(options.cached_series);
    serve::http::Client primer("127.0.0.1", server.port());
    for (std::size_t i = 0; i < options.cached_series; ++i) {
      cached_bodies.push_back(jittered_body(static_cast<long>(i + 1)));
      const serve::http::Response response =
          primer.post_json("/v1/fit", cached_bodies.back());
      if (response.status != 200) {
        std::fprintf(stderr, "serve_load: prime failed: %s\n", response.body.c_str());
        std::exit(1);
      }
    }
  }

  std::atomic<long> cold_counter{1000000};  // distinct from every primed body
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> errors{0};
  std::vector<std::vector<double>> latencies(connections);
  std::vector<std::uint64_t> samples_ok(connections, 0);
  for (auto& per_client : latencies) per_client.reserve(1 << 16);

  // The client side is event-driven too. Thread-per-connection load
  // generation pays a scheduler context switch per round trip, which on a
  // small machine bills the harness's own wakeup overhead to the server
  // under test. A few poller-driven threads multiplex every connection
  // instead -- still closed-loop (each connection has exactly one request in
  // flight; the next is sent only after the response completes), so the
  // latency semantics are unchanged while the client CPU goes to send/recv.
  const std::string host_hdr = "127.0.0.1:" + std::to_string(server.port());
  std::vector<std::string> cached_wires;  // full prebuilt wire bytes per series
  if (mix == "cached") {
    cached_wires.reserve(cached_bodies.size());
    for (const std::string& body : cached_bodies) {
      serve::http::Request r;
      r.method = "POST";
      r.target = "/v1/fit";
      r.headers["Content-Type"] = "application/json";
      r.body = body;
      cached_wires.push_back(serve::http::serialize(r, host_hdr));
    }
  }
  const std::size_t client_threads =
      std::clamp<std::size_t>(connections / 128, 1, 4);

  const auto started = Clock::now();
  std::vector<std::thread> clients;
  clients.reserve(client_threads);
  for (std::size_t ct = 0; ct < client_threads; ++ct) {
    clients.emplace_back([&, ct] {
      struct Conn {
        int fd = -1;
        std::size_t index = 0;  ///< Global connection index (stream id).
        long i = 0;
        long next_t = 0;  ///< Per-stream sample clock (strictly increasing).
        std::uint64_t pending_samples = 0;
        std::string scratch;   ///< Owned wire bytes for per-request bodies.
        std::string get_wire;  ///< Prebuilt GET for this connection's stream.
        std::string_view out;  ///< Unsent remainder of the current request.
        bool sending = true;
        bool write_armed = false;
        serve::http::ResponseParser parser;
        Clock::time_point t0;
      };

      auto build_request = [&](Conn& conn) {
        conn.t0 = Clock::now();
        conn.pending_samples = 0;
        if (mix == "cached") {
          conn.out =
              cached_wires[static_cast<std::size_t>(conn.i) % cached_wires.size()];
          return;
        }
        if (mix == "cold") {
          serve::http::Request r;
          r.method = "POST";
          r.target = "/v1/fit";
          r.headers["Content-Type"] = "application/json";
          r.body = jittered_body(cold_counter.fetch_add(1));
          conn.scratch = serve::http::serialize(r, host_hdr);
          conn.out = conn.scratch;
          return;
        }
        // Ingest-flavored mixes alternate a stream POST with a stream GET.
        if (conn.i % 2 != 0) {
          conn.out = conn.get_wire;
          return;
        }
        serve::http::Request r;
        r.method = "POST";
        r.headers["Content-Type"] = "application/json";
        const std::string stream = "/v1/streams/s" + std::to_string(conn.index);
        if (mix == "bulk_ingest") {
          r.target = stream + "/ingest-batch";
          std::string body = "{\"samples\":[";
          for (long k = 0; k < kBatchSamples; ++k) {
            if (k > 0) body += ',';
            body += '[' + std::to_string(conn.next_t + k) + ',' +
                    std::to_string(ingest_value(conn.next_t + k)) + ']';
          }
          body += "]}";
          conn.next_t += kBatchSamples;
          conn.pending_samples = static_cast<std::uint64_t>(kBatchSamples);
          r.body = std::move(body);
        } else {
          r.target = stream + "/ingest";
          r.body = "{\"t\":" + std::to_string(conn.next_t) + ",\"value\":" +
                   std::to_string(ingest_value(conn.next_t)) + "}";
          ++conn.next_t;
          conn.pending_samples = 1;
        }
        conn.scratch = serve::http::serialize(r, host_hdr);
        conn.out = conn.scratch;
      };

      std::unique_ptr<serve::Poller> poller = serve::make_poller();
      std::vector<Conn> conns;
      std::vector<std::size_t> by_fd;  // fd -> index into conns
      std::size_t live = 0;

      auto fail_conn = [&](Conn& conn) {
        ++errors;
        poller->remove(conn.fd);
        ::close(conn.fd);
        conn.fd = -1;
        --live;
      };

      /// Push out as many request bytes as the socket accepts; arms write
      /// interest only on short writes. Returns false when the conn died.
      auto try_send = [&](Conn& conn) -> bool {
        while (!conn.out.empty()) {
          const ssize_t n = ::send(conn.fd, conn.out.data(), conn.out.size(),
                                   MSG_NOSIGNAL | MSG_DONTWAIT);
          if (n > 0) {
            conn.out.remove_prefix(static_cast<std::size_t>(n));
            continue;
          }
          if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
            if (!conn.write_armed) {
              poller->modify(conn.fd, true, true);
              conn.write_armed = true;
            }
            return true;
          }
          fail_conn(conn);
          return false;
        }
        conn.sending = false;
        if (conn.write_armed) {
          poller->modify(conn.fd, true, false);
          conn.write_armed = false;
        }
        return true;
      };

      char buf[16384];
      auto on_readable = [&](Conn& conn) {
        while (conn.fd >= 0) {
          const ssize_t n = ::recv(conn.fd, buf, sizeof buf, MSG_DONTWAIT);
          if (n < 0) {
            if (errno == EAGAIN || errno == EWOULDBLOCK) return;
            fail_conn(conn);
            return;
          }
          if (n == 0) {  // server closed (e.g. overload shed)
            fail_conn(conn);
            return;
          }
          conn.parser.feed(std::string_view(buf, static_cast<std::size_t>(n)));
          if (conn.parser.failed()) {
            fail_conn(conn);
            return;
          }
          if (!conn.parser.done()) continue;
          const double us = std::chrono::duration<double, std::micro>(
                                Clock::now() - conn.t0)
                                .count();
          if (conn.parser.response().status != 200) {
            ++errors;
          } else {
            latencies[conn.index].push_back(us);
            samples_ok[conn.index] += conn.pending_samples;
          }
          conn.parser.next();
          ++conn.i;
          build_request(conn);
          conn.sending = true;
          if (!try_send(conn)) return;
        }
      };

      for (std::size_t c = ct; c < connections; c += client_threads) {
        const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_port = htons(server.port());
        ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
        if (fd < 0 ||
            ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
          ++errors;
          if (fd >= 0) ::close(fd);
          continue;
        }
        const int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
        ::fcntl(fd, F_SETFL, ::fcntl(fd, F_GETFL, 0) | O_NONBLOCK);
        Conn conn;
        conn.fd = fd;
        conn.index = c;
        {
          serve::http::Request g;
          g.method = "GET";
          g.target = "/v1/streams/s" + std::to_string(c);
          conn.get_wire = serve::http::serialize(g, host_hdr);
        }
        conns.push_back(std::move(conn));
      }
      live = conns.size();
      for (std::size_t k = 0; k < conns.size(); ++k) {
        Conn& conn = conns[k];
        if (by_fd.size() <= static_cast<std::size_t>(conn.fd)) {
          by_fd.resize(static_cast<std::size_t>(conn.fd) + 1, SIZE_MAX);
        }
        by_fd[static_cast<std::size_t>(conn.fd)] = k;
        poller->add(conn.fd, true, false);
        build_request(conn);
        try_send(conn);
      }

      std::vector<serve::PollerEvent> events;
      while (!stop.load(std::memory_order_relaxed) && live > 0) {
        poller->wait(events, 50);
        for (const serve::PollerEvent& event : events) {
          if (static_cast<std::size_t>(event.fd) >= by_fd.size()) continue;
          const std::size_t k = by_fd[static_cast<std::size_t>(event.fd)];
          if (k == SIZE_MAX) continue;
          Conn& conn = conns[k];
          if (conn.fd < 0) continue;
          if (event.error) {
            fail_conn(conn);
            continue;
          }
          if (event.writable && conn.sending && !try_send(conn)) continue;
          if (event.readable) on_readable(conn);
        }
      }

      for (Conn& conn : conns) {
        if (conn.fd >= 0) {
          poller->remove(conn.fd);
          ::close(conn.fd);
          conn.fd = -1;
        }
      }
    });
  }

  std::this_thread::sleep_for(std::chrono::duration<double>(options.seconds));
  stop.store(true);
  for (std::thread& client : clients) client.join();
  const double elapsed =
      std::chrono::duration<double>(Clock::now() - started).count();
  const serve::ServerStats server_stats = server.stats();
  server.stop();

  std::vector<double> all;
  for (const auto& per_client : latencies) {
    all.insert(all.end(), per_client.begin(), per_client.end());
  }
  std::sort(all.begin(), all.end());

  if (errors.load() > 0) {
    std::fprintf(stderr, "serve_load: %llu request error(s) in %s/conns:%zu\n",
                 static_cast<unsigned long long>(errors.load()), mix.c_str(),
                 connections);
    std::exit(1);
  }

  CellResult result;
  result.mix = mix;
  result.connections = connections;
  result.requests = all.size();
  for (const std::uint64_t n : samples_ok) result.samples += n;
  result.seconds = elapsed;
  result.server = server_stats;
  double sum = 0.0;
  for (const double v : all) sum += v;
  result.mean_us = all.empty() ? 0.0 : sum / static_cast<double>(all.size());
  result.p50_us = percentile(all, 0.50);
  result.p95_us = percentile(all, 0.95);
  result.p99_us = percentile(all, 0.99);
  return result;
}

std::vector<std::string> split_list(const std::string& text) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t comma = text.find(',', start);
    const std::size_t end = comma == std::string::npos ? text.size() : comma;
    if (end > start) out.push_back(text.substr(start, end - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

void write_json(const Options& options, const std::vector<CellResult>& results) {
  std::ofstream out(options.json_path);
  if (!out) {
    std::fprintf(stderr, "serve_load: cannot open %s\n", options.json_path.c_str());
    std::exit(1);
  }
  // Sum the per-cell server counters into the context block: the regression
  // gate diffs the benchmark entries, while the context records whether the
  // buffer pool / vectored-write path actually engaged during the run.
  std::uint64_t pool_acquired = 0;
  std::uint64_t pool_recycled = 0;
  std::uint64_t pool_misses = 0;
  std::size_t pool_high_water = 0;
  std::uint64_t writev_calls = 0;
  std::uint64_t writev_batches = 0;
  bool reuseport = false;
  for (const CellResult& r : results) {
    pool_acquired += r.server.buffer_pool.acquired;
    pool_recycled += r.server.buffer_pool.recycled;
    pool_misses += r.server.buffer_pool.misses;
    pool_high_water = std::max(pool_high_water, r.server.buffer_pool.high_water);
    writev_calls += r.server.writev_calls;
    writev_batches += r.server.writev_batches;
    reuseport = reuseport || r.server.reuseport;
  }
  out << "{\n  \"context\": {\"benchmark\": \"serve_load\", \"seconds_per_cell\": "
      << options.seconds << ", \"buffer_pool\": {\"acquired\": " << pool_acquired
      << ", \"recycled\": " << pool_recycled << ", \"misses\": " << pool_misses
      << ", \"high_water\": " << pool_high_water << "}, \"writev\": {\"calls\": "
      << writev_calls << ", \"batches\": " << writev_batches
      << "}, \"reuseport\": " << (reuseport ? "true" : "false")
      << "},\n  \"benchmarks\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const CellResult& r = results[i];
    const std::string name = "ServeLoad/" + r.mix + "/conns:" +
                             std::to_string(r.connections);
    char buf[640];
    std::snprintf(buf, sizeof buf,
                  "    {\"name\": \"%s\", \"run_name\": \"%s\", "
                  "\"cpu_time\": %.3f, \"real_time\": %.3f, \"time_unit\": \"us\", "
                  "\"rps\": %.1f, \"p50_us\": %.1f, \"p95_us\": %.1f, "
                  "\"p99_us\": %.1f, \"requests\": %zu, \"samples\": %llu, "
                  "\"samples_per_sec\": %.1f}%s\n",
                  name.c_str(), name.c_str(), r.mean_us, r.mean_us, r.rps(),
                  r.p50_us, r.p95_us, r.p99_us, r.requests,
                  static_cast<unsigned long long>(r.samples), r.samples_per_sec(),
                  i + 1 < results.size() ? "," : "");
    out << buf;
  }
  out << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* flag) -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "serve_load: missing value for %s\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--seconds") {
      options.seconds = std::atof(next("--seconds").c_str());
    } else if (arg == "--connections") {
      options.connections.clear();
      for (const std::string& item : split_list(next("--connections"))) {
        options.connections.push_back(
            static_cast<std::size_t>(std::atol(item.c_str())));
      }
    } else if (arg == "--mix") {
      options.mixes = split_list(next("--mix"));
    } else if (arg == "--cached-series") {
      options.cached_series =
          static_cast<std::size_t>(std::atol(next("--cached-series").c_str()));
    } else if (arg == "--server-threads") {
      options.server_threads =
          static_cast<std::size_t>(std::atol(next("--server-threads").c_str()));
    } else if (arg == "--event-threads") {
      options.event_threads =
          static_cast<std::size_t>(std::atol(next("--event-threads").c_str()));
    } else if (arg == "--json") {
      options.json_path = next("--json");
    } else {
      std::fprintf(stderr,
                   "usage: serve_load [--seconds S] [--connections 1,4,...,1024]\n"
                   "                  [--mix cached,cold,ingest,ingest_wal,bulk_ingest]\n"
                   "                  [--cached-series K]\n"
                   "                  [--server-threads N] [--event-threads N]\n"
                   "                  [--json PATH]\n");
      return 2;
    }
  }
  if (options.seconds <= 0.0 || options.connections.empty() ||
      options.mixes.empty()) {
    std::fprintf(stderr, "serve_load: nothing to run\n");
    return 2;
  }
  for (const std::string& mix : options.mixes) {
    if (mix != "cached" && mix != "cold" && mix != "ingest" &&
        mix != "ingest_wal" && mix != "bulk_ingest") {
      std::fprintf(stderr, "serve_load: unknown mix '%s'\n", mix.c_str());
      return 2;
    }
  }

  std::vector<CellResult> results;
  for (const std::string& mix : options.mixes) {
    for (const std::size_t connections : options.connections) {
      results.push_back(run_cell(mix, connections, options));
      const CellResult& r = results.back();
      std::fprintf(stderr, "done %s/conns:%zu (%zu requests)\n", mix.c_str(),
                   connections, r.requests);
    }
  }

  report::Table table({"Mix", "Conns", "Requests", "Req/sec", "Smp/sec",
                       "mean (us)", "p50 (us)", "p95 (us)", "p99 (us)"});
  for (const CellResult& r : results) {
    table.add_row({r.mix, std::to_string(r.connections), std::to_string(r.requests),
                   report::Table::fixed(r.rps(), 1),
                   r.samples > 0 ? report::Table::fixed(r.samples_per_sec(), 1) : "-",
                   report::Table::fixed(r.mean_us, 1),
                   report::Table::fixed(r.p50_us, 1), report::Table::fixed(r.p95_us, 1),
                   report::Table::fixed(r.p99_us, 1)});
  }
  std::printf("serve_load: closed-loop load generator, %.1f s per cell\n",
              options.seconds);
  table.print(std::cout);

  if (!options.json_path.empty()) write_json(options, results);
  return 0;
}
