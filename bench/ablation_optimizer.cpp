// Ablation: the optimizer stack behind Eq. 8. Compares (a) single-start
// Levenberg-Marquardt from the model's first initial guess, (b) Nelder-Mead
// only, and (c) the full multistart LM + NM polish pipeline, on the hardest
// nonlinear family (Wei-Wei mixture) across all seven recessions.
#include <iostream>

#include "bench_common.hpp"
#include "core/mixture.hpp"
#include "optimize/levenberg_marquardt.hpp"
#include "optimize/nelder_mead.hpp"
#include "optimize/transforms.hpp"

namespace {

struct StackResult {
  double sse = 0.0;
  int evals = 0;
};

// Build the internal-space residual problem exactly as core/fitting does.
prm::opt::ResidualProblem make_problem(const prm::core::ResilienceModel& model,
                                       const prm::data::PerformanceSeries& fit_window,
                                       const prm::opt::ParameterTransform& transform) {
  prm::opt::ResidualProblem problem;
  problem.num_parameters = model.num_parameters();
  problem.num_residuals = fit_window.size();
  problem.residuals = [&model, fit_window, &transform](const prm::num::Vector& u) {
    const prm::num::Vector p = transform.to_external(u);
    prm::num::Vector r(fit_window.size());
    for (std::size_t i = 0; i < fit_window.size(); ++i) {
      r[i] = fit_window.value(i) - model.evaluate(fit_window.time(i), p);
    }
    return r;
  };
  return problem;
}

}  // namespace

int main() {
  using namespace prm;
  using report::Table;

  std::cout << "=== Ablation: optimizer stack on the Wei-Wei mixture fit ===\n\n";

  const core::MixtureModel model(
      {core::Family::kWeibull, core::Family::kWeibull, core::RecoveryTrend::kLogarithmic});
  const opt::ParameterTransform transform(model.parameter_bounds());

  Table table({"U.S. Recession", "LM single (SSE)", "NM single (SSE)",
               "Multistart (SSE)", "LM evals", "NM evals", "Multistart evals"});
  for (const auto& ds : data::recession_catalog()) {
    const auto fit_window = ds.series.head(ds.series.size() - ds.holdout);
    const auto problem = make_problem(model, fit_window, transform);
    const num::Vector start =
        transform.to_internal(model.initial_guesses(fit_window).front());

    const opt::OptimizeResult lm = opt::levenberg_marquardt(problem, start);
    const opt::OptimizeResult nm = opt::nelder_mead_least_squares(problem.residuals, start);
    const core::FitResult full = core::fit_model(model, ds.series, ds.holdout);

    table.add_row({std::string(ds.series.name()),
                   Table::fixed(2.0 * lm.cost, 6), Table::fixed(2.0 * nm.cost, 6),
                   Table::fixed(full.sse, 6), std::to_string(lm.function_evaluations),
                   std::to_string(nm.function_evaluations),
                   std::to_string(full.function_evaluations)});
  }
  table.print(std::cout);

  std::cout << "\nReading: multistart never loses to a single start (it includes it) and\n"
               "buys its robustness with more function evaluations; single-start LM is\n"
               "competitive when the initial guess is good, NM alone converges slowly.\n";
  return 0;
}
