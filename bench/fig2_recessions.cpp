// Figure 2: "Payroll change in U.S. recessions from peak employment."
// Prints the seven reconstructed recession series (the evaluation substrate)
// as one shared ASCII plot plus a summary table of each episode's anatomy.
#include <iostream>

#include "bench_common.hpp"
#include "data/shape.hpp"

int main() {
  using namespace prm;

  std::cout << "=== Figure 2: payroll employment index for seven U.S. recessions ===\n"
            << "(reconstructed series; see DESIGN.md for the data substitution note)\n\n";

  report::AsciiPlot plot(100, 28);
  plot.set_title("Normalized payroll employment vs months after employment peak");
  const char glyphs[] = {'1', '2', '3', '4', '5', '6', '7'};
  std::size_t i = 0;
  for (const auto& d : data::recession_catalog()) {
    plot.add_series(d.series, glyphs[i], d.series.name());
    ++i;
  }
  plot.print(std::cout);
  std::cout << '\n';

  report::Table table({"Recession", "n", "Documented shape", "Classifier", "Trough month",
                       "Trough index", "Final index"});
  for (const auto& d : data::recession_catalog()) {
    table.add_row({std::string(d.series.name()),
                   std::to_string(d.series.size()),
                   std::string(data::to_string(d.documented_shape)),
                   std::string(data::to_string(data::classify_shape(d.series))),
                   report::Table::fixed(d.series.trough_time(), 0),
                   report::Table::fixed(d.series.trough_value(), 4),
                   report::Table::fixed(d.series.values().back(), 4)});
  }
  table.print(std::cout);
  return 0;
}
