// Extension experiment: the nn family vs the paper's parametric models.
//
// The paper's models encode the bathtub prior (quadratic, competing risks)
// or distribution mixtures; prm::nn drops the prior entirely and learns the
// recovery curve as a small MLP on x = log1p(t), trained by Adam restarts
// and polished by the same multistart LM pipeline every other model uses.
// This bench answers the obvious question -- what does the prior buy? -- on
// the seven U.S. recessions plus generated W/L/K shapes that violate the
// single-dip assumption, and times the fits so the CI gate can watch the
// nn path for cost regressions (--json emits the compare_bench.py schema).
#include <chrono>
#include <cstdio>
#include <exception>
#include <fstream>
#include <iostream>
#include <limits>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "data/generator.hpp"

namespace {

using namespace prm;
using report::Table;

const std::vector<std::string> kModels{"quadratic", "competing-risks",
                                       "mix-wei-wei-log", "nn-6-tanh",
                                       "nn-4x4-tanh"};

bool is_neural(const std::string& name) { return core::model_family(name) == "neural"; }

struct BestOf {
  double neural = std::numeric_limits<double>::infinity();
  double parametric = std::numeric_limits<double>::infinity();
};

/// One dataset row-block: every model's holdout PMSE / SSE / r2_adj, with
/// models whose parameter count exceeds the fit window reported as skipped.
BestOf run_block(Table& table, const data::RecessionDataset& ds) {
  BestOf best;
  bool first = true;
  for (const std::string& name : kModels) {
    try {
      const core::ModelDatasetResult r = core::analyze(name, ds);
      double& slot = is_neural(name) ? best.neural : best.parametric;
      slot = std::min(slot, r.validation.pmse);
      table.add_row({first ? std::string(ds.series.name()) : "", r.model_label,
                     Table::scientific(r.validation.pmse, 3),
                     Table::scientific(r.validation.sse, 3),
                     Table::fixed(r.validation.r2_adj, 4)});
    } catch (const std::exception&) {
      // nn-4x4-tanh needs 33 + 2 samples; the 2020-21 window has 21.
      table.add_row({first ? std::string(ds.series.name()) : "",
                     core::display_label(name), "-", "-", "(window too small)"});
    }
    first = false;
  }
  table.add_separator();
  return best;
}

struct TimedFit {
  std::string name;  ///< "fit/<model>/<dataset>" for the JSON gate.
  double us = 0.0;   ///< min-of-reps wall time, microseconds
};

void write_json(const std::string& path, const std::vector<TimedFit>& results) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "extension_nn: cannot open %s\n", path.c_str());
    std::exit(1);
  }
  out << "{\n  \"benchmarks\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    char line[256];
    std::snprintf(line, sizeof line,
                  "    {\"name\": \"%s\", \"cpu_time\": %.3f, \"real_time\": %.3f, "
                  "\"time_unit\": \"us\"}%s\n",
                  results[i].name.c_str(), results[i].us, results[i].us,
                  i + 1 < results.size() ? "," : "");
    out << line;
  }
  out << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  int reps = 3;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (arg == "--reps" && i + 1 < argc) {
      reps = std::atoi(argv[++i]);
    } else {
      std::fprintf(stderr, "usage: extension_nn [--json PATH] [--reps N]\n");
      return 2;
    }
  }

  std::cout << "=== Extension: neural forecaster vs the paper's models ===\n\n";

  // -- Part 1: the paper's seven U.S. recessions. ---------------------------
  Table recessions({"U.S. Recession", "Model", "PMSE", "SSE", "r2_adj"});
  int nn_wins = 0, parametric_wins = 0;
  double worst_ratio = 0.0;
  for (const auto& ds : data::recession_catalog()) {
    const BestOf best = run_block(recessions, ds);
    (best.neural < best.parametric ? nn_wins : parametric_wins) += 1;
    worst_ratio = std::max(worst_ratio, best.neural / best.parametric);
  }
  recessions.print(std::cout);

  // -- Part 2: generated shapes the parametric prior can't express. ---------
  std::cout << "\n--- Generated W/L/K shapes (48 samples, holdout 5, seed 42) ---\n\n";
  Table shapes({"Shape", "Model", "PMSE", "SSE", "r2_adj"});
  int nn_shape_wins = 0;
  for (const data::RecessionShape shape :
       {data::RecessionShape::kW, data::RecessionShape::kL, data::RecessionShape::kK}) {
    const data::RecessionDataset ds{data::generate_shape(shape), shape, 5};
    const BestOf best = run_block(shapes, ds);
    if (best.neural < best.parametric) ++nn_shape_wins;
  }
  shapes.print(std::cout);

  std::cout << "\nHeadline: the best nn model beats the best parametric model on "
            << nn_wins << " of 7\nrecessions and " << nn_shape_wins
            << " of 3 generated shapes. On single-dip recessions the\nmargin "
               "is modest and can flip (worst best-vs-best PMSE ratio "
            << Table::fixed(worst_ratio, 1)
            << "x, on\n1990-93): there the bathtub prior is a good regularizer "
               "and free weights\nmostly buy in-sample flexibility. Off the "
               "prior -- the W/L/K shapes and\nthe 2020-21 window, exactly "
               "where the paper concedes its models fail --\nthe MLP is one "
               "to two orders of magnitude ahead on holdout PMSE,\ntracking "
               "second dips and divergent branches no single bathtub can\n"
               "express. The price is fit cost (~100x a quadratic fit; table "
               "below) and\ncapacity limits: nn-4x4-tanh's 33 weights cannot "
               "be fit at all on the\n21-sample 2020-21 window. The nn rows "
               "reach this table through the same\nmultistart/validate "
               "pipeline as every parametric row -- only\ninitial_guesses "
               "changed.\n";

  // -- Part 3: fit cost, for the CI regression gate. ------------------------
  std::cout << "\n--- Fit wall time (min of " << reps << ") ---\n\n";
  Table times({"Dataset", "Model", "fit ms"});
  std::vector<TimedFit> timed;
  for (const char* ds_name : {"1990-93", "2007-09", "2020-21"}) {
    const auto& ds = data::recession(ds_name);
    bool first = true;
    for (const std::string& model : kModels) {
      double best_us = std::numeric_limits<double>::infinity();
      bool ok = true;
      for (int r = 0; r < reps && ok; ++r) {
        const auto start = std::chrono::steady_clock::now();
        try {
          (void)core::fit_model(model, ds.series, ds.holdout);
        } catch (const std::exception&) {
          ok = false;  // window too small for this model
        }
        const auto stop = std::chrono::steady_clock::now();
        best_us = std::min(
            best_us,
            std::chrono::duration<double, std::micro>(stop - start).count());
      }
      times.add_row({first ? std::string(ds_name) : "", core::display_label(model),
                     ok ? Table::fixed(best_us / 1000.0, 2) : "-"});
      first = false;
      if (ok) {
        timed.push_back({"fit/" + model + "/" + ds_name, best_us});
      }
    }
    times.add_separator();
  }
  times.print(std::cout);

  if (!json_path.empty()) write_json(json_path, timed);
  return 0;
}
