// Figure 4: "Competing risks model fit to 1990-93 U.S recession data set"
// with the 95% confidence interval.
#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace prm;
  const auto r = core::analyze("competing-risks", data::recession("1990-93"));
  std::cout << "=== Figure 4: competing risks model fit to the 1990-93 U.S. recession ===\n\n";
  bench::print_figure("1990-93 payroll index, competing risks fit, 95% CI", r);
  return 0;
}
