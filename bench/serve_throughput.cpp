// serve_throughput: requests/sec through the full prm::serve stack (JSON
// parse -> route -> fit-or-cache -> JSON dump -> HTTP framing) over real
// loopback sockets, cached vs uncached.
//
//  * Uncached: every request carries a distinct series (jittered copies of
//    the 1990-93 recession), so each one runs the multistart optimizer.
//  * Cached: every request repeats one already-fitted series, so the server
//    answers straight from the LRU fit cache.
//
// The printed ratio is the speedup the cache buys a fit-heavy workload; the
// cached row doubles as the ceiling of the HTTP/JSON plumbing itself.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "data/recessions.hpp"
#include "report/table.hpp"
#include "serve/handlers.hpp"
#include "serve/json.hpp"
#include "serve/server.hpp"

namespace {

using namespace prm;

/// Fit-request body for the 1990-93 recession with each value nudged by a
/// distinct epsilon: bit-different doubles hash to a fresh cache key while
/// the fit problem stays numerically identical in difficulty.
std::string jittered_body(int variant) {
  const data::RecessionDataset& dataset = data::recession("1990-93");
  serve::Json series = serve::Json::object();
  serve::Json times = serve::Json::array();
  for (const double t : dataset.series.times()) times.push_back(serve::Json(t));
  serve::Json values = serve::Json::array();
  const double epsilon = 1e-9 * static_cast<double>(variant);
  for (const double v : dataset.series.values()) values.push_back(serve::Json(v + epsilon));
  series["times"] = std::move(times);
  series["values"] = std::move(values);
  serve::Json body = serve::Json::object();
  body["series"] = std::move(series);
  body["model"] = serve::Json("competing-risks");
  body["holdout"] = serve::Json(dataset.holdout);
  return body.dump();
}

struct RunResult {
  double seconds = 0.0;
  std::size_t requests = 0;
  double rps() const { return seconds > 0.0 ? static_cast<double>(requests) / seconds : 0.0; }
};

/// Fire all `bodies` at the server from `client_threads` concurrent
/// connections, round-robin, and time the whole batch.
RunResult drive(std::uint16_t port, const std::vector<std::string>& bodies,
                std::size_t client_threads) {
  const auto started = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  for (std::size_t c = 0; c < client_threads; ++c) {
    threads.emplace_back([port, &bodies, c, client_threads] {
      serve::http::Client client("127.0.0.1", port);
      for (std::size_t i = c; i < bodies.size(); i += client_threads) {
        const serve::http::Response response = client.post_json("/v1/fit", bodies[i]);
        if (response.status != 200) {
          std::fprintf(stderr, "fit failed: %s\n", response.body.c_str());
          std::exit(1);
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  RunResult result;
  result.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - started).count();
  result.requests = bodies.size();
  return result;
}

}  // namespace

int main() {
  constexpr std::size_t kClientThreads = 4;
  constexpr int kUncachedRequests = 64;
  constexpr int kCachedRequests = 2000;

  serve::App app;
  serve::ServerOptions options;
  options.port = 0;
  options.threads = 4;
  serve::Server server(options,
                       [&app](const serve::http::Request& r) { return app.handle(r); });
  server.start();

  // Uncached: 64 distinct series, each one a fresh optimizer run.
  std::vector<std::string> distinct;
  distinct.reserve(kUncachedRequests);
  for (int i = 0; i < kUncachedRequests; ++i) distinct.push_back(jittered_body(i + 1));
  const RunResult uncached = drive(server.port(), distinct, kClientThreads);

  // Cached: one series repeated; prime it once so every timed request hits.
  const std::string repeated = jittered_body(0);
  {
    serve::http::Client primer("127.0.0.1", server.port());
    if (primer.post_json("/v1/fit", repeated).status != 200) return 1;
  }
  std::vector<std::string> repeats(kCachedRequests, repeated);
  const RunResult cached = drive(server.port(), repeats, kClientThreads);

  const std::uint64_t hits = app.fit_cache().hits();
  server.stop();

  report::Table table({"Workload", "Requests", "Wall (s)", "Req/sec"});
  table.add_row({"uncached (distinct series)", std::to_string(uncached.requests),
                 report::Table::fixed(uncached.seconds, 3),
                 report::Table::fixed(uncached.rps(), 1)});
  table.add_row({"cached (repeated series)", std::to_string(cached.requests),
                 report::Table::fixed(cached.seconds, 3),
                 report::Table::fixed(cached.rps(), 1)});
  std::printf("serve_throughput: POST /v1/fit over loopback, %zu client threads, "
              "%zu server workers\n",
              kClientThreads, options.threads);
  table.print(std::cout);
  std::printf("\ncache speedup: %.1fx (%llu hits recorded)\n",
              cached.rps() / uncached.rps(),
              static_cast<unsigned long long>(hits));

  if (hits < static_cast<std::uint64_t>(kCachedRequests)) {
    std::fprintf(stderr, "expected every cached-pass request to hit the fit cache\n");
    return 1;
  }
  return 0;
}
