#!/usr/bin/env python3
"""Diff two `micro_benchmarks --json` result files and flag regressions.

Usage:
    compare_bench.py BASELINE.json CURRENT.json [--threshold 0.15]
                     [--metric cpu_time] [--normalize] [--require-all]
                     [--table-out FILE]

Exits non-zero when any benchmark present in both files got slower than
baseline by more than --threshold (fractional, default 0.15 = +15%).

--normalize divides every current/baseline ratio by the suite's median ratio
before applying the threshold. That cancels a uniform machine-speed offset
(CI runners are not the machine the checked-in baseline was recorded on) and
keeps the gate sensitive to what it is actually for: one benchmark regressing
relative to the rest of the suite.

Benchmarks present in only one of the two files are warned about and skipped
(adding or removing a benchmark cannot break the gate); --require-all makes a
baseline benchmark missing from the current run fatal instead.
"""

from __future__ import annotations

import argparse
import json
import sys
from statistics import median


def load_results(path: str) -> dict[str, dict]:
    """name -> result entry; with --benchmark_repetitions the same name
    appears once per repetition and we keep the fastest (min-of-N is the
    standard noise filter for micro-benchmarks)."""
    with open(path) as fh:
        doc = json.load(fh)
    out: dict[str, dict] = {}
    for entry in doc.get("benchmarks", []):
        name = entry.get("name")
        if name is None or "cpu_time" not in entry:
            print(f"{path}: skipping malformed benchmark entry {entry!r}",
                  file=sys.stderr)
            continue
        if name not in out or entry["cpu_time"] < out[name]["cpu_time"]:
            out[name] = entry
    return out


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="baseline micro_benchmarks --json output")
    parser.add_argument("current", help="current micro_benchmarks --json output")
    parser.add_argument("--threshold", type=float, default=0.15,
                        help="max tolerated fractional slowdown (default 0.15)")
    parser.add_argument("--metric", default="cpu_time",
                        choices=["cpu_time", "real_time"],
                        help="which per-iteration time to compare (default cpu_time)")
    parser.add_argument("--normalize", action="store_true",
                        help="divide ratios by the suite median ratio "
                             "(cancels uniform machine-speed differences)")
    parser.add_argument("--require-all", action="store_true",
                        help="fail if a baseline benchmark is missing from current")
    parser.add_argument("--table-out", metavar="FILE",
                        help="also write the per-benchmark delta table to FILE "
                             "(written on success and failure, so CI can keep "
                             "it as an artifact)")
    args = parser.parse_args()

    base = load_results(args.baseline)
    curr = load_results(args.current)

    common = [name for name in base if name in curr]
    missing = [name for name in base if name not in curr]
    added = [name for name in curr if name not in base]
    if not common:
        print("compare_bench: no benchmarks in common", file=sys.stderr)
        return 2
    # Benchmarks present in only one run are warned about and skipped, so
    # adding or removing a benchmark never breaks the gate by itself; pass
    # --require-all to make a stale baseline fatal.
    for name in missing:
        print(f"warning: {name}: in baseline but not in current run (skipped)",
              file=sys.stderr)
    for name in added:
        print(f"warning: {name}: in current run but not in baseline (skipped; "
              f"refresh the baseline to gate it)", file=sys.stderr)

    ratios = {name: curr[name][args.metric] / base[name][args.metric]
              for name in common}
    scale = median(ratios.values()) if args.normalize else 1.0

    table = []
    if args.normalize:
        table.append(f"suite median ratio {scale:.3f} (normalized out)")

    regressions = []
    width = max(len(n) for n in common)
    table.append(
        f"{'benchmark':<{width}}  {'baseline':>10}  {'current':>10}  {'ratio':>7}")
    for name in sorted(common):
        ratio = ratios[name] / scale
        unit = base[name].get("time_unit", "ns")
        flag = ""
        if ratio > 1.0 + args.threshold:
            regressions.append((name, ratio))
            flag = "  <-- REGRESSION"
        elif ratio < 1.0 - args.threshold:
            flag = "  (improved)"
        table.append(f"{name:<{width}}  {base[name][args.metric]:>10.3f}  "
                     f"{curr[name][args.metric]:>10.3f}  {ratio:>6.2f}x{flag}  "
                     f"[{unit}]")
    print("\n".join(table))
    if args.table_out:
        with open(args.table_out, "w") as fh:
            fh.write("\n".join(table) + "\n")

    if regressions:
        print(f"\ncompare_bench: {len(regressions)} benchmark(s) regressed "
              f"beyond +{args.threshold:.0%}:", file=sys.stderr)
        for name, ratio in regressions:
            print(f"  {name}: {ratio:.2f}x", file=sys.stderr)
        return 1
    if args.require_all and missing:
        print(f"\ncompare_bench: {len(missing)} baseline benchmark(s) missing",
              file=sys.stderr)
        return 1
    print(f"\ncompare_bench: OK ({len(common)} benchmarks within "
          f"+{args.threshold:.0%})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
