// Ablation: training loss under data corruption. Injects gross outliers into
// each recession's fit window and compares squared, Huber, and Cauchy losses
// on (a) parameter stability vs the clean fit and (b) holdout PMSE. The
// paper fits by plain least squares (Eq. 8); this quantifies what that costs
// when the data are dirty.
#include <cmath>
#include <iostream>

#include "bench_common.hpp"

namespace {

prm::data::PerformanceSeries inject_outliers(const prm::data::PerformanceSeries& s,
                                             std::size_t holdout) {
  std::vector<double> v(s.values().begin(), s.values().end());
  const std::size_t fit_n = s.size() - holdout;
  // Two spikes at 1/3 and 2/3 of the fit window, +-5% of the index.
  v[fit_n / 3] += 0.05;
  v[2 * fit_n / 3] -= 0.05;
  return prm::data::PerformanceSeries(s.name(),
                                      std::vector<double>(s.times().begin(), s.times().end()),
                                      std::move(v));
}

}  // namespace

int main() {
  using namespace prm;
  using report::Table;

  std::cout << "=== Ablation: training loss on outlier-corrupted recessions ===\n"
               "(competing-risks model; two +-5% spikes injected into each fit window)\n\n";

  Table table({"U.S. Recession", "Loss", "Holdout PMSE (corrupted)", "Param drift vs clean"});
  for (const auto& ds : data::recession_catalog()) {
    const core::FitResult clean = core::fit_model("competing-risks", ds.series, ds.holdout);
    const data::PerformanceSeries dirty = inject_outliers(ds.series, ds.holdout);

    bool first = true;
    for (const auto& [kind, scale] :
         {std::pair{opt::LossKind::kSquared, 0.01}, std::pair{opt::LossKind::kHuber, 0.01},
          std::pair{opt::LossKind::kCauchy, 0.01}}) {
      core::FitOptions opts;
      opts.loss = kind;
      opts.loss_scale = scale;
      const core::FitResult fit = core::fit_model("competing-risks", dirty, ds.holdout, opts);
      const auto v = core::validate(fit);

      double drift = 0.0;
      for (std::size_t i = 0; i < 3; ++i) {
        drift += std::fabs(fit.parameters()[i] - clean.parameters()[i]) /
                 std::max(std::fabs(clean.parameters()[i]), 1e-9);
      }
      table.add_row({first ? std::string(ds.series.name()) : "",
                     std::string(opt::to_string(kind)), Table::scientific(v.pmse, 3),
                     Table::fixed(drift, 4)});
      first = false;
    }
    table.add_separator();
  }
  table.print(std::cout);

  std::cout << "\nReading: Huber keeps the fitted parameters closer to the clean-data\n"
               "solution than plain least squares on most datasets and improves holdout\n"
               "PMSE on the majority; Cauchy's redescending influence gives the best\n"
               "corrupted-data PMSE but can land in a different local minimum (large\n"
               "'drift' on 1974-76 and the already-unfittable 2020-21). The paper's\n"
               "Eq. 8 (squared loss) is the fragile choice when data are dirty.\n";
  return 0;
}
