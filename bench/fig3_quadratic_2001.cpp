// Figure 3: "Quadratic model fit to 2001-05 U.S recession data" with the
// 95% confidence interval and the dashed fit/predict boundary.
#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace prm;
  const auto r = core::analyze("quadratic", data::recession("2001-05"));
  std::cout << "=== Figure 3: quadratic model fit to the 2001-05 U.S. recession ===\n\n";
  bench::print_figure("2001-05 payroll index, quadratic bathtub fit, 95% CI", r);
  return 0;
}
