// Ablation: recovery-trend choice a2(t) in {beta, beta t, e^{beta t},
// beta ln t}. The paper evaluates only beta*ln(t), asserting it "performed
// well for each data set"; this bench justifies that choice by sweeping all
// four trends for the Wei-Exp mixture across the seven recessions.
#include <iostream>

#include "bench_common.hpp"
#include "core/mixture.hpp"

int main() {
  using namespace prm;
  using report::Table;
  using core::RecoveryTrend;

  std::cout << "=== Ablation: recovery trend a2(t) for the Wei-Exp mixture ===\n\n";

  const RecoveryTrend trends[] = {RecoveryTrend::kConstant, RecoveryTrend::kLinear,
                                  RecoveryTrend::kExponential, RecoveryTrend::kLogarithmic};

  Table table({"U.S. Recession", "Measure", "a2=beta", "a2=beta*t", "a2=e^(beta*t)",
               "a2=beta*ln(t)"});
  double total_r2[4] = {0, 0, 0, 0};
  double easy_r2[4] = {0, 0, 0, 0};  // excluding the L-shaped 2020-21 outlier
  for (const auto& ds : data::recession_catalog()) {
    std::vector<core::ValidationReport> reports;
    for (const RecoveryTrend tr : trends) {
      const core::MixtureModel model(
          {core::Family::kWeibull, core::Family::kExponential, tr});
      const auto fit = core::fit_model(model, ds.series, ds.holdout);
      reports.push_back(core::validate(fit));
    }
    std::vector<std::string> sse_row{std::string(ds.series.name()), "SSE"};
    std::vector<std::string> r2_row{"", "r2_adj"};
    std::vector<std::string> pmse_row{"", "PMSE"};
    for (std::size_t i = 0; i < reports.size(); ++i) {
      sse_row.push_back(Table::fixed(reports[i].sse, 6));
      pmse_row.push_back(Table::fixed(reports[i].pmse, 6));
      r2_row.push_back(Table::fixed(reports[i].r2_adj, 4));
      total_r2[i] += reports[i].r2_adj;
      if (ds.series.name() != "2020-21") easy_r2[i] += reports[i].r2_adj;
    }
    table.add_row(std::move(sse_row));
    table.add_row(std::move(pmse_row));
    table.add_row(std::move(r2_row));
    table.add_separator();
  }
  std::vector<std::string> total_row{"ALL", "sum r2_adj"};
  for (double r2 : total_r2) total_row.push_back(Table::fixed(r2, 4));
  table.add_row(std::move(total_row));
  std::vector<std::string> easy_row{"ALL except 2020-21", "sum r2_adj"};
  for (double r2 : easy_r2) easy_row.push_back(Table::fixed(r2, 4));
  table.add_row(std::move(easy_row));
  table.print(std::cout);

  std::cout << "\nReading: on the datasets these models can represent (everything but the\n"
               "L-shaped 2020-21 collapse, where no trend helps), the slowly-growing\n"
               "trends dominate: beta*t and beta*ln(t) take the top two aggregate\n"
               "r2_adj slots, consistent with the paper's finding that beta*ln(t)\n"
               "'performed well for each data set'. The constant trend only looks\n"
               "competitive when the unfittable 2020-21 row is included.\n";
  return 0;
}
