// Quickstart: the 60-second tour of the prm public API.
//
//   1. load a resilience curve (here: a bundled U.S. recession),
//   2. fit a predictive model to its observed prefix,
//   3. validate the fit (SSE / PMSE / adjusted R^2 / empirical coverage),
//   4. predict recovery time and the eight interval-based resilience
//      metrics over the unobserved horizon.
#include <iostream>

#include "core/analysis.hpp"
#include "core/metrics.hpp"
#include "core/predictor.hpp"
#include "report/table.hpp"

int main() {
  using namespace prm;

  // 1. A performance series: normalized payroll employment, month 0 = peak.
  const data::RecessionDataset& dataset = data::recession("1990-93");
  std::cout << "Dataset: " << dataset.series.name() << " (" << dataset.series.size()
            << " monthly samples, holdout " << dataset.holdout << ")\n";

  // 2-3. Fit the competing-risks bathtub model to the first 90% of samples
  //      and validate it in one call.
  const core::ModelDatasetResult result = core::analyze("competing-risks", dataset);
  std::cout << "Model:   " << result.fit.model().description() << '\n';
  std::cout << "Fit:     SSE = " << result.validation.sse
            << ", PMSE = " << result.validation.pmse
            << ", r2_adj = " << result.validation.r2_adj
            << ", EC = " << result.validation.ec << "%\n";

  // Fitted parameters by name.
  const auto names = result.fit.model().parameter_names();
  for (std::size_t i = 0; i < names.size(); ++i) {
    std::cout << "         " << names[i] << " = " << result.fit.parameters()[i] << '\n';
  }

  // 4a. When does the fitted curve return to the pre-recession level?
  if (const auto t = core::predict_full_recovery_time(result.fit)) {
    std::cout << "Predicted full recovery: month " << *t << '\n';
  }
  std::cout << "Predicted trough: month " << core::predict_trough_time(result.fit)
            << " at index " << core::predict_trough_value(result.fit) << '\n';

  // 4b. The paper's eight interval-based resilience metrics (Eqs. 14-21).
  report::Table table({"Metric", "Actual", "Predicted", "Relative error"});
  for (const core::MetricValue& m : core::predictive_metrics(result.fit)) {
    table.add_row({std::string(core::to_string(m.kind)),
                   report::Table::fixed(m.actual, 6),
                   report::Table::fixed(m.predicted, 6),
                   report::Table::fixed(m.relative_error, 6)});
  }
  table.print(std::cout);
  return 0;
}
