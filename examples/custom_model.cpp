// Custom model: how a downstream user extends prm with their own resilience
// model. Implements the paper's "future research" direction of domain-
// specific curves: a Gaussian-dip / logistic-recovery model
//
//   P(t) = 1 - d * exp(-((t - c)/s)^2) + g / (1 + exp(-(t - m) / w))
//
// (a dip of depth d centered at time c plus a logistic climb to a new steady
// state), registers it alongside the built-ins, and benchmarks it against
// the paper's models on all seven recessions.
#include <cmath>
#include <iostream>

#include "core/analysis.hpp"
#include "report/table.hpp"

namespace {

using namespace prm;

class LogisticRecoveryModel final : public core::ResilienceModel {
 public:
  std::string name() const override { return "logistic-recovery"; }
  std::string description() const override {
    return "Gaussian dip + logistic recovery "
           "P(t) = 1 - d e^{-((t-c)/s)^2} + g logistic((t-m)/w)";
  }
  std::size_t num_parameters() const override { return 6; }
  std::vector<std::string> parameter_names() const override {
    return {"depth", "dip_center", "dip_scale", "gain", "midpoint", "width"};
  }
  std::vector<opt::Bound> parameter_bounds() const override {
    return {opt::Bound::positive(), opt::Bound::positive(), opt::Bound::positive(),
            opt::Bound::positive(), opt::Bound::positive(), opt::Bound::positive()};
  }

  double evaluate(double t, const num::Vector& p) const override {
    const double z = (t - p[1]) / p[2];
    const double dip = p[0] * std::exp(-z * z);
    const double climb = p[3] / (1.0 + std::exp(-(t - p[4]) / p[5]));
    return 1.0 - dip + climb;
  }

  std::vector<num::Vector> initial_guesses(
      const data::PerformanceSeries& fit) const override {
    const double td = std::max(fit.trough_time(), 1.0);
    const double depth = std::max(1.0 - fit.trough_value(), 1e-3);
    const double tn = fit.times().back();
    const double gain = std::max(fit.values().back() - fit.trough_value(), 1e-3);
    return {{depth, td, 0.7 * td, gain, 0.5 * (td + tn), 0.15 * tn},
            {depth, td, 1.5 * td, gain, 0.7 * tn, 0.25 * tn}};
  }

  std::pair<num::Vector, num::Vector> search_box(
      const data::PerformanceSeries& fit) const override {
    const double tn = std::max(fit.times().back(), 2.0);
    return {{1e-3, 1.0, 1.0, 1e-3, 1.0, 0.5}, {0.5, tn, tn, 0.5, 2.0 * tn, tn}};
  }

  std::unique_ptr<ResilienceModel> clone() const override {
    return std::make_unique<LogisticRecoveryModel>(*this);
  }
};

}  // namespace

int main() {
  using report::Table;

  // One-line registration makes the model available everywhere models are
  // looked up by name (fitting, analysis, benches).
  core::ModelRegistry::instance().register_model(
      "logistic-recovery", [] { return core::ModelPtr(new LogisticRecoveryModel()); });

  std::cout << "=== Custom model: logistic-recovery vs the paper's models ===\n\n";

  Table table({"U.S. Recession", "Quadratic r2", "Competing Risks r2", "Wei-Wei r2",
               "Logistic-Recovery r2"});
  int wins = 0;
  for (const auto& ds : data::recession_catalog()) {
    const auto quad = core::analyze("quadratic", ds);
    const auto cr = core::analyze("competing-risks", ds);
    const auto ww = core::analyze("mix-wei-wei-log", ds);
    const auto custom = core::analyze("logistic-recovery", ds);
    if (custom.validation.r2_adj >=
        std::max({quad.validation.r2_adj, cr.validation.r2_adj, ww.validation.r2_adj})) {
      ++wins;
    }
    table.add_row({std::string(ds.series.name()),
                   Table::fixed(quad.validation.r2_adj, 4),
                   Table::fixed(cr.validation.r2_adj, 4),
                   Table::fixed(ww.validation.r2_adj, 4),
                   Table::fixed(custom.validation.r2_adj, 4)});
  }
  table.print(std::cout);
  std::cout << "\nThe custom 6-parameter model has the best (or tied) r2_adj on " << wins
            << " of 7 datasets.\nDomain-specific curves are exactly the extension the "
               "paper's conclusion calls for;\nregistering one takes a single "
               "ModelRegistry::register_model call.\n";
  return 0;
}
