// prm_cli: command-line front end to the whole pipeline, for users who have
// a CSV and no desire to write C++.
//
//   prm_cli fit       --csv data.csv [--model NAME] [--holdout N]
//                     [--loss squared|huber|cauchy] [--level L] [--save FILE]
//                     [--threads N]
//   prm_cli predict   --fit FILE [--level L]    # reuse a saved fit
//   prm_cli uncertainty --fit FILE [--level L] [--replicates N] [--threads N]
//   prm_cli detect    --csv data.csv            # hazard-onset detection
//   prm_cli monitor   --csv F1,F2,... [--model NAME] [--threads N]
//                     [--refit-every N] [--save FILE] [--load FILE]
//                     [--wal-dir DIR] [--fsync always|interval|never]
//   prm_cli serve     [--port N] [--threads N] [--event-threads N]
//                     [--fit-threads N] [--model NAME]
//                     [--cache N] [--queue N] [--shards N]
//                     [--reuseport on|off] [--max-batch N]
//                     [--wal-dir DIR] [--fsync always|interval|never]
//                     [--cluster HOST:PORT --peers A,B,...]   # ring node
//                     [--router on --peers A,B,...]           # thin proxy
//   prm_cli models                              # list registered models
//   prm_cli demo                                # run on a bundled dataset
//   prm_cli help | --help | -h                  # usage on stdout, exit 0
//
// CSV format: "t,value" with a header line; t strictly increasing.
// With --model omitted, every registered model is fit and the best holdout
// PMSE wins (models whose requirements the series cannot meet — e.g. the
// nn family needs more samples than weights — are skipped with a note).
// An unknown --model is rejected with the full registry roster. Unknown
// subcommands and unknown --options are rejected (usage on stderr, exit 1).
// Exit code 0 on success, 1 on CLI errors, 2 on data errors.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstring>
#include <iostream>
#include <limits>
#include <map>
#include <optional>
#include <string_view>
#include <thread>

#include "core/analysis.hpp"
#include "core/metrics.hpp"
#include "core/predictor.hpp"
#include "core/serialize.hpp"
#include "core/uncertainty.hpp"
#include "data/changepoint.hpp"
#include "data/csv.hpp"
#include "live/monitor.hpp"
#include "report/ascii_plot.hpp"
#include "report/table.hpp"
#include "serve/handlers.hpp"
#include "serve/server.hpp"

namespace {

using namespace prm;

struct CliArgs {
  std::string command;
  std::map<std::string, std::string> options;
};

/// Options each subcommand accepts; a command absent here is unknown.
const std::map<std::string, std::vector<std::string>>& command_options() {
  static const std::map<std::string, std::vector<std::string>> table = {
      {"fit", {"csv", "model", "holdout", "loss", "level", "save", "threads"}},
      {"predict", {"fit", "level"}},
      {"uncertainty", {"fit", "level", "replicates", "threads"}},
      {"detect", {"csv"}},
      {"monitor",
       {"csv", "model", "threads", "refit-every", "save", "load", "wal-dir", "fsync"}},
      {"serve",
       {"port", "threads", "event-threads", "fit-threads", "model", "cache", "queue",
        "shards", "wal-dir", "fsync", "reuseport", "max-batch", "cluster", "peers",
        "router"}},
      {"models", {}},
      {"demo", {"model", "holdout", "loss", "level", "save", "threads"}},
  };
  return table;
}

void usage(std::ostream& out) {
  out << "usage:\n"
      << "  prm_cli fit     --csv FILE [--model NAME] [--holdout N]\n"
      << "                  [--loss squared|huber|cauchy] [--level L] [--save FILE]\n"
      << "                  [--threads N]   # solver threads (1 = serial, 0 = auto)\n"
      << "                  # --model: a `prm_cli models` name (e.g. quadratic,\n"
      << "                  #   mix-wei-wei-log, nn-6-tanh); omitted = try them all\n"
      << "  prm_cli predict --fit FILE [--level L]\n"
      << "  prm_cli uncertainty --fit FILE [--level L] [--replicates N] [--threads N]\n"
      << "  prm_cli detect  --csv FILE\n"
      << "  prm_cli monitor --csv FILE[,FILE...] [--model NAME] [--threads N]\n"
      << "                  [--refit-every N]  # refit cadence in samples/stream\n"
      << "                  [--save FILE] [--load FILE]  # snapshot out / resume from\n"
      << "                  [--wal-dir DIR] [--fsync always|interval|never]\n"
      << "                  # --wal-dir: write-ahead log; restart replays to the\n"
      << "                  #   exact acknowledged state (excludes --load)\n"
      << "  prm_cli serve   [--port N] [--threads N] [--event-threads N]\n"
      << "                  [--fit-threads N] [--model NAME]\n"
      << "                  [--cache N] [--queue N] [--shards N]  # --port 0 = ephemeral\n"
      << "                  # --threads: HTTP workers; --event-threads: epoll/poll\n"
      << "                  #   readiness loops; --fit-threads: solver threads per\n"
      << "                  #   fit; --cache: fit-cache entries; --queue: pending\n"
      << "                  #   requests before 503\n"
      << "                  # --shards: cache/registry stripes (omit for one per core)\n"
      << "                  [--reuseport on|off]  # SO_REUSEPORT accept sharding:\n"
      << "                  #   one listen socket per event loop (default on;\n"
      << "                  #   falls back to single-socket at runtime)\n"
      << "                  [--max-batch N]  # samples accepted per\n"
      << "                  #   /v1/streams/{name}/ingest-batch request\n"
      << "                  [--wal-dir DIR] [--fsync always|interval|never]\n"
      << "                  # --wal-dir: durable write-ahead log; restart resumes state\n"
      << "                  [--cluster HOST:PORT --peers A,B,...]  # join a ring as a\n"
      << "                  #   node: own the streams the consistent-hash ring maps\n"
      << "                  #   here, 307-redirect the rest (--port defaults to the\n"
      << "                  #   --cluster port)\n"
      << "                  [--router on --peers A,B,...]  # stateless front door:\n"
      << "                  #   proxy every stream route to its owning node\n"
      << "  prm_cli models  # registered model names, one per line, with family\n"
      << "  prm_cli demo    # fit the bundled 1990-93 recession (same flags as fit)\n"
      << "  prm_cli help | --help | -h\n";
}

void usage() { usage(std::cerr); }

std::optional<CliArgs> parse(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << "prm_cli: missing subcommand\n";
    return std::nullopt;
  }
  CliArgs args;
  args.command = argv[1];
  const auto allowed = command_options().find(args.command);
  if (allowed == command_options().end()) {
    std::cerr << "prm_cli: unknown subcommand '" << args.command << "'\n";
    return std::nullopt;
  }
  for (int i = 2; i < argc; ++i) {
    if (std::strncmp(argv[i], "--", 2) != 0) {
      std::cerr << "prm_cli: unexpected argument '" << argv[i] << "'\n";
      return std::nullopt;
    }
    const std::string key = argv[i] + 2;
    const auto& names = allowed->second;
    if (std::find(names.begin(), names.end(), key) == names.end()) {
      std::cerr << "prm_cli: unknown option '--" << key << "' for '" << args.command
                << "'\n";
      return std::nullopt;
    }
    if (i + 1 >= argc) {
      std::cerr << "prm_cli: missing value for '--" << key << "'\n";
      return std::nullopt;
    }
    args.options[key] = argv[++i];
  }
  return args;
}

/// Strict positive-integer parse for thread-count options: the whole string
/// must be a base-10 integer >= 1. "0", "-2", "4x" and "" are all rejected.
std::optional<int> parse_positive_int(const std::string& text) {
  try {
    std::size_t pos = 0;
    const long v = std::stol(text, &pos);
    if (pos != text.size() || v < 1 || v > std::numeric_limits<int>::max()) {
      return std::nullopt;
    }
    return static_cast<int>(v);
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

/// Fetch `--threads`-style options with strict validation; reports the error
/// itself and leaves `ok` false so callers can exit with the CLI error code.
std::optional<int> threads_option(const CliArgs& args, const std::string& key, bool& ok) {
  ok = true;
  if (!args.options.count(key)) return std::nullopt;
  const std::optional<int> parsed = parse_positive_int(args.options.at(key));
  if (!parsed) {
    std::cerr << "prm_cli: '--" << key << "' must be a positive integer, got '"
              << args.options.at(key) << "'\n";
    ok = false;
  }
  return parsed;
}

/// Validate a --model value against the registry; on an unknown name,
/// print the full roster (the error users actually need) and return false.
bool validate_model_option(const std::string& name) {
  if (core::ModelRegistry::instance().contains(name)) return true;
  std::cerr << "prm_cli: unknown model '" << name << "'; registered models:\n";
  for (const std::string& n : core::ModelRegistry::instance().names()) {
    std::cerr << "  " << n << '\n';
  }
  return false;
}

void print_predictions(const core::FitResult& fit, double level) {
  using report::Table;
  std::cout << "\nPredictions:\n";
  std::cout << "  trough: t = " << core::predict_trough_time(fit) << " at "
            << core::predict_trough_value(fit) << '\n';
  if (const auto tr = core::predict_recovery_time(fit, level)) {
    std::cout << "  recovery to " << level << ": t = " << *tr << '\n';
  } else {
    std::cout << "  recovery to " << level << ": not reached within the search horizon\n";
  }
  std::cout << "\nInterval-based resilience metrics (paper Eqs. 14-21):\n";
  Table metrics({"Metric", "Actual", "Predicted", "Rel. error"});
  for (const core::MetricValue& m : core::predictive_metrics(fit)) {
    metrics.add_row({std::string(core::to_string(m.kind)), Table::fixed(m.actual, 6),
                     Table::fixed(m.predicted, 6), Table::fixed(m.relative_error, 6)});
  }
  metrics.print(std::cout);
}

int run_fit(const data::PerformanceSeries& series, const CliArgs& args) {
  using report::Table;
  const std::size_t holdout =
      args.options.count("holdout")
          ? static_cast<std::size_t>(std::stoul(args.options.at("holdout")))
          : std::max<std::size_t>(series.size() / 10, 1);

  core::FitOptions fit_opts;
  bool threads_ok = false;
  if (const auto threads = threads_option(args, "threads", threads_ok)) {
    fit_opts.multistart.threads = *threads;
  } else if (!threads_ok) {
    return 1;
  }
  if (args.options.count("loss")) {
    const std::string& loss = args.options.at("loss");
    if (loss == "huber") {
      fit_opts.loss = opt::LossKind::kHuber;
    } else if (loss == "cauchy") {
      fit_opts.loss = opt::LossKind::kCauchy;
    } else if (loss != "squared") {
      std::cerr << "unknown loss: " << loss << '\n';
      return 1;
    }
  }

  // Candidate models: the requested one, or all registered.
  std::vector<std::string> names;
  if (args.options.count("model")) {
    if (!validate_model_option(args.options.at("model"))) return 1;
    names.push_back(args.options.at("model"));
  } else {
    names = core::ModelRegistry::instance().names();
  }

  Table ranking({"Model", "SSE", "PMSE", "r2_adj", "EC", "Theil U"});
  std::optional<core::FitResult> best;
  std::optional<core::ValidationReport> best_val;
  double best_pmse = std::numeric_limits<double>::infinity();
  std::vector<std::string> skipped;
  for (const std::string& name : names) {
    // A model can be unfittable on this series (the nn family needs more
    // samples than weights); skip it instead of failing the whole ranking.
    std::optional<core::FitResult> fit;
    try {
      fit = core::fit_model(name, series, holdout, fit_opts);
    } catch (const std::exception& e) {
      ranking.add_row({core::display_label(name), "-", "-", "-", "-", "-"});
      skipped.push_back(name + ": " + e.what());
      continue;
    }
    const core::ValidationReport v = core::validate(*fit);
    ranking.add_row({core::display_label(name), Table::scientific(v.sse, 3),
                     Table::scientific(v.pmse, 3), Table::fixed(v.r2_adj, 4),
                     Table::percent(v.ec), Table::fixed(v.theil_u, 3)});
    if (fit->success() && v.pmse < best_pmse) {
      best_pmse = v.pmse;
      best = std::move(*fit);
      best_val = v;
    }
  }
  ranking.print(std::cout);
  for (const std::string& note : skipped) std::cout << "skipped " << note << '\n';
  if (!best) {
    std::cerr << "no model produced a usable fit\n";
    return 2;
  }

  std::cout << "\nBest model by holdout PMSE: " << core::display_label(best->model().name())
            << "\n\nFitted parameters:\n";
  const auto pnames = best->model().parameter_names();
  for (std::size_t i = 0; i < pnames.size(); ++i) {
    std::cout << "  " << pnames[i] << " = " << best->parameters()[i] << '\n';
  }

  const double level =
      args.options.count("level") ? std::stod(args.options.at("level")) : series.value(0);
  print_predictions(*best, level);

  if (args.options.count("save")) {
    core::save_fit_file(args.options.at("save"), *best);
    std::cout << "\nfit saved to " << args.options.at("save") << '\n';
  }

  report::AsciiPlot plot(90, 20);
  plot.set_title(series.name() + ": data (o), fit (*), 95% CI (.)");
  report::PlotBand band;
  band.times.assign(series.times().begin(), series.times().end());
  band.lower = best_val->band.lower;
  band.upper = best_val->band.upper;
  band.label = "95% CI";
  plot.add_band(band);
  plot.add_series(series, 'o', "data");
  plot.add_series(data::PerformanceSeries("fit", band.times, best_val->predictions), '*',
                  "model");
  plot.add_vertical_marker(series.time(series.size() - holdout - 1), "fit boundary");
  plot.print(std::cout);
  return 0;
}

/// Split "a,b,c" on commas, dropping empty fields.
std::vector<std::string> split_csv_list(const std::string& list) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= list.size()) {
    const std::size_t comma = list.find(',', start);
    const std::size_t end = (comma == std::string::npos) ? list.size() : comma;
    if (end > start) out.push_back(list.substr(start, end - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

/// Strip directories and a trailing .csv to name the stream after its file.
std::string stream_name_for(const std::string& path) {
  std::string name = path;
  const std::size_t slash = name.find_last_of('/');
  if (slash != std::string::npos) name = name.substr(slash + 1);
  if (name.size() > 4 && name.compare(name.size() - 4, 4, ".csv") == 0) {
    name = name.substr(0, name.size() - 4);
  }
  return name.empty() ? path : name;
}

std::atomic<bool> g_serve_stop{false};

void serve_signal_handler(int) { g_serve_stop.store(true); }

int run_monitor(const CliArgs& args) {
  using report::Table;
  live::MonitorOptions options;
  if (args.options.count("model")) {
    if (!validate_model_option(args.options.at("model"))) return 1;
    options.model = args.options.at("model");
  }
  bool threads_ok = false;
  if (const auto threads = threads_option(args, "threads", threads_ok)) {
    options.threads = static_cast<std::size_t>(*threads);
  } else if (!threads_ok) {
    return 1;
  }
  if (args.options.count("refit-every")) {
    options.refit_every =
        static_cast<std::size_t>(std::stoul(args.options.at("refit-every")));
  }

  if (args.options.count("wal-dir")) {
    options.wal.dir = args.options.at("wal-dir");
  }
  if (args.options.count("fsync")) {
    options.wal.fsync = wal::fsync_policy_from_string(args.options.at("fsync"));
  }

  std::unique_ptr<live::Monitor> monitor;
  if (!options.wal.dir.empty()) {
    // recover() handles empty, snapshot-only, and snapshot+log directories
    // uniformly; --load is a plain-snapshot path and would fight it.
    if (args.options.count("load")) {
      std::cerr << "prm_cli monitor: --load and --wal-dir are mutually exclusive "
                   "(the WAL directory has its own snapshot)\n";
      return 1;
    }
    monitor = live::Monitor::recover(options);
    const wal::RecoveryStats& rec = monitor->recovery_stats();
    std::cout << "recovered monitor from " << options.wal.dir << ": "
              << monitor->stream_count() << " stream(s), " << rec.applied
              << " of " << rec.records << " log record(s) replayed"
              << (rec.snapshot_loaded ? " on top of the snapshot" : "")
              << (rec.torn_tails ? " (torn tail tolerated)" : "") << '\n';
  } else if (args.options.count("load")) {
    monitor = live::Monitor::load_file(args.options.at("load"), options);
    std::cout << "resumed monitor with " << monitor->stream_count() << " stream(s) from "
              << args.options.at("load") << '\n';
  } else {
    monitor = std::make_unique<live::Monitor>(options);
  }

  monitor->alerts().subscribe([](const live::Alert& alert) {
    std::cout << "[alert] " << alert.rule << ": " << alert.message << '\n';
  });
  live::AlertRule degrading;
  degrading.name = "degrading";
  degrading.kind = live::AlertKind::kPhaseTransition;
  degrading.phase = live::StreamPhase::kDegrading;
  degrading.once_per_event = false;
  live::AlertRule restored;
  restored.name = "restored";
  restored.kind = live::AlertKind::kPhaseTransition;
  restored.phase = live::StreamPhase::kRestored;
  restored.once_per_event = false;
  // A recovered monitor may already have these rules from its own log.
  for (const live::AlertRule& rule : {degrading, restored}) {
    if (!monitor->alerts().has_rule(rule.name)) monitor->add_alert_rule(rule);
  }

  // Merge every file's samples into one global time-ordered replay, so the
  // monitor sees the streams interleaved as a live deployment would.
  struct Sample {
    double t;
    double value;
    std::string stream;
  };
  std::vector<Sample> replay;
  if (args.options.count("csv")) {
    for (const std::string& path : split_csv_list(args.options.at("csv"))) {
      const std::string name = stream_name_for(path);
      const data::PerformanceSeries series = data::read_csv_file(path, name);
      for (std::size_t i = 0; i < series.size(); ++i) {
        replay.push_back({series.time(i), series.value(i), name});
      }
    }
  }
  std::stable_sort(replay.begin(), replay.end(),
                   [](const Sample& a, const Sample& b) { return a.t < b.t; });
  // Ctrl-C mid-replay stops ingesting but still drains, checkpoints, and
  // saves below -- nothing acknowledged is lost.
  std::signal(SIGINT, serve_signal_handler);
  std::signal(SIGTERM, serve_signal_handler);
  std::size_t ingested = 0;
  for (const Sample& s : replay) {
    if (g_serve_stop.load()) {
      std::cout << "prm_cli monitor: interrupted after " << ingested
                << " sample(s), shutting down cleanly\n";
      break;
    }
    monitor->ingest(s.stream, s.t, s.value);
    ++ingested;
  }
  monitor->drain();

  std::cout << "\nreplayed " << replay.size() << " sample(s) into "
            << monitor->stream_count() << " stream(s); " << monitor->refits_executed()
            << " refit(s), " << monitor->refits_coalesced() << " coalesced\n\n";
  Table table({"Stream", "Phase", "Samples", "Events", "Pred. t_r", "Refits (warm)"});
  for (const live::StreamSnapshot& snap : monitor->snapshot()) {
    table.add_row({snap.name, std::string(live::to_string(snap.phase)),
                   std::to_string(snap.samples_seen), std::to_string(snap.event_ordinal),
                   snap.predicted_recovery_time
                       ? Table::fixed(*snap.predicted_recovery_time, 2)
                       : std::string("-"),
                   std::to_string(snap.refits) + " (" + std::to_string(snap.warm_refits) +
                       ")"});
  }
  table.print(std::cout);

  if (args.options.count("save")) {
    monitor->save_file(args.options.at("save"));
    std::cout << "\nmonitor state saved to " << args.options.at("save") << '\n';
  }
  if (monitor->wal_enabled()) {
    monitor->shutdown();  // drain, final snapshot, seal + fsync the log
    std::cout << "wal checkpointed in " << options.wal.dir << '\n';
  }
  return 0;
}

int run_serve(const CliArgs& args) {
  serve::AppOptions app_options;
  if (args.options.count("model")) {
    if (!validate_model_option(args.options.at("model"))) return 1;
    app_options.default_model = args.options.at("model");
    app_options.monitor.model = app_options.default_model;
  }
  if (args.options.count("cache")) {
    app_options.cache_capacity =
        static_cast<std::size_t>(std::stoul(args.options.at("cache")));
  }
  bool threads_ok = false;
  if (const auto shards = threads_option(args, "shards", threads_ok)) {
    app_options.cache_shards = static_cast<std::size_t>(*shards);
    app_options.monitor.shards = static_cast<std::size_t>(*shards);
  } else if (!threads_ok) {
    return 1;
  }
  if (const auto max_batch = threads_option(args, "max-batch", threads_ok)) {
    app_options.max_batch_samples = static_cast<std::size_t>(*max_batch);
  } else if (!threads_ok) {
    return 1;
  }
  if (const auto fit_threads = threads_option(args, "fit-threads", threads_ok)) {
    app_options.fit_threads = *fit_threads;
  } else if (!threads_ok) {
    return 1;
  }
  if (args.options.count("wal-dir")) {
    app_options.monitor.wal.dir = args.options.at("wal-dir");
  }
  if (args.options.count("fsync")) {
    app_options.monitor.wal.fsync =
        wal::fsync_policy_from_string(args.options.at("fsync"));
  }
  // Cluster topology: a node (--cluster ADDR) or a router (--router on),
  // never both; either one needs the full membership in --peers.
  cluster::ClusterOptions cluster_options;
  bool cluster_on = false;
  if (args.options.count("router")) {
    const std::string& value = args.options.at("router");
    if (value == "on") {
      cluster_options.router = true;
      cluster_on = true;
    } else if (value != "off") {
      std::cerr << "prm_cli: '--router' must be 'on' or 'off', got '" << value
                << "'\n";
      return 1;
    }
  }
  if (args.options.count("cluster")) {
    if (cluster_options.router) {
      std::cerr << "prm_cli: '--cluster' and '--router on' are mutually exclusive\n";
      return 1;
    }
    cluster_options.self = args.options.at("cluster");
    cluster_on = true;
  }
  if (args.options.count("peers")) {
    const std::string& list = args.options.at("peers");
    for (std::size_t start = 0; start <= list.size();) {
      const std::size_t comma = std::min(list.find(',', start), list.size());
      if (comma > start) {
        cluster_options.peers.push_back(list.substr(start, comma - start));
      }
      start = comma + 1;
    }
  }
  if (cluster_on && cluster_options.peers.empty()) {
    std::cerr << "prm_cli: cluster mode needs '--peers HOST:PORT,HOST:PORT,...'\n";
    return 1;
  }
  if (!cluster_on && !cluster_options.peers.empty()) {
    std::cerr << "prm_cli: '--peers' needs '--cluster ADDR' or '--router on'\n";
    return 1;
  }

  serve::ServerOptions server_options;
  server_options.port = args.options.count("port")
                            ? static_cast<std::uint16_t>(
                                  std::stoul(args.options.at("port")))
                            : 8080;
  if (!args.options.count("port") && !cluster_options.self.empty()) {
    // A node's advertised address IS its endpoint; default the listen port
    // to it so one flag configures both.
    try {
      server_options.port = cluster::parse_peer(cluster_options.self).port;
    } catch (const std::invalid_argument& e) {
      std::cerr << "prm_cli: bad '--cluster' address: " << e.what() << '\n';
      return 1;
    }
  }
  if (const auto threads = threads_option(args, "threads", threads_ok)) {
    server_options.threads = static_cast<std::size_t>(*threads);
  } else if (!threads_ok) {
    return 1;
  }
  if (args.options.count("queue")) {
    server_options.max_pending =
        static_cast<std::size_t>(std::stoul(args.options.at("queue")));
  }
  if (const auto event_threads = threads_option(args, "event-threads", threads_ok)) {
    server_options.event_threads = static_cast<std::size_t>(*event_threads);
  } else if (!threads_ok) {
    return 1;
  }
  if (args.options.count("reuseport")) {
    const std::string& value = args.options.at("reuseport");
    if (value == "on") {
      server_options.reuseport = true;
    } else if (value == "off") {
      server_options.reuseport = false;
    } else {
      std::cerr << "prm_cli: '--reuseport' must be 'on' or 'off', got '" << value
                << "'\n";
      return 1;
    }
  }

  serve::App app(app_options);
  if (app.monitor().wal_enabled()) {
    const wal::RecoveryStats& rec = app.monitor().recovery_stats();
    std::cout << "prm_cli serve: wal at " << app_options.monitor.wal.dir << " (fsync "
              << wal::to_string(app_options.monitor.wal.fsync) << "); recovered "
              << app.monitor().stream_count() << " stream(s), " << rec.applied
              << " of " << rec.records << " log record(s) replayed"
              << (rec.torn_tails ? ", torn tail tolerated" : "") << std::endl;
  }
  if (cluster_on) {
    try {
      app.enable_cluster(cluster_options);
    } catch (const std::invalid_argument& e) {
      std::cerr << "prm_cli: bad cluster topology: " << e.what() << '\n';
      return 1;
    }
    const cluster::Cluster& cluster = *app.cluster();
    std::cout << "prm_cli serve: cluster "
              << (cluster.router() ? std::string("router")
                                   : "node " + cluster.self())
              << " over " << cluster.ring().size() << " peer(s), "
              << cluster.ring().vnodes_per_node() << " vnodes each" << std::endl;
  }
  serve::Server server(server_options, app.async_handler());
  server.start();
  app.set_stats_provider([&server] { return server.stats(); });

  // The "listening on" line is the startup contract: CI and scripts poll for
  // it (and parse the ephemeral port from it), so flush immediately.
  std::cout << "prm_cli serve: listening on " << server_options.bind_address << ':'
            << server.port() << " (" << server_options.event_threads << ' '
            << server.backend_name() << " loop(s), " << server_options.threads
            << " worker thread(s), fit cache " << app.fit_cache().capacity() << " in "
            << app.fit_cache().shards() << " shard(s), model '"
            << app.options().default_model << "')" << std::endl;
  std::cout << "routes: /healthz /metrics /v1/models /v1/fit /v1/forecast "
               "/v1/metrics /v1/streams /v1/cluster; Ctrl-C stops" << std::endl;

  std::signal(SIGINT, serve_signal_handler);
  std::signal(SIGTERM, serve_signal_handler);
  while (!g_serve_stop.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  std::cout << "prm_cli serve: shutting down\n";
  server.stop();  // stop accepting and drain the worker queue first
  if (app.monitor().wal_enabled()) {
    app.monitor().shutdown();  // drain refits, final snapshot, seal + fsync
    std::cout << "prm_cli serve: wal checkpointed\n";
  }
  const serve::ServerStats stats = server.stats();
  std::cout << "served " << stats.requests_total << " request(s), rejected "
            << stats.connections_rejected << " on overload\n";
  return 0;
}

int run_detect(const data::PerformanceSeries& series) {
  const auto onset = data::find_hazard_onset(series);
  if (!onset) {
    std::cout << "no hazard onset detected\n";
    return 0;
  }
  std::cout << "hazard onset detected:\n"
            << "  performance peak at sample " << onset->peak_index << " (t = "
            << series.time(onset->peak_index) << ")\n"
            << "  decline alarm at sample " << onset->alarm_index << '\n'
            << "  aligned series: " << onset->aligned.size()
            << " samples, trough depth "
            << 1.0 - onset->aligned.trough_value() << '\n';
  std::cout << "re-run `prm_cli fit` on the aligned series to model the event\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2) {
    const std::string_view first = argv[1];
    if (first == "help" || first == "--help" || first == "-h") {
      usage(std::cout);
      return 0;
    }
  }
  const auto args = parse(argc, argv);
  if (!args) {
    usage();
    return 1;
  }

  try {
    if (args->command == "models") {
      for (const std::string& name : core::ModelRegistry::instance().names()) {
        const core::ModelPtr m = core::ModelRegistry::instance().create(name);
        std::cout << name << "  (" << core::model_family(name) << ", "
                  << m->num_parameters() << " params)  " << m->description() << '\n';
      }
      return 0;
    }
    if (args->command == "demo") {
      CliArgs demo = *args;
      std::cout << "running on the bundled 1990-93 recession dataset\n\n";
      return run_fit(data::recession("1990-93").series, demo);
    }
    if (args->command == "predict") {
      if (!args->options.count("fit")) {
        usage();
        return 1;
      }
      const core::FitResult fit = core::load_fit_file(args->options.at("fit"));
      std::cout << "loaded " << core::display_label(fit.model().name()) << " fit on '"
                << fit.series().name() << "' (" << fit.series().size() << " samples)\n";
      const double level = args->options.count("level")
                               ? std::stod(args->options.at("level"))
                               : fit.series().value(0);
      print_predictions(fit, level);
      return 0;
    }
    if (args->command == "uncertainty") {
      if (!args->options.count("fit")) {
        usage();
        return 1;
      }
      const core::FitResult fit = core::load_fit_file(args->options.at("fit"));
      core::UncertaintyOptions opts;
      bool threads_ok = false;
      if (const auto threads = threads_option(*args, "threads", threads_ok)) {
        opts.threads = *threads;
      } else if (!threads_ok) {
        usage();
        return 1;
      }
      if (args->options.count("replicates")) {
        opts.replicates = std::stoi(args->options.at("replicates"));
      }
      if (args->options.count("level")) {
        opts.recovery_level = std::stod(args->options.at("level"));
      } else {
        opts.recovery_level = fit.series().value(0);
      }
      const core::UncertaintyResult u = core::prediction_uncertainty(fit, opts);
      using report::Table;
      std::cout << "Monte Carlo prediction intervals ("
                << Table::percent(100.0 * (1.0 - opts.alpha), 0) << " central, "
                << u.replicates_used << " bootstrap refits):\n";
      Table t({"Quantity", "Point", "Lower", "Upper"});
      t.add_row({"recovery time to " + std::to_string(opts.recovery_level),
                 Table::fixed(u.recovery_time.point, 2),
                 Table::fixed(u.recovery_time.lower, 2),
                 Table::fixed(u.recovery_time.upper, 2)});
      t.add_row({"trough time", Table::fixed(u.trough_time.point, 2),
                 Table::fixed(u.trough_time.lower, 2),
                 Table::fixed(u.trough_time.upper, 2)});
      t.add_row({"trough value", Table::fixed(u.trough_value.point, 4),
                 Table::fixed(u.trough_value.lower, 4),
                 Table::fixed(u.trough_value.upper, 4)});
      for (const auto& [kind, est] : u.metrics) {
        t.add_row({std::string(core::to_string(kind)), Table::fixed(est.point, 4),
                   Table::fixed(est.lower, 4), Table::fixed(est.upper, 4)});
      }
      t.print(std::cout);
      if (u.no_recovery_rate > 0.0) {
        std::cout << report::Table::percent(u.no_recovery_rate, 1)
                  << " of replicates never reach the recovery level\n";
      }
      return 0;
    }
    if (args->command == "monitor") {
      if (!args->options.count("csv") && !args->options.count("load") &&
          !args->options.count("wal-dir")) {
        usage();
        return 1;
      }
      return run_monitor(*args);
    }
    if (args->command == "serve") {
      return run_serve(*args);
    }
    if (args->command == "fit" || args->command == "detect") {
      if (!args->options.count("csv")) {
        usage();
        return 1;
      }
      const data::PerformanceSeries series =
          data::read_csv_file(args->options.at("csv"), args->options.at("csv"));
      return args->command == "fit" ? run_fit(series, *args) : run_detect(series);
    }
    usage();
    return 1;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 2;
  }
}
