// prm_cli: command-line front end to the whole pipeline, for users who have
// a CSV and no desire to write C++.
//
//   prm_cli fit       --csv data.csv [--model NAME] [--holdout N]
//                     [--loss squared|huber|cauchy] [--level L] [--save FILE]
//   prm_cli predict   --fit FILE [--level L]    # reuse a saved fit
//   prm_cli uncertainty --fit FILE [--level L] [--replicates N]
//   prm_cli detect    --csv data.csv            # hazard-onset detection
//   prm_cli models                              # list registered models
//   prm_cli demo                                # run on a bundled dataset
//
// CSV format: "t,value" with a header line; t strictly increasing.
// With --model omitted, every registered model is fit and the best holdout
// PMSE wins. Exit code 0 on success, 1 on CLI errors, 2 on data errors.
#include <cstring>
#include <iostream>
#include <map>
#include <optional>

#include "core/analysis.hpp"
#include "core/metrics.hpp"
#include "core/predictor.hpp"
#include "core/serialize.hpp"
#include "core/uncertainty.hpp"
#include "data/changepoint.hpp"
#include "data/csv.hpp"
#include "report/ascii_plot.hpp"
#include "report/table.hpp"

namespace {

using namespace prm;

struct CliArgs {
  std::string command;
  std::map<std::string, std::string> options;
};

std::optional<CliArgs> parse(int argc, char** argv) {
  if (argc < 2) return std::nullopt;
  CliArgs args;
  args.command = argv[1];
  for (int i = 2; i + 1 < argc; i += 2) {
    if (std::strncmp(argv[i], "--", 2) != 0) return std::nullopt;
    args.options[argv[i] + 2] = argv[i + 1];
  }
  return args;
}

void usage() {
  std::cerr << "usage:\n"
            << "  prm_cli fit     --csv FILE [--model NAME] [--holdout N]\n"
            << "                  [--loss squared|huber|cauchy] [--level L] [--save FILE]\n"
            << "  prm_cli predict --fit FILE [--level L]\n"
            << "  prm_cli uncertainty --fit FILE [--level L] [--replicates N]\n"
            << "  prm_cli detect  --csv FILE\n"
            << "  prm_cli models\n"
            << "  prm_cli demo\n";
}

void print_predictions(const core::FitResult& fit, double level) {
  using report::Table;
  std::cout << "\nPredictions:\n";
  std::cout << "  trough: t = " << core::predict_trough_time(fit) << " at "
            << core::predict_trough_value(fit) << '\n';
  if (const auto tr = core::predict_recovery_time(fit, level)) {
    std::cout << "  recovery to " << level << ": t = " << *tr << '\n';
  } else {
    std::cout << "  recovery to " << level << ": not reached within the search horizon\n";
  }
  std::cout << "\nInterval-based resilience metrics (paper Eqs. 14-21):\n";
  Table metrics({"Metric", "Actual", "Predicted", "Rel. error"});
  for (const core::MetricValue& m : core::predictive_metrics(fit)) {
    metrics.add_row({std::string(core::to_string(m.kind)), Table::fixed(m.actual, 6),
                     Table::fixed(m.predicted, 6), Table::fixed(m.relative_error, 6)});
  }
  metrics.print(std::cout);
}

int run_fit(const data::PerformanceSeries& series, const CliArgs& args) {
  using report::Table;
  const std::size_t holdout =
      args.options.count("holdout")
          ? static_cast<std::size_t>(std::stoul(args.options.at("holdout")))
          : std::max<std::size_t>(series.size() / 10, 1);

  core::FitOptions fit_opts;
  if (args.options.count("loss")) {
    const std::string& loss = args.options.at("loss");
    if (loss == "huber") {
      fit_opts.loss = opt::LossKind::kHuber;
    } else if (loss == "cauchy") {
      fit_opts.loss = opt::LossKind::kCauchy;
    } else if (loss != "squared") {
      std::cerr << "unknown loss: " << loss << '\n';
      return 1;
    }
  }

  // Candidate models: the requested one, or all registered.
  std::vector<std::string> names;
  if (args.options.count("model")) {
    names.push_back(args.options.at("model"));
  } else {
    names = core::ModelRegistry::instance().names();
  }

  Table ranking({"Model", "SSE", "PMSE", "r2_adj", "EC", "Theil U"});
  std::optional<core::FitResult> best;
  std::optional<core::ValidationReport> best_val;
  double best_pmse = std::numeric_limits<double>::infinity();
  for (const std::string& name : names) {
    core::FitResult fit = core::fit_model(name, series, holdout, fit_opts);
    const core::ValidationReport v = core::validate(fit);
    ranking.add_row({core::display_label(name), Table::scientific(v.sse, 3),
                     Table::scientific(v.pmse, 3), Table::fixed(v.r2_adj, 4),
                     Table::percent(v.ec), Table::fixed(v.theil_u, 3)});
    if (fit.success() && v.pmse < best_pmse) {
      best_pmse = v.pmse;
      best = std::move(fit);
      best_val = v;
    }
  }
  ranking.print(std::cout);
  if (!best) {
    std::cerr << "no model produced a usable fit\n";
    return 2;
  }

  std::cout << "\nBest model by holdout PMSE: " << core::display_label(best->model().name())
            << "\n\nFitted parameters:\n";
  const auto pnames = best->model().parameter_names();
  for (std::size_t i = 0; i < pnames.size(); ++i) {
    std::cout << "  " << pnames[i] << " = " << best->parameters()[i] << '\n';
  }

  const double level =
      args.options.count("level") ? std::stod(args.options.at("level")) : series.value(0);
  print_predictions(*best, level);

  if (args.options.count("save")) {
    core::save_fit_file(args.options.at("save"), *best);
    std::cout << "\nfit saved to " << args.options.at("save") << '\n';
  }

  report::AsciiPlot plot(90, 20);
  plot.set_title(series.name() + ": data (o), fit (*), 95% CI (.)");
  report::PlotBand band;
  band.times.assign(series.times().begin(), series.times().end());
  band.lower = best_val->band.lower;
  band.upper = best_val->band.upper;
  band.label = "95% CI";
  plot.add_band(band);
  plot.add_series(series, 'o', "data");
  plot.add_series(data::PerformanceSeries("fit", band.times, best_val->predictions), '*',
                  "model");
  plot.add_vertical_marker(series.time(series.size() - holdout - 1), "fit boundary");
  plot.print(std::cout);
  return 0;
}

int run_detect(const data::PerformanceSeries& series) {
  const auto onset = data::find_hazard_onset(series);
  if (!onset) {
    std::cout << "no hazard onset detected\n";
    return 0;
  }
  std::cout << "hazard onset detected:\n"
            << "  performance peak at sample " << onset->peak_index << " (t = "
            << series.time(onset->peak_index) << ")\n"
            << "  decline alarm at sample " << onset->alarm_index << '\n'
            << "  aligned series: " << onset->aligned.size()
            << " samples, trough depth "
            << 1.0 - onset->aligned.trough_value() << '\n';
  std::cout << "re-run `prm_cli fit` on the aligned series to model the event\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = parse(argc, argv);
  if (!args) {
    usage();
    return 1;
  }

  try {
    if (args->command == "models") {
      for (const std::string& name : core::ModelRegistry::instance().names()) {
        const core::ModelPtr m = core::ModelRegistry::instance().create(name);
        std::cout << name << "  (" << m->num_parameters() << " params)  "
                  << m->description() << '\n';
      }
      return 0;
    }
    if (args->command == "demo") {
      CliArgs demo = *args;
      std::cout << "running on the bundled 1990-93 recession dataset\n\n";
      return run_fit(data::recession("1990-93").series, demo);
    }
    if (args->command == "predict") {
      if (!args->options.count("fit")) {
        usage();
        return 1;
      }
      const core::FitResult fit = core::load_fit_file(args->options.at("fit"));
      std::cout << "loaded " << core::display_label(fit.model().name()) << " fit on '"
                << fit.series().name() << "' (" << fit.series().size() << " samples)\n";
      const double level = args->options.count("level")
                               ? std::stod(args->options.at("level"))
                               : fit.series().value(0);
      print_predictions(fit, level);
      return 0;
    }
    if (args->command == "uncertainty") {
      if (!args->options.count("fit")) {
        usage();
        return 1;
      }
      const core::FitResult fit = core::load_fit_file(args->options.at("fit"));
      core::UncertaintyOptions opts;
      if (args->options.count("replicates")) {
        opts.replicates = std::stoi(args->options.at("replicates"));
      }
      if (args->options.count("level")) {
        opts.recovery_level = std::stod(args->options.at("level"));
      } else {
        opts.recovery_level = fit.series().value(0);
      }
      const core::UncertaintyResult u = core::prediction_uncertainty(fit, opts);
      using report::Table;
      std::cout << "Monte Carlo prediction intervals ("
                << Table::percent(100.0 * (1.0 - opts.alpha), 0) << " central, "
                << u.replicates_used << " bootstrap refits):\n";
      Table t({"Quantity", "Point", "Lower", "Upper"});
      t.add_row({"recovery time to " + std::to_string(opts.recovery_level),
                 Table::fixed(u.recovery_time.point, 2),
                 Table::fixed(u.recovery_time.lower, 2),
                 Table::fixed(u.recovery_time.upper, 2)});
      t.add_row({"trough time", Table::fixed(u.trough_time.point, 2),
                 Table::fixed(u.trough_time.lower, 2),
                 Table::fixed(u.trough_time.upper, 2)});
      t.add_row({"trough value", Table::fixed(u.trough_value.point, 4),
                 Table::fixed(u.trough_value.lower, 4),
                 Table::fixed(u.trough_value.upper, 4)});
      for (const auto& [kind, est] : u.metrics) {
        t.add_row({std::string(core::to_string(kind)), Table::fixed(est.point, 4),
                   Table::fixed(est.lower, 4), Table::fixed(est.upper, 4)});
      }
      t.print(std::cout);
      if (u.no_recovery_rate > 0.0) {
        std::cout << report::Table::percent(u.no_recovery_rate, 1)
                  << " of replicates never reach the recovery level\n";
      }
      return 0;
    }
    if (args->command == "fit" || args->command == "detect") {
      if (!args->options.count("csv")) {
        usage();
        return 1;
      }
      const data::PerformanceSeries series =
          data::read_csv_file(args->options.at("csv"), args->options.at("csv"));
      return args->command == "fit" ? run_fit(series, *args) : run_detect(series);
    }
    usage();
    return 1;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 2;
  }
}
