// Replays the paper's seven recession payroll series as interleaved live
// streams through prm::live::Monitor: each month, every stream that has a
// sample for that month ingests it, exactly as a deployment polling seven
// systems would. The monitor detects each downturn online, refits a
// resilience model as the event unfolds (warm-starting from the previous
// fit), predicts the recovery time mid-event, and raises alerts on phase
// transitions. At the end the monitor state is saved and reloaded to show a
// restart surviving in place.
//
// The recession series start AT the pre-recession peak, so a short flat
// nominal prefix is prepended to each stream to give the CUSUM its baseline
// window (the zero-variance sigma floor makes a perfectly flat prefix fine).
#include <algorithm>
#include <iostream>
#include <sstream>
#include <vector>

#include "data/recessions.hpp"
#include "live/monitor.hpp"
#include "report/table.hpp"

int main() {
  using namespace prm;
  using report::Table;

  live::MonitorOptions options;
  options.stream.cusum.baseline = 12;
  options.stream.cusum.threshold_sigmas = 8.0;
  options.model = "competing-risks";
  options.refit_every = 4;
  options.threads = 2;

  live::Monitor monitor(options);

  // Print phase transitions as they happen, like a pager hook would.
  live::AlertRule transitions;
  transitions.name = "phase";
  transitions.kind = live::AlertKind::kPhaseTransition;
  transitions.once_per_event = false;
  monitor.alerts().add_rule(transitions);

  // Flag any stream whose predicted downturn lasts beyond 60 months.
  live::AlertRule slow;
  slow.name = "slow-recovery";
  slow.kind = live::AlertKind::kRecoveryBeyond;
  slow.threshold = 60.0;
  monitor.alerts().add_rule(slow);

  monitor.alerts().subscribe([](const live::Alert& alert) {
    std::cout << "  [" << alert.rule << "] " << alert.message << '\n';
  });

  // Build the interleaved replay: a nominal prefix per stream, then the
  // recession samples, merged globally by month.
  struct Sample {
    double t;
    double value;
    std::string stream;
  };
  const std::size_t prefix = options.stream.cusum.baseline + 4;
  std::vector<Sample> replay;
  for (const std::string_view name : data::recession_names()) {
    const data::PerformanceSeries& series = data::recession(name).series;
    const std::string stream(name);
    for (std::size_t i = 0; i < prefix; ++i) {
      replay.push_back({static_cast<double>(i) - static_cast<double>(prefix), 1.0, stream});
    }
    for (std::size_t i = 0; i < series.size(); ++i) {
      replay.push_back({series.time(i), series.value(i), stream});
    }
  }
  std::stable_sort(replay.begin(), replay.end(),
                   [](const Sample& a, const Sample& b) { return a.t < b.t; });

  std::cout << "replaying " << replay.size() << " samples across "
            << data::recession_names().size() << " recession streams\n";
  for (const Sample& s : replay) monitor.ingest(s.stream, s.t, s.value);
  monitor.drain();

  std::cout << "\nfinal state (" << monitor.refits_executed() << " refits, "
            << monitor.refits_coalesced() << " coalesced):\n";
  Table table({"Stream", "Phase", "Events", "Trough", "Pred. t_r", "Refits (warm)"});
  for (const live::StreamSnapshot& snap : monitor.snapshot()) {
    table.add_row({snap.name, std::string(live::to_string(snap.phase)),
                   std::to_string(snap.event_ordinal),
                   snap.trough_value ? Table::fixed(*snap.trough_value, 3)
                                     : std::string("-"),
                   snap.predicted_recovery_time
                       ? Table::fixed(*snap.predicted_recovery_time, 1)
                       : std::string("-"),
                   std::to_string(snap.refits) + " (" + std::to_string(snap.warm_refits) +
                       ")"});
  }
  table.print(std::cout);

  // Show the eight interval metrics for any stream that still has an
  // in-flight forecast (with the full replay most streams have RESTORED, so
  // this may print for none -- that is fine).
  for (const live::StreamSnapshot& snap : monitor.snapshot()) {
    if (!snap.has_horizon_metrics) continue;
    std::cout << "\n" << snap.name << ": metrics over the unseen horizon:\n";
    for (std::size_t i = 0; i < core::kAllMetrics.size(); ++i) {
      std::cout << "  " << core::to_string(core::kAllMetrics[i]) << " = "
                << snap.horizon_metrics[i] << '\n';
    }
    break;
  }

  // Survive a restart: serialize, reload, verify the state came back.
  std::stringstream persisted;
  monitor.save(persisted);
  const auto resumed = live::Monitor::load(persisted, options);
  std::cout << "\nsave/load round trip: " << resumed->stream_count()
            << " streams restored";
  bool intact = resumed->stream_count() == monitor.stream_count();
  for (const live::StreamSnapshot& before : monitor.snapshot()) {
    const live::StreamSnapshot after = resumed->snapshot(before.name);
    intact = intact && after.phase == before.phase &&
             after.samples_seen == before.samples_seen &&
             after.event_ordinal == before.event_ordinal &&
             after.has_fit == before.has_fit;
  }
  std::cout << (intact ? ", state intact\n" : ", STATE MISMATCH\n");
  return intact ? 0 : 1;
}
