// Cyber resilience: the paper's Section II motivates performance as
// "computational capacity or bandwidth preserved when some computers within
// a network are compromised". Real incident data is not shared widely (the
// paper's own complaint), so this example SIMULATES a fleet suffering a
// malware outbreak and recovering through staged remediation, then runs the
// full predictive-resilience pipeline on the resulting capacity curve.
#include <iostream>
#include <random>

#include "core/analysis.hpp"
#include "core/metrics.hpp"
#include "core/piecewise.hpp"
#include "core/predictor.hpp"
#include "report/ascii_plot.hpp"
#include "report/table.hpp"

namespace {

// Minimal fleet simulation: N hosts; a worm compromises hosts with a decaying
// infection rate; a response team quarantines and reimages hosts at a ramping
// repair rate. Capacity = healthy fraction, sampled hourly.
prm::data::PerformanceSeries simulate_outbreak(std::uint64_t seed) {
  constexpr int kHosts = 2000;
  constexpr int kHours = 96;
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> unit(0.0, 1.0);

  int infected = 8;  // initial foothold
  std::vector<double> capacity;
  capacity.reserve(kHours);
  capacity.push_back(1.0);

  for (int h = 1; h < kHours; ++h) {
    // Infection pressure decays as detection signatures roll out (hour ~12).
    const double infect_rate = 0.55 * std::exp(-h / 14.0);
    // Remediation ramps up as the response team scales (sigmoid at hour ~20).
    const double repair_rate = 0.22 / (1.0 + std::exp(-(h - 20.0) / 6.0));

    const int healthy = kHosts - infected;
    int newly_infected = 0;
    // Each infected host probes; successful probes compromise healthy hosts.
    const double p_hit = infect_rate * healthy / kHosts;
    for (int i = 0; i < infected; ++i) {
      if (unit(rng) < p_hit) ++newly_infected;
    }
    int repaired = 0;
    for (int i = 0; i < infected; ++i) {
      if (unit(rng) < repair_rate) ++repaired;
    }
    infected = std::max(0, infected + newly_infected - repaired);
    capacity.push_back(static_cast<double>(kHosts - infected) / kHosts);
  }
  return prm::data::PerformanceSeries("fleet-capacity", std::move(capacity));
}

}  // namespace

int main() {
  using namespace prm;
  using report::Table;

  std::cout << "=== Cyber resilience: malware outbreak on a 2000-host fleet ===\n\n";
  const data::PerformanceSeries capacity = simulate_outbreak(2024);

  // Fit with the last 10% of hours held out, exactly the paper's protocol.
  const std::size_t holdout = capacity.size() / 10;
  const data::RecessionDataset scenario{capacity, data::RecessionShape::kV, holdout};

  Table table({"Model", "SSE", "PMSE", "r2_adj", "EC"});
  core::ModelDatasetResult best;
  double best_pmse = std::numeric_limits<double>::infinity();
  for (const char* name : {"quadratic", "competing-risks", "mix-wei-exp-log",
                           "mix-wei-wei-log"}) {
    core::ModelDatasetResult r = core::analyze(name, scenario);
    table.add_row({r.model_label, Table::fixed(r.validation.sse, 6),
                   Table::scientific(r.validation.pmse, 3),
                   Table::fixed(r.validation.r2_adj, 4),
                   Table::percent(r.validation.ec)});
    if (r.validation.pmse < best_pmse) {
      best_pmse = r.validation.pmse;
      best = std::move(r);
    }
  }
  table.print(std::cout);
  std::cout << "\nBest model by PMSE: " << best.model_label << "\n\n";

  // Operational questions for the incident commander.
  const double trough_t = core::predict_trough_time(best.fit);
  std::cout << "Predicted worst point: hour " << Table::fixed(trough_t, 1) << " at "
            << Table::percent(100.0 * best.fit.evaluate(trough_t), 1) << " capacity\n";
  for (double level : {0.95, 0.99}) {
    if (const auto t = core::predict_recovery_time(best.fit, level)) {
      std::cout << "Capacity back to " << Table::percent(100.0 * level, 0) << ": hour "
                << Table::fixed(*t, 1) << '\n';
    } else {
      std::cout << "Capacity does not reach " << Table::percent(100.0 * level, 0)
                << " within the search horizon\n";
    }
  }

  // Resilience metrics over the held-out window.
  std::cout << "\nInterval-based resilience metrics over the predictive window:\n";
  Table metrics({"Metric", "Actual", "Predicted", "Rel. error"});
  for (const core::MetricValue& m : core::predictive_metrics(best.fit)) {
    metrics.add_row({std::string(core::to_string(m.kind)), Table::fixed(m.actual, 5),
                     Table::fixed(m.predicted, 5), Table::fixed(m.relative_error, 5)});
  }
  metrics.print(std::cout);
  std::cout << '\n';

  // The conceptual Figure-1 view: nominal -> transient -> new steady state.
  const core::PiecewiseResilienceCurve curve(best.fit.model_ptr(), best.fit.parameters(),
                                             /*t_hazard=*/12.0,
                                             /*t_recovery=*/12.0 + capacity.size() - 1.0,
                                             /*nominal=*/1.0);
  report::AsciiPlot plot(90, 20);
  plot.set_title("Piecewise resilience curve (paper Fig. 1): nominal / transient / steady");
  plot.add_series(curve.sample(0.0, 120.0, 121), '*', "piecewise model curve");
  plot.add_vertical_marker(12.0, "disruption (t_h)");
  plot.print(std::cout);
  return 0;
}
