// Grid outage: an end-to-end infrastructure scenario covering the parts of
// the pipeline the other examples do not -- hazard-onset detection on raw
// telemetry and Monte Carlo uncertainty on the restoration forecast.
//
// Story: a regional grid reports hourly served-load telemetry. A storm
// knocks out feeders mid-stream. The operator's pipeline must
//   1. detect the onset (no one hands it "t = 0 is the peak"),
//   2. align and normalize the post-onset curve,
//   3. fit resilience models to the partially-observed event,
//   4. forecast restoration with confidence intervals, not point guesses.
// Physical systems recover to nominal or degraded levels (paper Sec. II),
// which the simulated restoration respects.
#include <cmath>
#include <iostream>
#include <random>

#include "core/analysis.hpp"
#include "core/predictor.hpp"
#include "core/uncertainty.hpp"
#include "core/whatif.hpp"
#include "data/changepoint.hpp"
#include "report/ascii_plot.hpp"
#include "report/table.hpp"

namespace {

using namespace prm;

// Hourly served load: nominal regime with daily ripple, storm hit at hour 72,
// staged feeder restoration afterwards (fast first wave, slow tail), settling
// slightly BELOW nominal (storm-damaged feeders written off).
data::PerformanceSeries simulate_grid_telemetry(std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::normal_distribution<double> noise(0.0, 0.0015);
  std::vector<double> load;
  constexpr int kOnset = 72;
  constexpr int kTotal = 240;
  for (int h = 0; h < kTotal; ++h) {
    double value;
    if (h < kOnset) {
      value = 1.0 + 0.004 * std::sin(2.0 * M_PI * h / 24.0);
    } else {
      const double s = static_cast<double>(h - kOnset);
      // Storm drop to 62% over ~6 hours, then staged recovery:
      // exponential first wave + slow tail to a degraded 98% steady state.
      const double drop = 0.38 * (1.0 - std::exp(-s / 2.5));
      const double wave1 = 0.30 * (1.0 - std::exp(-std::pow(s / 30.0, 1.6)));
      const double tail = 0.06 * (1.0 - std::exp(-s / 90.0));
      value = 1.0 - drop + wave1 + tail;
      value = std::min(value, 0.985);  // written-off feeders: degraded steady state
    }
    load.push_back(value * (1.0 + noise(rng)));
  }
  return data::PerformanceSeries("grid-load", std::move(load));
}

}  // namespace

int main() {
  using report::Table;

  std::cout << "=== Grid outage: onset detection -> fit -> probabilistic restoration ===\n\n";
  const data::PerformanceSeries telemetry = simulate_grid_telemetry(7);

  // 1-2. Find the hazard onset in the raw stream and align.
  data::CusumOptions cusum;
  cusum.baseline = 48;
  const auto onset = data::find_hazard_onset(telemetry, cusum);
  if (!onset) {
    std::cout << "no outage detected in telemetry\n";
    return 0;
  }
  std::cout << "Onset detection: load peak at hour " << onset->peak_index
            << ", decline alarm at hour " << onset->alarm_index << " (truth: storm at 72)\n";

  // 3. The operator is mid-event: use the first 60% of the aligned curve.
  const std::size_t observed_n = onset->aligned.size() * 60 / 100;
  const data::PerformanceSeries observed = onset->aligned.head(observed_n);
  std::cout << "Observed so far: " << observed.size() << " of " << onset->aligned.size()
            << " post-onset hours\n\n";

  Table ranking({"Model", "SSE", "PMSE", "r2_adj"});
  std::optional<core::FitResult> best;
  double best_pmse = std::numeric_limits<double>::infinity();
  for (const char* name : {"quadratic", "competing-risks", "mix-wei-exp-log",
                           "mix-wei-wei-log"}) {
    core::FitResult fit = core::fit_model(name, observed, 6);
    const auto v = core::validate(fit);
    ranking.add_row({core::display_label(name), Table::scientific(v.sse, 3),
                     Table::scientific(v.pmse, 3), Table::fixed(v.r2_adj, 4)});
    if (fit.success() && v.pmse < best_pmse) {
      best_pmse = v.pmse;
      best = std::move(fit);
    }
  }
  ranking.print(std::cout);
  std::cout << "\nSelected: " << core::display_label(best->model().name()) << "\n\n";

  // 4. Probabilistic restoration forecast: when is 95% of load back?
  core::UncertaintyOptions unc;
  unc.replicates = 120;
  unc.alpha = 0.10;
  unc.recovery_level = 0.95;
  unc.fit.multistart.sampled_starts = 2;
  unc.fit.multistart.jitter_per_start = 0;
  const core::UncertaintyResult u = core::prediction_uncertainty(*best, unc);

  std::cout << "Restoration forecast (90% intervals, " << u.replicates_used
            << " bootstrap refits):\n";
  Table forecast({"Quantity", "Point", "Lower", "Upper"});
  forecast.add_row({"hours to 95% load", Table::fixed(u.recovery_time.point, 1),
                    Table::fixed(u.recovery_time.lower, 1),
                    Table::fixed(u.recovery_time.upper, 1)});
  forecast.add_row({"worst-hour load", Table::percent(100.0 * u.trough_value.point, 1),
                    Table::percent(100.0 * u.trough_value.lower, 1),
                    Table::percent(100.0 * u.trough_value.upper, 1)});
  forecast.print(std::cout);
  if (u.no_recovery_rate > 0.0) {
    std::cout << "  (" << Table::percent(u.no_recovery_rate, 1)
              << " of replicates never reach 95% -- restoration risk)\n";
  }

  // What-if: regulators demand 95% load within 48 post-onset hours. How much
  // faster must the fitted restoration process run?
  if (const auto kappa = core::required_acceleration(*best, 0.95, 48.0)) {
    std::cout << "\nWhat-if: hitting 95% load by post-onset hour 48 requires the\n"
              << "restoration process to run " << Table::fixed(*kappa, 2)
              << "x the fitted pace";
    if (const auto t = core::accelerated_recovery_time(*best, *kappa, 0.95)) {
      std::cout << " (check: accelerated recovery at hour " << Table::fixed(*t, 1) << ")";
    }
    std::cout << ".\n";
  }

  // Compare against what the full telemetry actually did.
  std::size_t actual_recovery = onset->aligned.size();
  const std::size_t trough = onset->aligned.trough_index();
  for (std::size_t i = trough; i < onset->aligned.size(); ++i) {
    if (onset->aligned.value(i) >= 0.95) {
      actual_recovery = i;
      break;
    }
  }
  std::cout << "\nGround truth: 95% load regained at post-onset hour " << actual_recovery
            << "; worst hour served " << Table::percent(100.0 * onset->aligned.trough_value(), 1)
            << "\n\nNote: the bootstrap interval quantifies noise-induced fit variance ONLY.\n"
               "Model-form error is not in it -- the mixture's recovery trend keeps\n"
               "growing past the grid's degraded ~98% plateau, so the restoration\n"
               "forecast runs optimistic. This is the paper's Sec. II caveat in action:\n"
               "physical systems recover to nominal or degraded levels, and curve\n"
               "families with unbounded recovery overshoot them.\n\n";

  report::AsciiPlot plot(90, 20);
  plot.set_title("Aligned outage curve: observed (o), unseen future (x), model (*)");
  std::vector<double> times;
  std::vector<double> fitted;
  for (std::size_t i = 0; i < onset->aligned.size(); ++i) {
    times.push_back(onset->aligned.time(i));
    fitted.push_back(best->evaluate(onset->aligned.time(i)));
  }
  plot.add_series(observed, 'o', "observed");
  plot.add_series(onset->aligned.tail(onset->aligned.size() - observed_n), 'x',
                  "unseen future");
  plot.add_series(data::PerformanceSeries("fit", times, fitted), '*', "model");
  plot.add_vertical_marker(static_cast<double>(observed_n - 1), "now");
  plot.print(std::cout);
  return 0;
}
