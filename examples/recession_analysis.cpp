// Recession analysis: a decision-support walk-through for an analyst
// monitoring an UNFOLDING recession. Mid-recession (only the first 24 months
// of the 1981-83 episode observed), the example fits every registered model,
// ranks them by information criteria, and answers the questions the paper
// motivates: when is the trough, when is recovery, and how much performance
// will be lost -- then scores those predictions against what actually
// happened in the remaining months.
#include <iomanip>
#include <iostream>

#include "core/analysis.hpp"
#include "core/metrics.hpp"
#include "core/predictor.hpp"
#include "data/shape.hpp"
#include "report/ascii_plot.hpp"
#include "report/table.hpp"

int main() {
  using namespace prm;
  using report::Table;

  const auto& full = data::recession("1981-83").series;
  constexpr std::size_t kObservedMonths = 24;

  std::cout << "=== Mid-recession analysis: 1981-83, " << kObservedMonths
            << " months observed of " << full.size() << " ===\n\n";

  // The analyst only has the observed prefix. We keep the full series around
  // purely to score the predictions afterwards.
  const data::PerformanceSeries observed = full.head(kObservedMonths);
  std::cout << "Shape classifier says: "
            << data::to_string(data::classify_shape(observed));
  if (data::is_hard_shape(data::classify_shape(observed))) {
    std::cout << "  (WARNING: W/L/K shapes are outside these models' reach -- paper Sec. VI)";
  }
  std::cout << "\n\n";

  // Fit every registered model to the observed prefix, reserving the last
  // 3 observed months as an internal holdout for PMSE.
  struct Candidate {
    std::string name;
    core::FitResult fit;
    core::ValidationReport validation;
  };
  std::vector<Candidate> candidates;
  std::vector<std::string> skipped;
  for (const std::string& name : core::ModelRegistry::instance().names()) {
    try {
      core::FitResult fit = core::fit_model(name, observed, 3);
      core::ValidationReport v = core::validate(fit);
      candidates.push_back({name, std::move(fit), std::move(v)});
    } catch (const std::exception& e) {
      // A 17-month observed prefix cannot support e.g. nn-4x4-tanh's 33
      // weights; a mid-event analyst would drop that candidate too.
      skipped.push_back(name + ": " + e.what());
    }
  }
  // Rank by PMSE: prediction is the goal, and the internal holdout exists
  // precisely to measure it. (AIC/BIC are shown for reference -- mid-series,
  // in-sample criteria happily reward models that extrapolate poorly.)
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              return a.validation.pmse < b.validation.pmse;
            });

  Table ranking({"Rank", "Model", "SSE", "PMSE", "r2_adj", "AIC", "BIC"});
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    const auto& c = candidates[i];
    ranking.add_row({std::to_string(i + 1), core::display_label(c.name),
                     Table::fixed(c.validation.sse, 6), Table::fixed(c.validation.pmse, 6),
                     Table::fixed(c.validation.r2_adj, 4), Table::fixed(c.validation.aic, 1),
                     Table::fixed(c.validation.bic, 1)});
  }
  std::cout << "Model ranking on the observed prefix (lower PMSE is better):\n";
  ranking.print(std::cout);
  for (const std::string& note : skipped) {
    std::cout << "  skipped " << note << "\n";
  }

  const Candidate& best = candidates.front();
  std::cout << "\nSelected model: " << core::display_label(best.name) << "\n\n";

  // Decision questions, answered from the fitted curve. The trough search is
  // capped at 1.5x the observed horizon -- extrapolating a parametric curve
  // much further than the data it was fit on is not defensible.
  const double trough_t =
      core::predict_trough_time(best.fit, 1.5 * (kObservedMonths - 1.0));
  const double trough_v = best.fit.evaluate(trough_t);
  std::cout << std::fixed << std::setprecision(2);
  std::cout << "Q1. When does employment bottom out?   month " << trough_t << " (index "
            << std::setprecision(4) << trough_v << ")\n";

  const auto recovery = core::predict_recovery_time(best.fit, 1.0, trough_t, 6.0);
  std::cout << std::setprecision(1);
  if (recovery) {
    std::cout << "Q2. When is pre-recession employment regained?   month " << *recovery << '\n';
  } else {
    std::cout << "Q2. Recovery to the pre-recession level is not predicted within the horizon\n";
  }

  // Score against what actually happened.
  const std::size_t actual_trough = full.trough_index();
  std::size_t actual_recovery = full.size() - 1;
  for (std::size_t i = actual_trough; i < full.size(); ++i) {
    if (full.value(i) >= 1.0) {
      actual_recovery = i;
      break;
    }
  }
  std::cout << "\nGround truth (months the analyst could not see):\n"
            << "    actual trough: month " << actual_trough << " (index "
            << std::setprecision(4) << full.trough_value() << ")\n"
            << "    actual recovery to 1.0: month " << actual_recovery << "\n\n";

  // Visual: observed prefix, model extrapolation over the defensible
  // horizon (1.5x the observed window -- beyond that the parametric trends
  // dominate and the curve is speculation).
  const double plot_horizon = 1.5 * (kObservedMonths - 1.0);
  std::vector<double> times;
  std::vector<double> extrapolated;
  for (std::size_t i = 0; i < full.size() && full.time(i) <= plot_horizon; ++i) {
    times.push_back(full.time(i));
    extrapolated.push_back(best.fit.evaluate(full.time(i)));
  }
  report::AsciiPlot plot(90, 22);
  plot.set_title("Observed prefix (o), model extrapolation (*), what actually happened (x)");
  plot.add_series(observed, 'o', "observed (24 months)");
  plot.add_series(data::PerformanceSeries("model", times, extrapolated), '*',
                  std::string(core::display_label(best.name)) + " extrapolation");
  plot.add_series(full.tail(full.size() - kObservedMonths), 'x', "subsequent reality");
  plot.add_vertical_marker(static_cast<double>(kObservedMonths - 1), "today");
  plot.print(std::cout);
  return 0;
}
