// serve_client: end-to-end demo of the prm::serve HTTP service. Boots an
// in-process server on an ephemeral loopback port, then talks to it over
// real sockets exactly as a remote client would:
//
//   1. probes /healthz and lists /v1/models,
//   2. POSTs each of the paper's seven recessions to /v1/fit (cold fits),
//   3. POSTs them all again to show the fit cache absorbing the repeats,
//   4. streams the 1990-93 recession sample-by-sample into
//      /v1/streams/demo/ingest and reads the live snapshot back,
//   5. dumps the /metrics counters (request totals, cache hits, latency).
//
// Prints a compact table of predicted recovery times per recession and exits
// 0, so it doubles as a ctest smoke test for the whole network stack.
#include <iostream>
#include <string>

#include "data/recessions.hpp"
#include "report/table.hpp"
#include "serve/handlers.hpp"
#include "serve/json.hpp"
#include "serve/server.hpp"

namespace {

using namespace prm;

serve::Json fit_payload(const data::RecessionDataset& dataset, const std::string& name) {
  serve::Json series = serve::Json::object();
  series["name"] = serve::Json(name);
  serve::Json times = serve::Json::array();
  for (const double t : dataset.series.times()) times.push_back(serve::Json(t));
  serve::Json values = serve::Json::array();
  for (const double v : dataset.series.values()) values.push_back(serve::Json(v));
  series["times"] = std::move(times);
  series["values"] = std::move(values);

  serve::Json body = serve::Json::object();
  body["series"] = std::move(series);
  body["model"] = serve::Json("competing-risks");
  body["holdout"] = serve::Json(dataset.holdout);
  return body;
}

const serve::Json* require(const serve::Json& doc, std::string_view key) {
  const serve::Json* field = doc.find(key);
  if (!field) throw std::runtime_error("response missing field '" + std::string(key) + "'");
  return field;
}

}  // namespace

int main() {
  serve::AppOptions app_options;
  serve::App app(app_options);

  serve::ServerOptions server_options;
  server_options.port = 0;  // ephemeral: no clash with anything else running
  server_options.threads = 4;
  serve::Server server(server_options,
                       [&app](const serve::http::Request& r) { return app.handle(r); });
  server.start();
  app.set_stats_provider([&server] { return server.stats(); });
  std::cout << "serve_client: server listening on 127.0.0.1:" << server.port() << "\n\n";

  serve::http::Client client("127.0.0.1", server.port());

  const serve::http::Response health = client.get("/healthz");
  std::cout << "GET /healthz -> " << health.status << ' ' << health.body << '\n';
  const serve::Json models = serve::Json::parse(client.get("/v1/models").body);
  std::cout << "GET /v1/models -> " << require(models, "models")->as_array().size()
            << " registered models\n\n";

  report::Table table({"Recession", "Cold", "Repeat", "PMSE", "Pred. t_r (months)"});
  for (int round = 0; round < 2; ++round) {
    for (const std::string_view name : data::recession_names()) {
      const data::RecessionDataset& dataset = data::recession(name);
      const std::string body = fit_payload(dataset, std::string(name)).dump();
      const serve::http::Response response = client.post_json("/v1/fit", body);
      if (response.status != 200) {
        std::cerr << "fit of " << name << " failed: " << response.body << '\n';
        return 1;
      }
      if (round == 0) continue;  // table rows come from the second pass

      const serve::Json doc = serve::Json::parse(response.body);
      const serve::Json* recovery = require(doc, "recovery");
      const serve::Json* time = require(*recovery, "time");
      const double pmse = require(*require(doc, "validation"), "pmse")->as_number();
      table.add_row({std::string(name), "miss",
                     require(doc, "cache")->as_string(),
                     report::Table::scientific(pmse, 3),
                     time->is_null() ? std::string("beyond horizon")
                                     : report::Table::fixed(time->as_number(), 1)});
    }
  }
  std::cout << "POST /v1/fit, seven recessions twice (cold pass then cached pass):\n";
  table.print(std::cout);

  // Stream the 1990-93 recession into the live monitor bridge. The series
  // starts AT the pre-recession peak, so prepend a flat nominal run long
  // enough for the monitor's CUSUM baseline to arm (see live_monitor.cpp).
  const data::RecessionDataset& live_demo = data::recession("1990-93");
  const std::size_t prefix = app.options().monitor.stream.cusum.baseline + 4;
  serve::Json samples = serve::Json::array();
  for (std::size_t i = 0; i < prefix; ++i) {
    serve::Json pair = serve::Json::array();
    pair.push_back(serve::Json(static_cast<double>(i) - static_cast<double>(prefix)));
    pair.push_back(serve::Json(1.0));
    samples.push_back(std::move(pair));
  }
  for (std::size_t i = 0; i < live_demo.series.size(); ++i) {
    serve::Json pair = serve::Json::array();
    pair.push_back(serve::Json(live_demo.series.time(i)));
    pair.push_back(serve::Json(live_demo.series.value(i)));
    samples.push_back(std::move(pair));
  }
  serve::Json ingest = serve::Json::object();
  ingest["samples"] = std::move(samples);
  const serve::http::Response ingested =
      client.post_json("/v1/streams/demo/ingest", ingest.dump());
  if (ingested.status != 200) {
    std::cerr << "ingest failed: " << ingested.body << '\n';
    return 1;
  }
  app.monitor().drain();  // let background refits settle before the snapshot
  const serve::Json snapshot = serve::Json::parse(client.get("/v1/streams/demo").body);
  std::cout << "\nlive stream 'demo' after replaying 1990-93: phase="
            << require(snapshot, "phase")->as_string()
            << ", refits=" << require(*require(snapshot, "refits"), "total")->as_number()
            << '\n';

  const serve::Json metrics = serve::Json::parse(client.get("/metrics").body);
  const serve::Json* fit_cache = require(metrics, "fit_cache");
  const serve::Json* response_cache = require(metrics, "response_cache");
  const serve::Json* http_stats = require(metrics, "server");
  const double fit_hits = require(*fit_cache, "hits")->as_number();
  const double response_hits = require(*response_cache, "hits")->as_number();
  std::cout << "\n/metrics: requests="
            << require(*http_stats, "requests_total")->as_number()
            << ", response cache hits=" << response_hits
            << ", fit cache hits=" << fit_hits
            << ", misses=" << require(*fit_cache, "misses")->as_number()
            << ", optimizer runs=" << require(metrics, "fits_computed")->as_number()
            << '\n';

  // The repeat pass is memoized: identical POST bodies are answered from the
  // response cache (which fronts the fit cache), so hits land in either layer.
  const bool cached_pass_worked = response_hits + fit_hits >= 7.0;
  server.stop();
  if (!cached_pass_worked) {
    std::cerr << "expected the repeat pass to be served from a cache\n";
    return 1;
  }
  std::cout << "\nserve_client: OK\n";
  return 0;
}
