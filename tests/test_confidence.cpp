#include "stats/confidence.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <vector>

namespace prm::stats {
namespace {

TEST(ResidualVariance, MatchesEq12) {
  const std::vector<double> obs{1.0, 2.0, 3.0, 4.0};
  const std::vector<double> pred{1.1, 1.9, 3.1, 3.9};
  // SSE = 4 * 0.01 = 0.04; n - 2 = 2 -> 0.02.
  EXPECT_NEAR(residual_variance(obs, pred), 0.02, 1e-14);
}

TEST(ResidualVariance, RequiresAtLeastThreeSamples) {
  const std::vector<double> two{1.0, 2.0};
  EXPECT_THROW(residual_variance(two, two), std::invalid_argument);
  EXPECT_THROW(residual_variance(two, std::vector<double>{1.0}), std::invalid_argument);
}

TEST(LevelBand, WidthIsZSigmaAndCentersOnPredictions) {
  const std::vector<double> obs{1.0, 2.0, 3.0, 4.0};
  const std::vector<double> pred{1.1, 1.9, 3.1, 3.9};
  const std::vector<double> all{1.1, 1.9, 3.1, 3.9, 5.0};
  const ConfidenceBand band = level_confidence_band(obs, pred, all, 0.05);
  const double sigma = std::sqrt(0.02);
  EXPECT_NEAR(band.half_width, 1.959963984540054 * sigma, 1e-9);
  ASSERT_EQ(band.center.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_DOUBLE_EQ(band.center[i], all[i]);
    EXPECT_NEAR(band.upper[i] - band.lower[i], 2.0 * band.half_width, 1e-12);
  }
}

TEST(LevelBand, TighterAlphaWidensBand) {
  const std::vector<double> obs{1.0, 2.0, 3.0, 4.0};
  const std::vector<double> pred{1.1, 1.9, 3.1, 3.9};
  const auto b95 = level_confidence_band(obs, pred, pred, 0.05);
  const auto b99 = level_confidence_band(obs, pred, pred, 0.01);
  EXPECT_GT(b99.half_width, b95.half_width);
}

TEST(DeltaBand, CentersOnChanges) {
  const std::vector<double> obs{1.0, 2.0, 3.0, 4.0};
  const std::vector<double> pred{1.1, 1.9, 3.1, 3.9};
  const std::vector<double> all{1.0, 3.0, 6.0};
  const ConfidenceBand band = delta_confidence_band(obs, pred, all, 0.05);
  ASSERT_EQ(band.center.size(), 2u);
  EXPECT_DOUBLE_EQ(band.center[0], 2.0);
  EXPECT_DOUBLE_EQ(band.center[1], 3.0);
}

TEST(DeltaBand, RequiresTwoPredictions) {
  const std::vector<double> obs{1.0, 2.0, 3.0, 4.0};
  EXPECT_THROW(delta_confidence_band(obs, obs, std::vector<double>{1.0}, 0.05),
               std::invalid_argument);
}

TEST(EmpiricalCoverage, CountsInsideFraction) {
  ConfidenceBand band;
  band.center = {1.0, 2.0, 3.0, 4.0};
  band.lower = {0.5, 1.5, 2.5, 3.5};
  band.upper = {1.5, 2.5, 3.5, 4.5};
  // 3 of 4 inside (10.0 is far outside).
  EXPECT_NEAR(empirical_coverage(std::vector<double>{1.2, 2.4, 10.0, 3.6}, band), 75.0, 1e-12);
  // Boundary counts as inside.
  EXPECT_NEAR(empirical_coverage(std::vector<double>{0.5, 2.5, 3.5, 4.5}, band), 100.0, 1e-12);
}

TEST(EmpiricalCoverage, Errors) {
  ConfidenceBand band;
  band.center = {1.0};
  band.lower = {0.0};
  band.upper = {2.0};
  EXPECT_THROW(empirical_coverage(std::vector<double>{1.0, 2.0}, band), std::invalid_argument);
  ConfidenceBand empty;
  EXPECT_THROW(empirical_coverage(std::vector<double>{}, empty), std::invalid_argument);
}

TEST(EmpiricalCoverage, NominalCoverageOnGaussianNoise) {
  // Large-sample check: with Gaussian noise of the estimated sigma, a 95%
  // level band should cover ~95% of observations.
  std::mt19937_64 rng(12345);
  std::normal_distribution<double> noise(0.0, 0.3);
  const int n = 4000;
  std::vector<double> pred(n), obs(n);
  for (int i = 0; i < n; ++i) {
    pred[i] = 1.0 + 0.001 * i;
    obs[i] = pred[i] + noise(rng);
  }
  const auto band = level_confidence_band(obs, pred, pred, 0.05);
  const double ec = empirical_coverage(obs, band);
  EXPECT_NEAR(ec, 95.0, 1.2);
}

}  // namespace
}  // namespace prm::stats
