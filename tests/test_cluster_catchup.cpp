// WAL segment shipping end-to-end: a replica that downloads an owner's
// snapshot + sealed segments over /v1/cluster/segments and boots through
// live::Monitor::recover must serialize to EXACTLY the bytes the owner's own
// save() produces -- catch-up IS recovery, just with remotely fetched files.
//
// Also covered: the manifest route's shape, the file route's path-safety
// gate (only the WAL dir's own flat names are servable), 404 on absent
// files, and fetch_catchup's failure contract against a dead peer.
#include <gtest/gtest.h>

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdlib>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>

#include "cluster/cluster.hpp"
#include "live/monitor.hpp"
#include "serve/handlers.hpp"
#include "serve/http.hpp"
#include "serve/json.hpp"
#include "serve/server.hpp"

namespace {

using namespace prm;
using serve::Json;

/// RAII temp directory under TMPDIR; removed (recursively) on destruction.
class TempDir {
 public:
  TempDir() {
    const char* base = std::getenv("TMPDIR");
    path_ = std::string(base != nullptr ? base : "/tmp") + "/prm_catchup_XXXXXX";
    if (::mkdtemp(path_.data()) == nullptr) {
      throw std::runtime_error("mkdtemp failed");
    }
  }
  ~TempDir() { remove_tree(path_); }
  const std::string& path() const { return path_; }

  static void remove_tree(const std::string& dir) {
    if (DIR* handle = ::opendir(dir.c_str())) {
      while (const dirent* entry = ::readdir(handle)) {
        const std::string name = entry->d_name;
        if (name == "." || name == "..") continue;
        const std::string child = dir + "/" + name;
        struct stat st{};
        if (::lstat(child.c_str(), &st) == 0 && S_ISDIR(st.st_mode)) {
          remove_tree(child);
        } else {
          ::unlink(child.c_str());
        }
      }
      ::closedir(handle);
    }
    ::rmdir(dir.c_str());
  }

 private:
  std::string path_;
};

class ClusterCatchup : public ::testing::Test {
 protected:
  void SetUp() override {
    serve::AppOptions options;
    options.monitor.wal.dir = owner_dir_.path();
    app_ = std::make_unique<serve::App>(options);
    serve::ServerOptions server_options;
    server_options.port = 0;
    server_options.threads = 2;
    server_ = std::make_unique<serve::Server>(server_options, app_->async_handler());
    server_->start();
    peer_ = "127.0.0.1:" + std::to_string(server_->port());
  }

  void TearDown() override { server_->stop(); }

  void ingest_wave(int streams, int samples, double t0) {
    for (int s = 0; s < streams; ++s) {
      const std::string name = "svc-" + std::to_string(s);
      for (int i = 0; i < samples; ++i) {
        const double t = t0 + i;
        // A dip-and-recover shape so refits have something to chew on.
        const double value = 1.0 - 0.4 / (1.0 + 0.1 * (t - t0));
        app_->monitor().ingest(name, t, value);
      }
    }
  }

  TempDir owner_dir_;
  TempDir replica_dir_;
  std::unique_ptr<serve::App> app_;
  std::unique_ptr<serve::Server> server_;
  std::string peer_;
};

TEST_F(ClusterCatchup, ReplicaRecoversByteIdenticalToOwnerSave) {
  ingest_wave(/*streams=*/3, /*samples=*/30, /*t0=*/0.0);
  app_->monitor().checkpoint();  // seal + snapshot: the shipped baseline
  ingest_wave(/*streams=*/5, /*samples=*/10, /*t0=*/100.0);  // live tail

  const cluster::CatchupStats stats =
      cluster::fetch_catchup(peer_, replica_dir_.path());
  EXPECT_TRUE(stats.snapshot_fetched);
  EXPECT_GE(stats.segments_fetched, 1u);
  EXPECT_GT(stats.bytes_fetched, 0u);

  live::MonitorOptions replica_options = app_->options().monitor;
  replica_options.wal.dir = replica_dir_.path();
  const std::unique_ptr<live::Monitor> replica =
      live::Monitor::recover(replica_options);
  EXPECT_EQ(replica->stream_count(), app_->monitor().stream_count());

  std::ostringstream owner_bytes;
  app_->monitor().save(owner_bytes);
  std::ostringstream replica_bytes;
  replica->save(replica_bytes);
  ASSERT_FALSE(owner_bytes.str().empty());
  EXPECT_EQ(owner_bytes.str(), replica_bytes.str())
      << "replica state diverged from the owner's acknowledged state";
}

TEST_F(ClusterCatchup, CatchupIsRetrySafeIntoTheSameDirectory) {
  ingest_wave(2, 20, 0.0);
  app_->monitor().checkpoint();
  (void)cluster::fetch_catchup(peer_, replica_dir_.path());
  ingest_wave(3, 10, 50.0);  // owner moved on; retry refreshes everything
  (void)cluster::fetch_catchup(peer_, replica_dir_.path());

  live::MonitorOptions replica_options = app_->options().monitor;
  replica_options.wal.dir = replica_dir_.path();
  const std::unique_ptr<live::Monitor> replica =
      live::Monitor::recover(replica_options);

  std::ostringstream owner_bytes;
  app_->monitor().save(owner_bytes);
  std::ostringstream replica_bytes;
  replica->save(replica_bytes);
  EXPECT_EQ(owner_bytes.str(), replica_bytes.str());
}

TEST_F(ClusterCatchup, ManifestListsSegmentsAndSnapshot) {
  ingest_wave(2, 15, 0.0);
  app_->monitor().checkpoint();
  ingest_wave(2, 5, 40.0);

  serve::http::Client client("127.0.0.1", server_->port());
  const serve::http::Response response = client.get("/v1/cluster/segments");
  ASSERT_EQ(response.status, 200);
  const Json manifest = Json::parse(response.body);

  const Json* snapshot = manifest.find("snapshot");
  ASSERT_NE(snapshot, nullptr);
  ASSERT_TRUE(snapshot->is_object());
  EXPECT_EQ(snapshot->find("file")->as_string(), "snapshot.prm");
  EXPECT_GT(snapshot->find("size")->as_number(), 0.0);

  const Json* segments = manifest.find("segments");
  ASSERT_NE(segments, nullptr);
  ASSERT_TRUE(segments->is_array());
  ASSERT_GE(segments->as_array().size(), 1u);
  for (const Json& entry : segments->as_array()) {
    EXPECT_TRUE(
        cluster::transferable_file_name(entry.find("file")->as_string()));
  }
}

TEST_F(ClusterCatchup, FileRouteRejectsNonWalNames) {
  ingest_wave(1, 10, 0.0);
  serve::http::Client client("127.0.0.1", server_->port());
  // Flat-name gate: traversal, encoded traversal, and unrelated names all
  // answer 404 without touching the filesystem outside the WAL dir.
  EXPECT_EQ(client.get("/v1/cluster/segments/..%2fsnapshot.prm").status, 404);
  EXPECT_EQ(client.get("/v1/cluster/segments/passwd").status, 404);
  EXPECT_EQ(client.get("/v1/cluster/segments/wal-9999-99999999.log").status, 404);
  // And the real files stream back verbatim.
  app_->monitor().checkpoint();
  const serve::http::Response snapshot =
      client.get("/v1/cluster/segments/snapshot.prm");
  ASSERT_EQ(snapshot.status, 200);
  EXPECT_EQ(snapshot.headers.at("content-type"), "application/octet-stream");
  EXPECT_GT(snapshot.body.size(), 0u);
}

TEST(ClusterCatchupErrors, DeadPeerThrows) {
  TempDir dest;
  EXPECT_THROW(
      cluster::fetch_catchup("127.0.0.1:1", dest.path(), /*connect_timeout_ms=*/500),
      std::runtime_error);
}

TEST(ClusterCatchupErrors, WalLessOwnerAnswers404) {
  serve::App app;  // no WAL dir
  serve::ServerOptions options;
  options.port = 0;
  options.threads = 1;
  serve::Server server(options, app.async_handler());
  server.start();
  serve::http::Client client("127.0.0.1", server.port());
  EXPECT_EQ(client.get("/v1/cluster/segments").status, 404);
  EXPECT_EQ(client.get("/v1/cluster/segments/snapshot.prm").status, 404);
  server.stop();
}

}  // namespace
