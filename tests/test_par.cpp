// prm::par -- task pool and deterministic fork-join helpers.
#include "par/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include "par/task_pool.hpp"

namespace prm::par {
namespace {

TEST(TaskPool, RunsEverySubmittedTask) {
  TaskPool pool(4);
  std::atomic<int> count{0};
  std::atomic<int> done{0};
  constexpr int kTasks = 200;
  for (int i = 0; i < kTasks; ++i) {
    pool.submit([&count, &done] {
      count.fetch_add(1);
      done.fetch_add(1);
    });
  }
  while (done.load() < kTasks) {
  }
  EXPECT_EQ(count.load(), kTasks);
}

TEST(TaskPool, SingletonHasAtLeastOneWorker) {
  EXPECT_GE(TaskPool::instance().size(), 1u);
  EXPECT_GE(TaskPool::default_threads(), 1u);
}

TEST(TaskPool, CallerThreadIsNotAWorker) { EXPECT_FALSE(TaskPool::in_worker()); }

TEST(ResolveThreads, LiteralWhenPositiveAutoOtherwise) {
  EXPECT_EQ(resolve_threads(1), 1u);
  EXPECT_EQ(resolve_threads(7), 7u);
  EXPECT_EQ(resolve_threads(0), TaskPool::default_threads());
  EXPECT_EQ(resolve_threads(-3), TaskPool::default_threads());
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  for (const int threads : {1, 2, 8}) {
    constexpr std::size_t kCount = 500;
    std::vector<std::atomic<int>> hits(kCount);
    for (auto& h : hits) h.store(0);
    parallel_for(
        kCount, [&hits](std::size_t i) { hits[i].fetch_add(1); }, threads);
    for (std::size_t i = 0; i < kCount; ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i << " threads " << threads;
    }
  }
}

TEST(ParallelFor, ZeroCountIsANoOp) {
  bool ran = false;
  parallel_for(0, [&ran](std::size_t) { ran = true; }, 8);
  EXPECT_FALSE(ran);
}

TEST(ParallelFor, PropagatesTheBodyException) {
  EXPECT_THROW(
      parallel_for(
          100,
          [](std::size_t i) {
            if (i == 37) throw std::runtime_error("boom at 37");
          },
          8),
      std::runtime_error);
}

TEST(ParallelFor, SerialFallbackRunsInline) {
  // threads = 1 must execute on the calling thread, in index order.
  std::vector<std::size_t> order;
  parallel_for(
      5, [&order](std::size_t i) { order.push_back(i); }, 1);
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(ParallelFor, NestedRegionsSerializeInsteadOfDeadlocking) {
  // A body that itself calls parallel_for must complete: inner regions run
  // inline on pool workers rather than waiting for pool capacity.
  std::atomic<int> inner_total{0};
  parallel_for(
      8,
      [&inner_total](std::size_t) {
        parallel_for(
            8, [&inner_total](std::size_t) { inner_total.fetch_add(1); }, 8);
      },
      8);
  EXPECT_EQ(inner_total.load(), 64);
}

TEST(ParallelMap, ResultsAreIndexAddressed) {
  for (const int threads : {1, 2, 8}) {
    const std::vector<int> out = parallel_map<int>(
        64, [](std::size_t i) { return static_cast<int>(i) * 3; }, threads);
    ASSERT_EQ(out.size(), 64u);
    for (std::size_t i = 0; i < out.size(); ++i) {
      EXPECT_EQ(out[i], static_cast<int>(i) * 3);
    }
  }
}

TEST(ParallelMap, MoveOnlyFriendlyValueTypes) {
  const auto out = parallel_map<std::vector<double>>(
      16, [](std::size_t i) { return std::vector<double>(i, 1.0); }, 4);
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i].size(), i);
}

TEST(ParallelFor, LargeFanOutCompletes) {
  // More indices than any plausible pool width: exercises the shared-counter
  // claim path and the caller-participates drain.
  std::atomic<long> sum{0};
  constexpr std::size_t kCount = 10000;
  parallel_for(
      kCount, [&sum](std::size_t i) { sum.fetch_add(static_cast<long>(i)); }, 8);
  EXPECT_EQ(sum.load(), static_cast<long>(kCount) * (kCount - 1) / 2);
}

}  // namespace
}  // namespace prm::par
