// Cluster routing end-to-end over real sockets: two ring nodes plus a thin
// router, all in-process.
//
//  * A node answers stream routes it owns and 307-redirects the rest with a
//    Location on the owning node; its Monitor refuses to create non-owned
//    streams (the filter behind the redirect).
//  * The router proxies every stream route to the owner through the
//    UpstreamPool's pooled keep-alive connections and merges /v1/streams
//    across nodes.
//  * Killing a node: routed requests for its streams fail fast with 502
//    (DOWN cooldown, no per-request timeout pileup) while every other
//    stream keeps answering 200 -- the CI smoke leg's contract.
//  * node, router, and a bare ring all agree on ownership over HTTP (the
//    determinism wire contract).
//  * http::Client's connect deadline fires instead of hanging (satellite of
//    the same change: the catch-up client must not block on a dead peer).
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "cluster/cluster.hpp"
#include "serve/handlers.hpp"
#include "serve/http.hpp"
#include "serve/json.hpp"
#include "serve/server.hpp"

namespace {

using namespace prm;
using serve::Json;

struct Node {
  std::unique_ptr<serve::App> app;
  std::unique_ptr<serve::Server> server;
  std::string address;

  void start(std::size_t threads = 2) {
    app = std::make_unique<serve::App>();
    serve::ServerOptions options;
    options.port = 0;
    options.threads = threads;
    server = std::make_unique<serve::Server>(options, app->async_handler());
    server->start();
    address = "127.0.0.1:" + std::to_string(server->port());
  }
};

class ClusterRouter : public ::testing::Test {
 protected:
  void SetUp() override {
    node1_.start();
    node2_.start();
    router_.start();
    peers_ = {node1_.address, node2_.address};

    cluster::ClusterOptions node_options;
    node_options.peers = peers_;
    node_options.self = node1_.address;
    node1_.app->enable_cluster(node_options);
    node_options.self = node2_.address;
    node2_.app->enable_cluster(node_options);

    cluster::ClusterOptions router_options;
    router_options.peers = peers_;
    router_options.router = true;
    router_options.upstream.connect_timeout_ms = 1000;
    router_options.upstream.request_timeout_ms = 5000;
    router_options.upstream.retry_down_ms = 200;
    router_.app->enable_cluster(router_options);
  }

  void TearDown() override {
    router_.server->stop();
    if (node2_up_) node2_.server->stop();
    node1_.server->stop();
  }

  /// A stream name the ring maps to `owner` (deterministic, so every test
  /// run picks the same names).
  std::string stream_owned_by(const std::string& owner, const char* tag) {
    const cluster::Cluster& cluster = *router_.app->cluster();
    for (int i = 0; i < 1000; ++i) {
      std::string name = std::string(tag) + "-" + std::to_string(i);
      if (cluster.owner(name) == owner) return name;
    }
    throw std::logic_error("ring starved one node of 1000 names");
  }

  serve::http::Client client_for(const Node& node) {
    return {"127.0.0.1", node.server->port()};
  }

  Node node1_;
  Node node2_;
  Node router_;
  std::vector<std::string> peers_;
  bool node2_up_ = true;
};

TEST_F(ClusterRouter, NodeRedirectsNonOwnedStreamsToTheOwner) {
  const std::string foreign = stream_owned_by(node2_.address, "redir");
  auto c = client_for(node1_);
  const serve::http::Response response =
      c.post_json("/v1/streams/" + foreign + "/ingest", "{\"t\":0,\"value\":1.0}");
  EXPECT_EQ(response.status, 307);
  ASSERT_TRUE(response.headers.count("location"));
  EXPECT_EQ(response.headers.at("location"),
            "http://" + node2_.address + "/v1/streams/" + foreign + "/ingest");
  const Json body = Json::parse(response.body);
  EXPECT_EQ(body.find("owner")->as_string(), node2_.address);

  // The Monitor itself is the backstop: even code that bypasses routing
  // cannot create a non-owned stream on this node.
  EXPECT_THROW(node1_.app->monitor().ingest(foreign, 0.0, 1.0), std::domain_error);

  const Json metrics = Json::parse(c.get("/metrics").body);
  EXPECT_GE(metrics.find("cluster")->find("redirects")->as_number(), 1.0);
  EXPECT_EQ(metrics.find("cluster")->find("mode")->as_string(), "node");
}

TEST_F(ClusterRouter, OwnedStreamsAreServedLocallyWithoutRedirect) {
  const std::string local = stream_owned_by(node1_.address, "local");
  auto c = client_for(node1_);
  const serve::http::Response response =
      c.post_json("/v1/streams/" + local + "/ingest", "{\"t\":0,\"value\":1.0}");
  EXPECT_EQ(response.status, 200);
  EXPECT_EQ(c.get("/v1/streams/" + local).status, 200);
}

TEST_F(ClusterRouter, RouterProxiesEveryStreamRouteToItsOwner) {
  auto c = client_for(router_);
  std::vector<std::string> names;
  for (int i = 0; i < 8; ++i) names.push_back("proxy-" + std::to_string(i));
  for (const std::string& name : names) {
    const serve::http::Response response = c.post_json(
        "/v1/streams/" + name + "/ingest",
        "{\"samples\":[[0,1.0],[1,0.9],[2,0.8]]}");
    ASSERT_EQ(response.status, 200) << name << ": " << response.body;
    EXPECT_EQ(Json::parse(response.body).find("stream")->as_string(), name);
  }
  // Every stream reads back through the router, and lives ONLY on its owner.
  const cluster::Cluster& ring_view = *router_.app->cluster();
  auto c1 = client_for(node1_);
  auto c2 = client_for(node2_);
  for (const std::string& name : names) {
    EXPECT_EQ(c.get("/v1/streams/" + name).status, 200);
    const bool on_node1 = ring_view.owner(name) == node1_.address;
    EXPECT_EQ(c1.get("/v1/streams/" + name).status, on_node1 ? 200 : 307);
    EXPECT_EQ(c2.get("/v1/streams/" + name).status, on_node1 ? 307 : 200);
  }
  // DELETE proxies too.
  serve::http::Request remove;
  remove.method = "DELETE";
  remove.target = "/v1/streams/" + names[0];
  remove.version = "HTTP/1.1";
  EXPECT_EQ(c.request(remove).status, 200);
  EXPECT_EQ(c.get("/v1/streams/" + names[0]).status, 404);

  const Json metrics = Json::parse(c.get("/metrics").body);
  const Json* cluster_metrics = metrics.find("cluster");
  EXPECT_EQ(cluster_metrics->find("mode")->as_string(), "router");
  EXPECT_GE(cluster_metrics->find("proxied")->as_number(), 8.0);
  EXPECT_GE(
      cluster_metrics->find("upstreams")->find("forwarded")->as_number(), 8.0);
}

TEST_F(ClusterRouter, RouterMergesStreamListsAcrossNodes) {
  auto c = client_for(router_);
  const std::string s1 = stream_owned_by(node1_.address, "merge");
  const std::string s2 = stream_owned_by(node2_.address, "merge");
  ASSERT_EQ(c.post_json("/v1/streams/" + s1 + "/ingest", "{\"t\":0,\"value\":1}")
                .status, 200);
  ASSERT_EQ(c.post_json("/v1/streams/" + s2 + "/ingest", "{\"t\":0,\"value\":1}")
                .status, 200);
  const Json list = Json::parse(c.get("/v1/streams").body);
  std::vector<std::string> streams;
  for (const Json& entry : list.find("streams")->as_array()) {
    streams.push_back(entry.as_string());
  }
  EXPECT_NE(std::find(streams.begin(), streams.end(), s1), streams.end());
  EXPECT_NE(std::find(streams.begin(), streams.end(), s2), streams.end());
  EXPECT_TRUE(list.find("unavailable")->as_array().empty());
}

TEST_F(ClusterRouter, DeadNodeFailsFastWhileSurvivorsKeepServing) {
  auto c = client_for(router_);
  const std::string on_live = stream_owned_by(node1_.address, "ha");
  const std::string on_dead = stream_owned_by(node2_.address, "ha");
  ASSERT_EQ(c.post_json("/v1/streams/" + on_live + "/ingest",
                        "{\"t\":0,\"value\":1}").status, 200);
  ASSERT_EQ(c.post_json("/v1/streams/" + on_dead + "/ingest",
                        "{\"t\":0,\"value\":1}").status, 200);

  node2_.server->stop();
  node2_up_ = false;

  // First request eats the connect failure, marks the peer DOWN...
  EXPECT_EQ(c.get("/v1/streams/" + on_dead).status, 502);
  // ...and the cooldown makes the following ones fail fast, not pile up.
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(c.get("/v1/streams/" + on_dead).status, 502);
    EXPECT_EQ(c.get("/v1/streams/" + on_live).status, 200);
  }
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed).count(),
            2000);

  const Json list = Json::parse(c.get("/v1/streams").body);
  const auto& unavailable = list.find("unavailable")->as_array();
  ASSERT_EQ(unavailable.size(), 1u);
  EXPECT_EQ(unavailable[0].as_string(), node2_.address);

  const Json metrics = Json::parse(c.get("/metrics").body);
  const Json* upstreams = metrics.find("cluster")->find("upstreams");
  EXPECT_GE(metrics.find("cluster")->find("proxy_errors")->as_number(), 6.0);
  const auto& down = upstreams->find("down")->as_array();
  ASSERT_EQ(down.size(), 1u);
  EXPECT_EQ(down[0].as_string(), node2_.address);
}

TEST_F(ClusterRouter, EveryMemberAgreesOnOwnershipOverHttp) {
  auto c1 = client_for(node1_);
  auto c2 = client_for(node2_);
  auto cr = client_for(router_);
  for (int i = 0; i < 20; ++i) {
    const std::string target = "/v1/cluster/owner/agree-" + std::to_string(i);
    const std::string o1 =
        Json::parse(c1.get(target).body).find("owner")->as_string();
    const std::string o2 =
        Json::parse(c2.get(target).body).find("owner")->as_string();
    const std::string oroute =
        Json::parse(cr.get(target).body).find("owner")->as_string();
    EXPECT_EQ(o1, o2);
    EXPECT_EQ(o1, oroute);
  }
  const Json ring = Json::parse(c1.get("/v1/cluster/ring").body);
  EXPECT_EQ(ring.find("mode")->as_string(), "node");
  EXPECT_EQ(ring.find("self")->as_string(), node1_.address);
  EXPECT_EQ(ring.find("nodes")->as_array().size(), 2u);
}

TEST_F(ClusterRouter, ClusterRoutesAnswer404WhenClusteringIsOff) {
  Node plain;
  plain.start(1);
  auto c = client_for(plain);
  EXPECT_EQ(c.get("/v1/cluster/ring").status, 404);
  EXPECT_EQ(c.get("/v1/cluster/owner/x").status, 404);
  plain.server->stop();
}

TEST(HttpClientDeadline, ConnectDeadlineFiresOnASaturatedBacklog) {
  // A loopback listener that never accepts, with a zero backlog, saturated
  // by parked connects: the kernel drops further SYNs, so a new connect can
  // only end by deadline. This is the hang the connect timeout exists for
  // (a dead-but-routable cluster peer).
  const int listener = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(listener, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  ASSERT_EQ(::bind(listener, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  ASSERT_EQ(::listen(listener, 0), 0);
  socklen_t len = sizeof(addr);
  ASSERT_EQ(::getsockname(listener, reinterpret_cast<sockaddr*>(&addr), &len), 0);
  const std::uint16_t port = ntohs(addr.sin_port);

  std::vector<int> parked;
  for (int i = 0; i < 8; ++i) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    const int flags = ::fcntl(fd, F_GETFL, 0);
    ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
    ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
    parked.push_back(fd);
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  const auto start = std::chrono::steady_clock::now();
  bool threw = false;
  try {
    serve::http::Client client("127.0.0.1", port, /*connect_timeout_ms=*/300);
  } catch (const std::runtime_error&) {
    threw = true;
  }
  const auto elapsed_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                              std::chrono::steady_clock::now() - start)
                              .count();
  for (const int fd : parked) ::close(fd);
  ::close(listener);
  if (!threw) {
    GTEST_SKIP() << "kernel completed the handshake despite a full backlog";
  }
  EXPECT_LT(elapsed_ms, 5000) << "connect deadline did not bound the wait";
}

}  // namespace
