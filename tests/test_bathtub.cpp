#include "core/bathtub.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "data/generator.hpp"
#include "numerics/integrate.hpp"

namespace prm::core {
namespace {

const num::Vector kQuadParams{1.0, -0.04, 0.0008};   // trough at t = 25
const num::Vector kCrParams{1.0, 0.25, 0.0006};      // Hjorth-type bathtub

TEST(Quadratic, EvaluateMatchesPolynomial) {
  const QuadraticBathtubModel m;
  EXPECT_DOUBLE_EQ(m.evaluate(0.0, kQuadParams), 1.0);
  EXPECT_DOUBLE_EQ(m.evaluate(10.0, kQuadParams), 1.0 - 0.4 + 0.08);
  EXPECT_THROW(m.evaluate(1.0, {1.0, 2.0}), std::invalid_argument);
}

TEST(Quadratic, GradientIsDesignRow) {
  const QuadraticBathtubModel m;
  const num::Vector g = m.gradient(3.0, kQuadParams);
  EXPECT_DOUBLE_EQ(g[0], 1.0);
  EXPECT_DOUBLE_EQ(g[1], 3.0);
  EXPECT_DOUBLE_EQ(g[2], 9.0);
}

TEST(Quadratic, AreaClosedFormMatchesNumericIntegration) {
  const QuadraticBathtubModel m;
  const auto area = m.area_closed_form(kQuadParams, 2.0, 30.0);
  ASSERT_TRUE(area.has_value());
  const double numeric = num::adaptive_simpson(
      [&m](double t) { return m.evaluate(t, kQuadParams); }, 2.0, 30.0, 1e-12).value;
  EXPECT_NEAR(*area, numeric, 1e-9);
}

TEST(Quadratic, RecoveryTimeSolvesLevelCrossing) {
  const QuadraticBathtubModel m;
  // Trough at t=25 (value 0.5); ask when P returns to 0.9 after the trough.
  const auto t = m.recovery_time_closed_form(kQuadParams, 0.9, 25.0);
  ASSERT_TRUE(t.has_value());
  EXPECT_GT(*t, 25.0);
  EXPECT_NEAR(m.evaluate(*t, kQuadParams), 0.9, 1e-10);
}

TEST(Quadratic, RecoveryTimeNoneWhenLevelUnreachableBelow) {
  const QuadraticBathtubModel m;
  // Minimum value is 0.5: level 0.4 is never attained.
  EXPECT_FALSE(m.recovery_time_closed_form(kQuadParams, 0.4, 0.0).has_value());
}

TEST(Quadratic, TroughAtVertex) {
  const QuadraticBathtubModel m;
  const auto t = m.trough_closed_form(kQuadParams);
  ASSERT_TRUE(t.has_value());
  EXPECT_NEAR(*t, 25.0, 1e-12);
  // Vertex before zero clamps to zero.
  EXPECT_DOUBLE_EQ(*m.trough_closed_form({1.0, 0.1, 0.01}), 0.0);
}

TEST(Quadratic, IsBathtubCondition) {
  EXPECT_TRUE(QuadraticBathtubModel::is_bathtub(kQuadParams));
  // beta too negative: hazard dips below zero.
  EXPECT_FALSE(QuadraticBathtubModel::is_bathtub({1.0, -0.1, 0.0008}));
  // beta positive: monotone increasing, not a bathtub.
  EXPECT_FALSE(QuadraticBathtubModel::is_bathtub({1.0, 0.01, 0.0008}));
  EXPECT_FALSE(QuadraticBathtubModel::is_bathtub({1.0, -0.04}));
}

TEST(Quadratic, LinearLsFitRecoversExactPolynomialData) {
  std::vector<double> v(20);
  for (int i = 0; i < 20; ++i) {
    v[i] = 1.0 - 0.03 * i + 0.001 * i * i;
  }
  const data::PerformanceSeries s("poly", v);
  const num::Vector p = QuadraticBathtubModel::linear_ls_fit(s);
  EXPECT_NEAR(p[0], 1.0, 1e-10);
  EXPECT_NEAR(p[1], -0.03, 1e-10);
  EXPECT_NEAR(p[2], 0.001, 1e-12);
}

TEST(Quadratic, InitialGuessesSatisfyBounds) {
  const QuadraticBathtubModel m;
  const auto s = data::generate_shape(data::RecessionShape::kV, 48, 5);
  for (const num::Vector& g : m.initial_guesses(s)) {
    ASSERT_EQ(g.size(), 3u);
    EXPECT_GT(g[0], 0.0);
    EXPECT_LT(g[1], 0.0);
    EXPECT_GT(g[2], 0.0);
  }
}

TEST(Quadratic, MetadataIsConsistent) {
  const QuadraticBathtubModel m;
  EXPECT_EQ(m.name(), "quadratic");
  EXPECT_EQ(m.num_parameters(), 3u);
  EXPECT_EQ(m.parameter_names().size(), 3u);
  EXPECT_EQ(m.parameter_bounds().size(), 3u);
  const auto clone = m.clone();
  EXPECT_EQ(clone->name(), "quadratic");
}

TEST(CompetingRisks, EvaluateMatchesFormula) {
  const CompetingRisksModel m;
  const double t = 4.0;
  const double expected = 1.0 / (1.0 + 0.25 * t) + 2.0 * 0.0006 * t;
  EXPECT_DOUBLE_EQ(m.evaluate(t, kCrParams), expected);
  EXPECT_DOUBLE_EQ(m.evaluate(0.0, kCrParams), 1.0);
}

TEST(CompetingRisks, GradientMatchesFiniteDifference) {
  const CompetingRisksModel m;
  const num::Vector g = m.gradient(6.0, kCrParams);
  for (std::size_t i = 0; i < 3; ++i) {
    num::Vector p = kCrParams;
    const double h = 1e-7 * std::max(1.0, std::fabs(p[i]));
    p[i] += h;
    const double up = m.evaluate(6.0, p);
    p[i] -= 2.0 * h;
    const double dn = m.evaluate(6.0, p);
    EXPECT_NEAR(g[i], (up - dn) / (2.0 * h), 1e-5) << "param " << i;
  }
}

TEST(CompetingRisks, AreaClosedFormMatchesNumericIntegration) {
  const CompetingRisksModel m;
  const auto area = m.area_closed_form(kCrParams, 0.0, 40.0);
  ASSERT_TRUE(area.has_value());
  const double numeric = num::adaptive_simpson(
      [&m](double t) { return m.evaluate(t, kCrParams); }, 0.0, 40.0, 1e-12).value;
  EXPECT_NEAR(*area, numeric, 1e-9);
}

TEST(CompetingRisks, TroughSatisfiesFirstOrderCondition) {
  const CompetingRisksModel m;
  const auto td = m.trough_closed_form(kCrParams);
  ASSERT_TRUE(td.has_value());
  EXPECT_GT(*td, 0.0);
  // P'(td) ~ 0 by central difference.
  const double h = 1e-5;
  const double deriv = (m.evaluate(*td + h, kCrParams) - m.evaluate(*td - h, kCrParams)) / (2 * h);
  EXPECT_NEAR(deriv, 0.0, 1e-8);
}

TEST(CompetingRisks, TroughZeroWhenMonotoneIncreasing) {
  const CompetingRisksModel m;
  // Tiny alpha*beta vs gamma: increasing from the start.
  EXPECT_DOUBLE_EQ(*m.trough_closed_form({0.1, 0.01, 1.0}), 0.0);
}

TEST(CompetingRisks, RecoveryTimeSolvesLevelCrossing) {
  const CompetingRisksModel m;
  const double td = *m.trough_closed_form(kCrParams);
  const auto tr = m.recovery_time_closed_form(kCrParams, 0.8, td);
  ASSERT_TRUE(tr.has_value());
  EXPECT_GT(*tr, td);
  EXPECT_NEAR(m.evaluate(*tr, kCrParams), 0.8, 1e-9);
}

TEST(CompetingRisks, InitialGuessesSatisfyBounds) {
  const CompetingRisksModel m;
  const auto s = data::generate_shape(data::RecessionShape::kU, 48, 5);
  for (const num::Vector& g : m.initial_guesses(s)) {
    ASSERT_EQ(g.size(), 3u);
    for (double x : g) EXPECT_GT(x, 0.0);
  }
}

TEST(CompetingRisks, SearchBoxInsideBounds) {
  const CompetingRisksModel m;
  const auto s = data::generate_shape(data::RecessionShape::kU, 48, 5);
  const auto [lo, hi] = m.search_box(s);
  ASSERT_EQ(lo.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_GT(lo[i], 0.0);
    EXPECT_LT(lo[i], hi[i]);
  }
}

}  // namespace
}  // namespace prm::core
