#include "data/csv.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <sstream>

namespace prm::data {
namespace {

TEST(Csv, WriteThenReadRoundTrips) {
  const PerformanceSeries s("payroll", {0.0, 1.0, 2.0}, {1.0, 0.98, 0.99});
  std::stringstream ss;
  write_csv(ss, s);
  const PerformanceSeries back = read_csv(ss, "payroll");
  ASSERT_EQ(back.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(back.time(i), s.time(i));
    EXPECT_DOUBLE_EQ(back.value(i), s.value(i));
  }
}

TEST(Csv, HeaderIsWrittenAndSkipped) {
  const PerformanceSeries s("idx", {0.0, 1.0}, {1.0, 2.0});
  std::stringstream ss;
  write_csv(ss, s);
  std::string first_line;
  std::getline(ss, first_line);
  EXPECT_EQ(first_line, "t,idx");
}

TEST(Csv, NoHeaderMode) {
  CsvOptions opts;
  opts.header = false;
  std::stringstream ss("0,1.0\n1,0.5\n");
  const PerformanceSeries s = read_csv(ss, "x", opts);
  ASSERT_EQ(s.size(), 2u);
  EXPECT_DOUBLE_EQ(s.value(1), 0.5);
}

TEST(Csv, SkipsBlankLines) {
  std::stringstream ss("t,v\n0,1.0\n\n1,2.0\n");
  const PerformanceSeries s = read_csv(ss, "x");
  EXPECT_EQ(s.size(), 2u);
}

TEST(Csv, ToleratesSpacesAndCrlf) {
  std::stringstream ss("t,v\n 0 , 1.0 \r\n1,2.0\r\n");
  const PerformanceSeries s = read_csv(ss, "x");
  ASSERT_EQ(s.size(), 2u);
  EXPECT_DOUBLE_EQ(s.value(0), 1.0);
}

TEST(Csv, MalformedRowReportsLineNumber) {
  std::stringstream one_col("t,v\n0;1.0\n");
  try {
    read_csv(one_col, "x");
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(Csv, NonNumericFieldThrows) {
  std::stringstream bad("t,v\n0,hello\n");
  EXPECT_THROW(read_csv(bad, "x"), std::runtime_error);
}

TEST(Csv, NonMonotoneTimesRejectedWithLineNumber) {
  std::stringstream bad("t,v\n1,1.0\n0,2.0\n");
  try {
    read_csv(bad, "x");
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos) << e.what();
    EXPECT_NE(std::string(e.what()).find("strictly increasing"), std::string::npos);
  }
}

TEST(Csv, RepeatedTimeRejected) {
  std::stringstream bad("t,v\n0,1.0\n1,1.0\n1,1.1\n");
  try {
    read_csv(bad, "x");
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 4"), std::string::npos) << e.what();
  }
}

TEST(Csv, CommentLinesAreSkipped) {
  std::stringstream ss(
      "# exported by the monitoring job\n"
      "t,v\n"
      "0,1.0\n"
      "  # mid-file annotation, indented\n"
      "1,0.9\n"
      "#2,0.5\n"
      "2,0.8\n");
  const PerformanceSeries s = read_csv(ss, "x");
  ASSERT_EQ(s.size(), 3u);
  EXPECT_DOUBLE_EQ(s.value(1), 0.9);
  EXPECT_DOUBLE_EQ(s.time(2), 2.0);
}

TEST(Csv, CommentBeforeHeaderDoesNotEatTheHeader) {
  // The '#' line is not the header: the real header after it must still be
  // skipped, and the data must parse.
  std::stringstream ss("# comment first\nt,v\n5,1.5\n");
  const PerformanceSeries s = read_csv(ss, "x");
  ASSERT_EQ(s.size(), 1u);
  EXPECT_DOUBLE_EQ(s.time(0), 5.0);
}

TEST(Csv, AlternativeDelimiter) {
  CsvOptions opts;
  opts.delimiter = ';';
  std::stringstream ss("t;v\n0;1.5\n1;2.5\n");
  const PerformanceSeries s = read_csv(ss, "x", opts);
  ASSERT_EQ(s.size(), 2u);
  EXPECT_DOUBLE_EQ(s.value(0), 1.5);
}

TEST(Csv, FileRoundTrip) {
  const std::string path = std::filesystem::temp_directory_path() / "prm_csv_test.csv";
  const PerformanceSeries s("f", {0.0, 1.0, 2.0}, {1.0, 0.9, 1.1});
  write_csv_file(path, s);
  const PerformanceSeries back = read_csv_file(path, "f");
  EXPECT_EQ(back.size(), 3u);
  EXPECT_DOUBLE_EQ(back.value(2), 1.1);
  std::remove(path.c_str());
}

TEST(Csv, MissingFileThrows) {
  EXPECT_THROW(read_csv_file("/nonexistent/dir/data.csv", "x"), std::runtime_error);
  const PerformanceSeries s("f", {0.0}, {1.0});
  EXPECT_THROW(write_csv_file("/nonexistent/dir/data.csv", s), std::runtime_error);
}

TEST(Csv, HighPrecisionPreserved) {
  const PerformanceSeries s("p", {0.0, 1.0}, {1.0 / 3.0, 0.123456789});
  std::stringstream ss;
  write_csv(ss, s);
  const PerformanceSeries back = read_csv(ss, "p");
  EXPECT_NEAR(back.value(0), 1.0 / 3.0, 1e-9);
  EXPECT_NEAR(back.value(1), 0.123456789, 1e-9);
}

}  // namespace
}  // namespace prm::data
