#include "data/changepoint.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "data/generator.hpp"

namespace prm::data {
namespace {

// Nominal regime (mean 1.0, small noise) followed by a recession-like drop
// starting at `onset`.
PerformanceSeries series_with_onset(std::size_t nominal_len, std::size_t onset_at,
                                    std::uint64_t seed = 5) {
  std::mt19937_64 rng(seed);
  std::normal_distribution<double> noise(0.0, 0.0008);
  std::vector<double> v;
  for (std::size_t i = 0; i < nominal_len; ++i) {
    v.push_back(1.0 + noise(rng) + 0.00005 * static_cast<double>(i));  // mild growth
  }
  (void)onset_at;
  // Decline phase: 2% loss over 12 samples, then partial recovery.
  const double peak = v.back();
  for (int i = 1; i <= 12; ++i) v.push_back(peak - 0.02 * peak * i / 12.0 + noise(rng));
  for (int i = 1; i <= 12; ++i) {
    v.push_back(peak * (0.98 + 0.015 * i / 12.0) + noise(rng));
  }
  return PerformanceSeries("synthetic-onset", std::move(v));
}

TEST(Cusum, NoAlarmOnPureNoise) {
  std::mt19937_64 rng(9);
  std::normal_distribution<double> noise(0.0, 0.001);
  std::vector<double> v(60);
  for (double& x : v) x = 1.0 + noise(rng);
  const CusumResult r = detect_downward_shift(PerformanceSeries("flat", std::move(v)));
  EXPECT_FALSE(r.alarm_index.has_value());
}

TEST(Cusum, AlarmsOnSustainedDrop) {
  const PerformanceSeries s = series_with_onset(24, 24);
  const CusumResult r = detect_downward_shift(s);
  ASSERT_TRUE(r.alarm_index.has_value());
  // Alarm should fire during the decline (after 24, well before recovery end).
  EXPECT_GT(*r.alarm_index, 24u);
  EXPECT_LT(*r.alarm_index, 36u);
}

TEST(Cusum, StatisticIsNonNegativeAndResets) {
  const PerformanceSeries s = series_with_onset(24, 24);
  const CusumResult r = detect_downward_shift(s);
  for (double x : r.statistic) EXPECT_GE(x, 0.0);
  // During the nominal prefix the statistic stays small.
  for (std::size_t i = 0; i < 20; ++i) {
    EXPECT_LT(r.statistic[i], r.baseline_sigma * 5.0);
  }
}

TEST(Cusum, HigherThresholdDelaysAlarm) {
  const PerformanceSeries s = series_with_onset(24, 24);
  CusumOptions sensitive;
  sensitive.threshold_sigmas = 3.0;
  CusumOptions strict;
  strict.threshold_sigmas = 30.0;
  const auto early = detect_downward_shift(s, sensitive);
  const auto late = detect_downward_shift(s, strict);
  ASSERT_TRUE(early.alarm_index.has_value());
  ASSERT_TRUE(late.alarm_index.has_value());
  EXPECT_LE(*early.alarm_index, *late.alarm_index);
}

TEST(Cusum, FlatBaselineUsesSigmaFloor) {
  // Exactly constant baseline, then a step down: must not divide by zero.
  std::vector<double> v(20, 1.0);
  for (int i = 0; i < 10; ++i) v.push_back(0.95);
  const CusumResult r = detect_downward_shift(PerformanceSeries("step", std::move(v)));
  EXPECT_GT(r.baseline_sigma, 0.0);
  ASSERT_TRUE(r.alarm_index.has_value());
  EXPECT_GE(*r.alarm_index, 20u);
}

TEST(Cusum, SigmaFloorIsExactAndScalesWithTheMean) {
  // Unit-scale flat baseline: floor = 1e-6 * max(|mean|, 1) = 1e-6.
  std::vector<double> unit(30, 1.0);
  const CusumResult r1 = detect_downward_shift(PerformanceSeries("unit", std::move(unit)));
  EXPECT_DOUBLE_EQ(r1.baseline_sigma, 1e-6);
  EXPECT_FALSE(r1.alarm_index.has_value());  // perfectly flat: no disruption

  // Large-mean flat baseline: the floor scales with |mean|, so a drop that
  // is tiny in absolute sigma units but huge relative to the floor alarms.
  std::vector<double> big(20, 5000.0);
  for (int i = 0; i < 10; ++i) big.push_back(4999.0);
  const CusumResult r2 = detect_downward_shift(PerformanceSeries("big", std::move(big)));
  EXPECT_DOUBLE_EQ(r2.baseline_sigma, 5e-3);
  ASSERT_TRUE(r2.alarm_index.has_value());
  EXPECT_GE(*r2.alarm_index, 20u);

  // Sub-unit mean: max(|mean|, 1) keeps the floor anchored at 1e-6.
  std::vector<double> small(30, 0.01);
  const CusumResult r3 =
      detect_downward_shift(PerformanceSeries("small", std::move(small)));
  EXPECT_DOUBLE_EQ(r3.baseline_sigma, 1e-6);
}

TEST(Cusum, InputValidation) {
  const PerformanceSeries tiny("t", {1.0, 1.0, 1.0});
  EXPECT_THROW(detect_downward_shift(tiny), std::invalid_argument);
  CusumOptions bad;
  bad.baseline = 1;
  const PerformanceSeries s = series_with_onset(24, 24);
  EXPECT_THROW(detect_downward_shift(s, bad), std::invalid_argument);
}

TEST(FindHazardOnset, RecoversThePeakAndAligns) {
  const PerformanceSeries s = series_with_onset(24, 24);
  const auto onset = find_hazard_onset(s);
  ASSERT_TRUE(onset.has_value());
  // The peak should be near the end of the nominal regime (the prefix is
  // noisy and nearly flat, so a few samples of slack is inherent).
  EXPECT_GE(onset->peak_index, 14u);
  EXPECT_LE(onset->peak_index, 26u);
  EXPECT_GE(onset->alarm_index, onset->peak_index);
  // Aligned series: starts at exactly 1.0 at t = 0.
  EXPECT_DOUBLE_EQ(onset->aligned.value(0), 1.0);
  EXPECT_DOUBLE_EQ(onset->aligned.time(0), 0.0);
  EXPECT_EQ(onset->aligned.size(), s.size() - onset->peak_index);
  // And it dips (the recession is in there).
  EXPECT_LT(onset->aligned.trough_value(), 0.99);
}

TEST(FindHazardOnset, NulloptWhenNothingHappens) {
  std::mt19937_64 rng(11);
  std::normal_distribution<double> noise(0.0, 0.001);
  std::vector<double> v(60);
  for (double& x : v) x = 1.0 + noise(rng);
  EXPECT_FALSE(find_hazard_onset(PerformanceSeries("calm", std::move(v))).has_value());
}

TEST(FindHazardOnset, NulloptOnPerfectlyFlatSeries) {
  // Zero-variance baseline AND no disruption: the sigma floor must keep the
  // detector numerically alive, and it must stay silent.
  std::vector<double> v(48, 1.0);
  EXPECT_FALSE(find_hazard_onset(PerformanceSeries("flat", std::move(v))).has_value());
}

TEST(FindHazardOnset, NulloptOnSlowUpwardTrend) {
  // Growth is not a hazard: a one-sided downward detector must not fire.
  std::vector<double> v;
  for (int i = 0; i < 80; ++i) v.push_back(1.0 + 0.002 * static_cast<double>(i));
  EXPECT_FALSE(find_hazard_onset(PerformanceSeries("growth", std::move(v))).has_value());
}

TEST(FindHazardOnset, WorksOnGeneratedRecessionWithNominalPrefix) {
  // Prepend a nominal year to a generated V-recession; the detector should
  // recover the splice point as the peak.
  const PerformanceSeries v_curve = generate_shape(RecessionShape::kV, 36, 21);
  std::mt19937_64 rng(21);
  std::normal_distribution<double> noise(0.0, 0.0006);
  std::vector<double> values;
  for (int i = 0; i < 18; ++i) values.push_back(1.0 + noise(rng));
  for (double x : v_curve.values()) values.push_back(x);
  const PerformanceSeries spliced("spliced", std::move(values));
  const auto onset = find_hazard_onset(spliced);
  ASSERT_TRUE(onset.has_value());
  EXPECT_NEAR(static_cast<double>(onset->peak_index), 18.0, 4.0);
}

}  // namespace
}  // namespace prm::data
