// serve::Server over real loopback sockets: request dispatch, keep-alive
// accounting, handler-exception mapping, malformed-wire handling, and the
// bounded-queue backpressure path (503 at the door under overload).
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "serve/http.hpp"
#include "serve/server.hpp"

namespace {

using namespace prm::serve;

http::Response echo_handler(const http::Request& request) {
  if (request.target == "/boom") throw std::runtime_error("handler exploded");
  http::Response response;
  response.body = request.method + ' ' + request.target + ' ' + request.body;
  return response;
}

/// Open a raw TCP connection to loopback:port, send `wire`, read until the
/// peer closes or `max_reads` recv calls complete. Returns everything read.
std::string raw_exchange(std::uint16_t port, const std::string& wire) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  EXPECT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr), 0);
  EXPECT_EQ(::send(fd, wire.data(), wire.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(wire.size()));
  std::string out;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n <= 0) break;  // error servers close the connection after responding
    out.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return out;
}

TEST(Server, ServesRequestsOnEphemeralPort) {
  Server server(ServerOptions{}, echo_handler);
  server.start();
  ASSERT_NE(server.port(), 0);

  http::Client client("127.0.0.1", server.port());
  const http::Response response = client.post_json("/echo", "payload");
  EXPECT_EQ(response.status, 200);
  EXPECT_EQ(response.body, "POST /echo payload");
  server.stop();
  EXPECT_FALSE(server.running());
}

TEST(Server, KeepAliveReusesOneConnection) {
  Server server(ServerOptions{}, echo_handler);
  server.start();
  {
    http::Client client("127.0.0.1", server.port());
    EXPECT_EQ(client.get("/one").body, "GET /one ");
    EXPECT_EQ(client.get("/two").body, "GET /two ");
    EXPECT_EQ(client.get("/three").body, "GET /three ");
  }
  server.stop();

  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.connections_accepted, 1u);
  EXPECT_EQ(stats.requests_total, 3u);
  EXPECT_EQ(stats.responses_2xx, 3u);
  EXPECT_EQ(stats.connections_rejected, 0u);

  std::uint64_t histogram_total = 0;
  for (const std::uint64_t count : stats.latency_buckets) histogram_total += count;
  EXPECT_EQ(histogram_total, 3u);  // every request lands in exactly one bucket
}

TEST(Server, HandlerExceptionBecomes500) {
  Server server(ServerOptions{}, echo_handler);
  server.start();
  http::Client client("127.0.0.1", server.port());
  const http::Response response = client.get("/boom");
  EXPECT_EQ(response.status, 500);
  EXPECT_NE(response.body.find("error"), std::string::npos);
  server.stop();
  EXPECT_EQ(server.stats().responses_5xx, 1u);
}

TEST(Server, MalformedWireGets400AndCountsAsParseError) {
  Server server(ServerOptions{}, echo_handler);
  server.start();
  const std::string reply = raw_exchange(server.port(), "NONSENSE\r\n\r\n");
  EXPECT_EQ(reply.rfind("HTTP/1.1 400 Bad Request\r\n", 0), 0u) << reply;
  server.stop();
  EXPECT_EQ(server.stats().parse_errors, 1u);
  EXPECT_GE(server.stats().responses_4xx, 1u);
}

TEST(Server, OversizedBodyGets413) {
  ServerOptions options;
  options.max_body_bytes = 64;
  Server server(options, echo_handler);
  server.start();
  const std::string reply = raw_exchange(
      server.port(), "POST /big HTTP/1.1\r\nContent-Length: 100000\r\n\r\n");
  EXPECT_NE(reply.find(" 413 "), std::string::npos) << reply;
  server.stop();
}

TEST(Server, OverloadShedsWith503AtTheDoor) {
  // One worker + a one-slot queue + a handler parked on a latch: the first
  // connection occupies the worker, the second fills the queue, and each
  // additional concurrent connection must be rejected with a canned 503.
  std::mutex gate_mutex;
  std::condition_variable gate_cv;
  bool gate_open = false;

  ServerOptions options;
  options.threads = 1;
  options.max_pending = 1;
  Server server(options, [&](const http::Request& request) {
    if (request.target == "/slow") {
      std::unique_lock<std::mutex> lock(gate_mutex);
      gate_cv.wait(lock, [&] { return gate_open; });
    }
    return http::Response{};
  });
  server.start();

  constexpr int kClients = 8;
  std::atomic<int> ok_count{0};
  std::atomic<int> rejected_count{0};
  std::vector<std::thread> clients;
  for (int i = 0; i < kClients; ++i) {
    clients.emplace_back([&server, &ok_count, &rejected_count] {
      try {
        http::Client client("127.0.0.1", server.port());
        const http::Response response = client.get("/slow");
        if (response.status == 200) ++ok_count;
        if (response.status == 503) ++rejected_count;
      } catch (const std::exception&) {
        // A reset from a rejected connection also counts as shed load.
        ++rejected_count;
      }
    });
  }

  // Give every client time to reach the server while the worker is parked,
  // then open the gate and let the accepted ones drain.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  {
    std::lock_guard<std::mutex> lock(gate_mutex);
    gate_open = true;
  }
  gate_cv.notify_all();
  for (std::thread& thread : clients) thread.join();
  server.stop();

  const ServerStats stats = server.stats();
  EXPECT_EQ(ok_count + rejected_count, kClients);
  EXPECT_GT(rejected_count.load(), 0) << "expected the bounded queue to shed load";
  EXPECT_GT(stats.connections_rejected, 0u);
  EXPECT_GT(ok_count.load(), 0) << "accepted connections must still be served";
  // connections_accepted counts every accept(2), including ones later shed,
  // so accepted - rejected is the number of connections actually served.
  EXPECT_EQ(stats.connections_accepted, static_cast<std::uint64_t>(kClients));
  EXPECT_EQ(stats.connections_accepted - stats.connections_rejected,
            static_cast<std::uint64_t>(ok_count.load()));
}

TEST(Server, FullPerWorkerQueuesKeep503RetryAfterContractAndRecover) {
  // Two workers, max_pending = 2 -> one slot per worker queue. Four clients
  // parked on /slow occupy both workers and fill both queues (the acceptor
  // offers a connection to every queue before shedding, so the fill is
  // deterministic regardless of deal order). The fifth connection must get
  // the canned 503 + Retry-After, and once the gate opens and the backlog
  // drains, acceptance must resume.
  std::mutex gate_mutex;
  std::condition_variable gate_cv;
  bool gate_open = false;

  ServerOptions options;
  options.threads = 2;
  options.max_pending = 2;
  Server server(options, [&](const http::Request& request) {
    if (request.target == "/slow") {
      std::unique_lock<std::mutex> lock(gate_mutex);
      gate_cv.wait(lock, [&] { return gate_open; });
    }
    return http::Response{};
  });
  server.start();

  // Saturate in two waves (a single burst of four could race the workers:
  // the acceptor deals faster than an idle worker wakes, so a connection
  // meant to park in a handler could be shed at the door instead).
  constexpr int kParked = 4;  // 2 in workers + 2 queued
  std::atomic<int> parked_ok{0};
  std::vector<std::thread> parked;
  const auto launch_parked = [&] {
    parked.emplace_back([&server, &parked_ok] {
      http::Client client("127.0.0.1", server.port());
      if (client.get("/slow").status == 200) ++parked_ok;
    });
  };
  const auto spin_until = [&server](auto&& ready) {
    for (int spin = 0; spin < 500; ++spin) {
      if (ready(server.stats())) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    return false;
  };

  // On a failed spin the parked clients must still be released and joined
  // before the test returns, so failures funnel through this helper.
  const auto release_and_join = [&] {
    {
      std::lock_guard<std::mutex> lock(gate_mutex);
      gate_open = true;
    }
    gate_cv.notify_all();
    for (std::thread& thread : parked) thread.join();
  };

  // Wave 1: occupy both workers. requests_total counts up right before the
  // handler runs, so 2 requests + empty queues = both workers parked.
  launch_parked();
  launch_parked();
  if (!spin_until([](const ServerStats& stats) {
        return stats.requests_total >= 2 && stats.queue_depth == 0;
      })) {
    release_and_join();
    FAIL() << "workers never picked up the first wave";
  }

  // Wave 2: with both workers parked, these must stay queued -> both
  // one-slot queues full.
  launch_parked();
  launch_parked();
  if (!spin_until([](const ServerStats& stats) {
        return stats.connections_accepted >= kParked && stats.queue_depth >= 2;
      })) {
    release_and_join();
    FAIL() << "second wave never filled the per-worker queues";
  }
  const ServerStats saturated = server.stats();
  ASSERT_EQ(saturated.queue_depths.size(), 2u);
  EXPECT_EQ(saturated.queue_depth, 2u);
  for (const std::size_t depth : saturated.queue_depths) EXPECT_EQ(depth, 1u);

  // Every queue full: the shed response must carry the Retry-After contract.
  const std::string reply =
      raw_exchange(server.port(), "GET /over HTTP/1.1\r\n\r\n");
  EXPECT_NE(reply.find(" 503 "), std::string::npos) << reply;
  EXPECT_NE(reply.find("Retry-After: 1"), std::string::npos) << reply;
  EXPECT_NE(reply.find("overloaded"), std::string::npos) << reply;

  // Wave 3: 252 concurrent connections against the same saturated server --
  // with the parked wave this totals 256 in flight. Every one must be shed
  // with a 503 (or a reset), none may hang, and the parked wave must still
  // complete afterwards: shedding stays flat at depth, it doesn't collapse.
  constexpr int kFlood = 252;
  std::atomic<int> flood_shed{0};
  std::atomic<int> flood_served{0};
  {
    std::vector<std::thread> flood;
    flood.reserve(kFlood);
    for (int i = 0; i < kFlood; ++i) {
      flood.emplace_back([&server, &flood_shed, &flood_served] {
        try {
          http::Client client("127.0.0.1", server.port());
          const int status = client.get("/over").status;
          if (status == 503) {
            ++flood_shed;
          } else if (status == 200) {
            ++flood_served;
          }
        } catch (const std::exception&) {
          ++flood_shed;  // reset after the canned 503 also counts as shed
        }
      });
    }
    for (std::thread& thread : flood) thread.join();
  }
  EXPECT_EQ(flood_shed.load(), kFlood) << "saturated server must shed the flood";
  EXPECT_EQ(flood_served.load(), 0);

  release_and_join();
  EXPECT_EQ(parked_ok.load(), kParked);  // queued connections were served, not shed

  // Drained queues accept again.
  http::Client client("127.0.0.1", server.port());
  EXPECT_EQ(client.get("/after").status, 200);
  server.stop();
  EXPECT_GE(server.stats().connections_rejected,
            static_cast<std::uint64_t>(kFlood) + 1u);
}

TEST(Server, StopUnblocksIdleKeepAliveConnections) {
  Server server(ServerOptions{}, echo_handler);
  server.start();
  http::Client client("127.0.0.1", server.port());
  EXPECT_EQ(client.get("/x").status, 200);
  // The connection is idle in a worker's recv loop; stop() must not hang on it.
  const auto before = std::chrono::steady_clock::now();
  server.stop();
  const auto elapsed = std::chrono::steady_clock::now() - before;
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed).count(), 3000);
}

TEST(Server, StartupStatsReportThreadCount) {
  ServerOptions options;
  options.threads = 3;
  options.event_threads = 2;
  Server server(options, echo_handler);
  server.start();
  EXPECT_EQ(server.stats().threads, 3u);
  EXPECT_EQ(server.stats().event_threads, 2u);
  EXPECT_EQ(server.stats().loop_connections.size(), 2u);
  server.stop();
}

TEST(Server, SlowlorisTrickleIsClosedAtHeaderDeadline) {
  // A client trickling one header byte per 50 ms keeps the socket "active"
  // forever; the request deadline is fixed at first-byte + idle_timeout_ms,
  // so the server must answer 408 and close well before the trickle ends.
  ServerOptions options;
  options.idle_timeout_ms = 200;
  Server server(options, echo_handler);
  server.start();

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server.port());
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  ASSERT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr), 0);

  const std::string head = "GET /drip HTTP/1.1\r\nX-Drip: ";
  ASSERT_EQ(::send(fd, head.data(), head.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(head.size()));

  const auto started = std::chrono::steady_clock::now();
  std::string reply;
  bool closed = false;
  // Trickle for up to 4 s; the server should cut us off at ~200 ms. Drain
  // right before each send so the 408 + FIN is read before we could provoke
  // a reset by writing into a closed socket.
  for (int i = 0; i < 80 && !closed; ++i) {
    char buf[1024];
    for (;;) {
      const ssize_t n = ::recv(fd, buf, sizeof buf, MSG_DONTWAIT);
      if (n > 0) {
        reply.append(buf, static_cast<std::size_t>(n));
        continue;
      }
      if (n == 0 || (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK)) {
        closed = true;  // orderly close after the 408 (or a reset)
      }
      break;
    }
    if (closed) break;
    (void)::send(fd, "a", 1, MSG_NOSIGNAL);  // may fail once the server closed
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  ::close(fd);
  const auto elapsed = std::chrono::steady_clock::now() - started;

  EXPECT_TRUE(closed) << "server never closed the slowloris connection";
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed).count(),
            2000);
  EXPECT_NE(reply.find(" 408 "), std::string::npos) << reply;
  server.stop();
  EXPECT_GE(server.stats().timeouts, 1u);
  EXPECT_GE(server.stats().responses_4xx, 1u);
}

TEST(Server, PipelinedRequestsAnswerInOrder) {
  // Four requests written back-to-back before reading anything. The server
  // runs one request per connection at a time, so the four responses must
  // come back complete and in request order on the one connection.
  Server server(ServerOptions{}, echo_handler);
  server.start();

  const std::string wire =
      "GET /p1 HTTP/1.1\r\n\r\n"
      "POST /p2 HTTP/1.1\r\nContent-Length: 3\r\n\r\nxyz"
      "GET /p3 HTTP/1.1\r\n\r\n"
      "GET /p4 HTTP/1.1\r\nConnection: close\r\n\r\n";
  const std::string reply = raw_exchange(server.port(), wire);

  std::size_t statuses = 0;
  for (std::size_t pos = reply.find("HTTP/1.1 200 OK"); pos != std::string::npos;
       pos = reply.find("HTTP/1.1 200 OK", pos + 1)) {
    ++statuses;
  }
  EXPECT_EQ(statuses, 4u) << reply;
  const std::size_t p1 = reply.find("GET /p1 ");
  const std::size_t p2 = reply.find("POST /p2 xyz");
  const std::size_t p3 = reply.find("GET /p3 ");
  const std::size_t p4 = reply.find("GET /p4 ");
  ASSERT_NE(p1, std::string::npos) << reply;
  ASSERT_NE(p2, std::string::npos) << reply;
  ASSERT_NE(p3, std::string::npos) << reply;
  ASSERT_NE(p4, std::string::npos) << reply;
  EXPECT_LT(p1, p2);
  EXPECT_LT(p2, p3);
  EXPECT_LT(p3, p4);

  server.stop();
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.connections_accepted, 1u);
  EXPECT_EQ(stats.requests_total, 4u);
  EXPECT_EQ(stats.responses_2xx, 4u);
}

/// Scripted one-connection-at-a-time fake server: for each accepted
/// connection, reads one request head and plays back the next canned
/// response verbatim (possibly truncated), then closes. Counts requests so
/// tests can assert the client did NOT silently retry a truncated exchange.
class ScriptedServer {
 public:
  explicit ScriptedServer(std::vector<std::string> scripts)
      : scripts_(std::move(scripts)) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd_, 0);
    const int one = 1;
    ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    EXPECT_EQ(::bind(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof addr), 0);
    EXPECT_EQ(::listen(fd_, 8), 0);
    socklen_t len = sizeof addr;
    ::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len);
    port_ = ntohs(addr.sin_port);
    thread_ = std::thread([this] { run(); });
  }

  ~ScriptedServer() {
    ::shutdown(fd_, SHUT_RDWR);
    ::close(fd_);
    thread_.join();
  }

  std::uint16_t port() const { return port_; }
  int requests_seen() const { return requests_seen_.load(); }

 private:
  void run() {
    for (const std::string& script : scripts_) {
      const int conn = ::accept(fd_, nullptr, nullptr);
      if (conn < 0) return;  // listener shut down
      char buf[4096];
      std::string head;
      while (head.find("\r\n\r\n") == std::string::npos) {
        const ssize_t n = ::recv(conn, buf, sizeof buf, 0);
        if (n <= 0) break;
        head.append(buf, static_cast<std::size_t>(n));
      }
      requests_seen_.fetch_add(1);
      if (!script.empty()) {
        (void)::send(conn, script.data(), script.size(), MSG_NOSIGNAL);
      }
      ::close(conn);
    }
  }

  std::vector<std::string> scripts_;
  int fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<int> requests_seen_{0};
  std::thread thread_;
};

TEST(HttpClient, StaleKeepAliveReconnectsButTruncationDoesNot) {
  const std::string full =
      "HTTP/1.1 200 OK\r\nContent-Length: 2\r\nConnection: keep-alive\r\n\r\nok";

  {
    // Stale keep-alive: the first exchange completes, then the server closes
    // the idle connection. The next request sees EOF before any response
    // byte and must transparently retry on a fresh connection.
    ScriptedServer server({full, full});
    http::Client client("127.0.0.1", server.port());
    EXPECT_EQ(client.get("/a").body, "ok");
    EXPECT_EQ(client.get("/b").body, "ok");  // reconnect under the hood
    EXPECT_EQ(server.requests_seen(), 2);
  }
  {
    // Truncated mid-body: headers promise 10 bytes, the wire carries 3. The
    // client must throw a truncation error and must NOT resend the request
    // (a retry could duplicate a non-idempotent operation).
    ScriptedServer server(
        {"HTTP/1.1 200 OK\r\nContent-Length: 10\r\n\r\nabc", full});
    http::Client client("127.0.0.1", server.port());
    try {
      client.get("/c");
      FAIL() << "expected a truncation error";
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find("truncated mid-body"),
                std::string::npos)
          << e.what();
    }
    EXPECT_EQ(server.requests_seen(), 1);
  }
  {
    // Truncated mid-headers: same contract, distinct diagnostic.
    ScriptedServer server({"HTTP/1.1 200 OK\r\nContent-Le", full});
    http::Client client("127.0.0.1", server.port());
    try {
      client.get("/d");
      FAIL() << "expected a truncation error";
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find("truncated mid-headers"),
                std::string::npos)
          << e.what();
    }
    EXPECT_EQ(server.requests_seen(), 1);
  }
}

TEST(Server, PollBackendServesKeepAliveAndPipelining) {
  // Same reactor, portable poll(2) backend: keep-alive accounting and
  // pipelined dispatch must behave identically to epoll.
  ServerOptions options;
  options.backend = PollerBackend::kPoll;
  options.event_threads = 2;
  Server server(options, echo_handler);
  server.start();
  EXPECT_EQ(server.backend_name(), "poll");

  {
    http::Client client("127.0.0.1", server.port());
    EXPECT_EQ(client.get("/one").body, "GET /one ");
    EXPECT_EQ(client.post_json("/two", "body").body, "POST /two body");
  }
  const std::string reply = raw_exchange(
      server.port(),
      "GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\nConnection: close\r\n\r\n");
  const std::size_t a = reply.find("GET /a ");
  const std::size_t b = reply.find("GET /b ");
  ASSERT_NE(a, std::string::npos) << reply;
  ASSERT_NE(b, std::string::npos) << reply;
  EXPECT_LT(a, b);

  server.stop();
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.connections_accepted, 2u);
  EXPECT_EQ(stats.requests_total, 4u);
  EXPECT_EQ(stats.responses_2xx, 4u);
}

}  // namespace
