// serve::Server over real loopback sockets: request dispatch, keep-alive
// accounting, handler-exception mapping, malformed-wire handling, and the
// bounded-queue backpressure path (503 at the door under overload).
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "serve/http.hpp"
#include "serve/server.hpp"

namespace {

using namespace prm::serve;

http::Response echo_handler(const http::Request& request) {
  if (request.target == "/boom") throw std::runtime_error("handler exploded");
  http::Response response;
  response.body = request.method + ' ' + request.target + ' ' + request.body;
  return response;
}

/// Open a raw TCP connection to loopback:port, send `wire`, read until the
/// peer closes or `max_reads` recv calls complete. Returns everything read.
std::string raw_exchange(std::uint16_t port, const std::string& wire) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  EXPECT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr), 0);
  EXPECT_EQ(::send(fd, wire.data(), wire.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(wire.size()));
  std::string out;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n <= 0) break;  // error servers close the connection after responding
    out.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return out;
}

TEST(Server, ServesRequestsOnEphemeralPort) {
  Server server(ServerOptions{}, echo_handler);
  server.start();
  ASSERT_NE(server.port(), 0);

  http::Client client("127.0.0.1", server.port());
  const http::Response response = client.post_json("/echo", "payload");
  EXPECT_EQ(response.status, 200);
  EXPECT_EQ(response.body, "POST /echo payload");
  server.stop();
  EXPECT_FALSE(server.running());
}

TEST(Server, KeepAliveReusesOneConnection) {
  Server server(ServerOptions{}, echo_handler);
  server.start();
  {
    http::Client client("127.0.0.1", server.port());
    EXPECT_EQ(client.get("/one").body, "GET /one ");
    EXPECT_EQ(client.get("/two").body, "GET /two ");
    EXPECT_EQ(client.get("/three").body, "GET /three ");
  }
  server.stop();

  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.connections_accepted, 1u);
  EXPECT_EQ(stats.requests_total, 3u);
  EXPECT_EQ(stats.responses_2xx, 3u);
  EXPECT_EQ(stats.connections_rejected, 0u);

  std::uint64_t histogram_total = 0;
  for (const std::uint64_t count : stats.latency_buckets) histogram_total += count;
  EXPECT_EQ(histogram_total, 3u);  // every request lands in exactly one bucket
}

TEST(Server, HandlerExceptionBecomes500) {
  Server server(ServerOptions{}, echo_handler);
  server.start();
  http::Client client("127.0.0.1", server.port());
  const http::Response response = client.get("/boom");
  EXPECT_EQ(response.status, 500);
  EXPECT_NE(response.body.find("error"), std::string::npos);
  server.stop();
  EXPECT_EQ(server.stats().responses_5xx, 1u);
}

TEST(Server, MalformedWireGets400AndCountsAsParseError) {
  Server server(ServerOptions{}, echo_handler);
  server.start();
  const std::string reply = raw_exchange(server.port(), "NONSENSE\r\n\r\n");
  EXPECT_EQ(reply.rfind("HTTP/1.1 400 Bad Request\r\n", 0), 0u) << reply;
  server.stop();
  EXPECT_EQ(server.stats().parse_errors, 1u);
  EXPECT_GE(server.stats().responses_4xx, 1u);
}

TEST(Server, OversizedBodyGets413) {
  ServerOptions options;
  options.max_body_bytes = 64;
  Server server(options, echo_handler);
  server.start();
  const std::string reply = raw_exchange(
      server.port(), "POST /big HTTP/1.1\r\nContent-Length: 100000\r\n\r\n");
  EXPECT_NE(reply.find(" 413 "), std::string::npos) << reply;
  server.stop();
}

TEST(Server, OverloadShedsWith503AtTheDoor) {
  // One worker + a one-slot queue + a handler parked on a latch: the first
  // connection occupies the worker, the second fills the queue, and each
  // additional concurrent connection must be rejected with a canned 503.
  std::mutex gate_mutex;
  std::condition_variable gate_cv;
  bool gate_open = false;

  ServerOptions options;
  options.threads = 1;
  options.max_pending = 1;
  Server server(options, [&](const http::Request& request) {
    if (request.target == "/slow") {
      std::unique_lock<std::mutex> lock(gate_mutex);
      gate_cv.wait(lock, [&] { return gate_open; });
    }
    return http::Response{};
  });
  server.start();

  constexpr int kClients = 8;
  std::atomic<int> ok_count{0};
  std::atomic<int> rejected_count{0};
  std::vector<std::thread> clients;
  for (int i = 0; i < kClients; ++i) {
    clients.emplace_back([&server, &ok_count, &rejected_count] {
      try {
        http::Client client("127.0.0.1", server.port());
        const http::Response response = client.get("/slow");
        if (response.status == 200) ++ok_count;
        if (response.status == 503) ++rejected_count;
      } catch (const std::exception&) {
        // A reset from a rejected connection also counts as shed load.
        ++rejected_count;
      }
    });
  }

  // Give every client time to reach the server while the worker is parked,
  // then open the gate and let the accepted ones drain.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  {
    std::lock_guard<std::mutex> lock(gate_mutex);
    gate_open = true;
  }
  gate_cv.notify_all();
  for (std::thread& thread : clients) thread.join();
  server.stop();

  const ServerStats stats = server.stats();
  EXPECT_EQ(ok_count + rejected_count, kClients);
  EXPECT_GT(rejected_count.load(), 0) << "expected the bounded queue to shed load";
  EXPECT_GT(stats.connections_rejected, 0u);
  EXPECT_GT(ok_count.load(), 0) << "accepted connections must still be served";
  // connections_accepted counts every accept(2), including ones later shed,
  // so accepted - rejected is the number of connections actually served.
  EXPECT_EQ(stats.connections_accepted, static_cast<std::uint64_t>(kClients));
  EXPECT_EQ(stats.connections_accepted - stats.connections_rejected,
            static_cast<std::uint64_t>(ok_count.load()));
}

TEST(Server, FullPerWorkerQueuesKeep503RetryAfterContractAndRecover) {
  // Two workers, max_pending = 2 -> one slot per worker queue. Four clients
  // parked on /slow occupy both workers and fill both queues (the acceptor
  // offers a connection to every queue before shedding, so the fill is
  // deterministic regardless of deal order). The fifth connection must get
  // the canned 503 + Retry-After, and once the gate opens and the backlog
  // drains, acceptance must resume.
  std::mutex gate_mutex;
  std::condition_variable gate_cv;
  bool gate_open = false;

  ServerOptions options;
  options.threads = 2;
  options.max_pending = 2;
  Server server(options, [&](const http::Request& request) {
    if (request.target == "/slow") {
      std::unique_lock<std::mutex> lock(gate_mutex);
      gate_cv.wait(lock, [&] { return gate_open; });
    }
    return http::Response{};
  });
  server.start();

  // Saturate in two waves (a single burst of four could race the workers:
  // the acceptor deals faster than an idle worker wakes, so a connection
  // meant to park in a handler could be shed at the door instead).
  constexpr int kParked = 4;  // 2 in workers + 2 queued
  std::atomic<int> parked_ok{0};
  std::vector<std::thread> parked;
  const auto launch_parked = [&] {
    parked.emplace_back([&server, &parked_ok] {
      http::Client client("127.0.0.1", server.port());
      if (client.get("/slow").status == 200) ++parked_ok;
    });
  };
  const auto spin_until = [&server](auto&& ready) {
    for (int spin = 0; spin < 500; ++spin) {
      if (ready(server.stats())) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    return false;
  };

  // On a failed spin the parked clients must still be released and joined
  // before the test returns, so failures funnel through this helper.
  const auto release_and_join = [&] {
    {
      std::lock_guard<std::mutex> lock(gate_mutex);
      gate_open = true;
    }
    gate_cv.notify_all();
    for (std::thread& thread : parked) thread.join();
  };

  // Wave 1: occupy both workers. requests_total counts up right before the
  // handler runs, so 2 requests + empty queues = both workers parked.
  launch_parked();
  launch_parked();
  if (!spin_until([](const ServerStats& stats) {
        return stats.requests_total >= 2 && stats.queue_depth == 0;
      })) {
    release_and_join();
    FAIL() << "workers never picked up the first wave";
  }

  // Wave 2: with both workers parked, these must stay queued -> both
  // one-slot queues full.
  launch_parked();
  launch_parked();
  if (!spin_until([](const ServerStats& stats) {
        return stats.connections_accepted >= kParked && stats.queue_depth >= 2;
      })) {
    release_and_join();
    FAIL() << "second wave never filled the per-worker queues";
  }
  const ServerStats saturated = server.stats();
  ASSERT_EQ(saturated.queue_depths.size(), 2u);
  EXPECT_EQ(saturated.queue_depth, 2u);
  for (const std::size_t depth : saturated.queue_depths) EXPECT_EQ(depth, 1u);

  // Every queue full: the shed response must carry the Retry-After contract.
  const std::string reply =
      raw_exchange(server.port(), "GET /over HTTP/1.1\r\n\r\n");
  EXPECT_NE(reply.find(" 503 "), std::string::npos) << reply;
  EXPECT_NE(reply.find("Retry-After: 1"), std::string::npos) << reply;
  EXPECT_NE(reply.find("overloaded"), std::string::npos) << reply;

  release_and_join();
  EXPECT_EQ(parked_ok.load(), kParked);  // queued connections were served, not shed

  // Drained queues accept again.
  http::Client client("127.0.0.1", server.port());
  EXPECT_EQ(client.get("/after").status, 200);
  server.stop();
  EXPECT_GE(server.stats().connections_rejected, 1u);
}

TEST(Server, StopUnblocksIdleKeepAliveConnections) {
  Server server(ServerOptions{}, echo_handler);
  server.start();
  http::Client client("127.0.0.1", server.port());
  EXPECT_EQ(client.get("/x").status, 200);
  // The connection is idle in a worker's recv loop; stop() must not hang on it.
  const auto before = std::chrono::steady_clock::now();
  server.stop();
  const auto elapsed = std::chrono::steady_clock::now() - before;
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed).count(), 3000);
}

TEST(Server, StartupStatsReportThreadCount) {
  ServerOptions options;
  options.threads = 3;
  Server server(options, echo_handler);
  server.start();
  EXPECT_EQ(server.stats().threads, 3u);
  server.stop();
}

}  // namespace
