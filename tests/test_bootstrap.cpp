#include "stats/bootstrap.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "core/bathtub.hpp"
#include "core/fitting.hpp"
#include "data/recessions.hpp"

namespace prm::stats {
namespace {

TEST(EmpiricalQuantile, OrderStatisticsAndInterpolation) {
  const std::vector<double> v{4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(empirical_quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(empirical_quantile(v, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(empirical_quantile(v, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(empirical_quantile(v, 1.0 / 3.0), 2.0);
  EXPECT_DOUBLE_EQ(empirical_quantile({7.0}, 0.3), 7.0);
}

TEST(EmpiricalQuantile, Errors) {
  EXPECT_THROW(empirical_quantile({}, 0.5), std::invalid_argument);
  EXPECT_THROW(empirical_quantile({1.0}, 1.5), std::invalid_argument);
  EXPECT_THROW(empirical_quantile({1.0}, -0.1), std::invalid_argument);
}

// A trivially refittable "model": mean of the resampled window, constant
// prediction everywhere.
std::vector<double> mean_refit(const std::vector<double>& window, std::size_t total) {
  double m = 0.0;
  for (double v : window) m += v;
  m /= static_cast<double>(window.size());
  return std::vector<double>(total, m);
}

TEST(BootstrapBand, CoversTruthForMeanModel) {
  std::mt19937_64 rng(77);
  std::normal_distribution<double> noise(0.0, 0.1);
  const std::size_t n = 60;
  std::vector<double> obs(n), pred(n, 0.0);
  double mean_obs = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    obs[i] = 5.0 + noise(rng);
    mean_obs += obs[i];
  }
  mean_obs /= static_cast<double>(n);
  std::fill(pred.begin(), pred.end(), mean_obs);

  BootstrapOptions opts;
  opts.replicates = 300;
  const BootstrapResult r = bootstrap_confidence_band(
      obs, pred, pred, [n](const std::vector<double>& w) { return mean_refit(w, n); },
      opts);
  EXPECT_EQ(r.replicates_used, 300);
  EXPECT_EQ(r.replicates_failed, 0);
  // The prediction band must cover essentially all observations.
  const double ec = empirical_coverage(obs, r.band);
  EXPECT_GE(ec, 90.0);
  // And the true level.
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_LE(r.band.lower[i], 5.05);
    EXPECT_GE(r.band.upper[i], 4.95);
  }
}

TEST(BootstrapBand, CurveOnlyBandIsNarrowerThanPredictionBand) {
  std::mt19937_64 rng(78);
  std::normal_distribution<double> noise(0.0, 0.2);
  const std::size_t n = 50;
  std::vector<double> obs(n);
  for (std::size_t i = 0; i < n; ++i) obs[i] = 2.0 + noise(rng);
  std::vector<double> pred(n, 2.0);

  BootstrapOptions with_noise;
  with_noise.include_residual_noise = true;
  BootstrapOptions without_noise;
  without_noise.include_residual_noise = false;
  const auto refit = [n](const std::vector<double>& w) { return mean_refit(w, n); };
  const auto wide = bootstrap_confidence_band(obs, pred, pred, refit, with_noise);
  const auto narrow = bootstrap_confidence_band(obs, pred, pred, refit, without_noise);
  EXPECT_GT(wide.band.half_width, 2.0 * narrow.band.half_width);
}

TEST(BootstrapBand, DeterministicForSeed) {
  const std::size_t n = 30;
  std::vector<double> obs(n), pred(n, 1.0);
  for (std::size_t i = 0; i < n; ++i) obs[i] = 1.0 + 0.01 * ((i % 3) - 1.0);
  const auto refit = [n](const std::vector<double>& w) { return mean_refit(w, n); };
  const auto a = bootstrap_confidence_band(obs, pred, pred, refit);
  const auto b = bootstrap_confidence_band(obs, pred, pred, refit);
  EXPECT_EQ(a.band.lower, b.band.lower);
  EXPECT_EQ(a.band.upper, b.band.upper);
}

TEST(BootstrapBand, FailedReplicatesAreSkippedAndCounted) {
  const std::size_t n = 20;
  std::vector<double> obs(n), pred(n, 1.0);
  for (std::size_t i = 0; i < n; ++i) obs[i] = 1.0 + 0.01 * ((i % 5) - 2.0);
  int call = 0;
  const auto flaky = [&call, n](const std::vector<double>& w) {
    ++call;
    if (call % 3 == 0) return std::vector<double>();  // simulated refit failure
    return mean_refit(w, n);
  };
  BootstrapOptions opts;
  opts.replicates = 90;
  const auto r = bootstrap_confidence_band(obs, pred, pred, flaky, opts);
  EXPECT_EQ(r.replicates_failed, 30);
  EXPECT_EQ(r.replicates_used, 60);
}

TEST(BootstrapBand, InputValidation) {
  const std::vector<double> v{1.0, 2.0, 3.0};
  const auto refit = [](const std::vector<double>& w) { return w; };
  EXPECT_THROW(
      bootstrap_confidence_band(v, std::vector<double>{1.0}, v, refit),
      std::invalid_argument);
  BootstrapOptions one;
  one.replicates = 1;
  EXPECT_THROW(bootstrap_confidence_band(v, v, v, refit, one), std::invalid_argument);
  EXPECT_THROW(bootstrap_confidence_band(v, v, v, nullptr), std::invalid_argument);
}

TEST(BootstrapBand, EndToEndWithRealModelRefit) {
  // Full pipeline: quadratic model on a real dataset, refit per replicate.
  const auto& ds = data::recession("1990-93");
  const core::FitResult fit = core::fit_model("quadratic", ds.series, ds.holdout);
  const auto fit_window = fit.fit_window();
  const std::vector<double> predicted_all = fit.predictions();
  const std::vector<double> predicted_fit = fit.fit_predictions();
  const std::vector<double> observed_fit(fit_window.values().begin(),
                                         fit_window.values().end());

  const auto refit = [&](const std::vector<double>& window) -> std::vector<double> {
    data::PerformanceSeries s(
        "boot", std::vector<double>(fit_window.times().begin(), fit_window.times().end()),
        window);
    core::FitOptions quick;
    quick.multistart.sampled_starts = 0;
    quick.multistart.jitter_per_start = 0;
    quick.multistart.polish_with_nelder_mead = false;
    const core::FitResult r = core::fit_model("quadratic", s, 0, quick);
    if (!r.success()) return {};
    std::vector<double> out;
    out.reserve(fit.series().size());
    for (std::size_t i = 0; i < fit.series().size(); ++i) {
      out.push_back(r.evaluate(fit.series().time(i)));
    }
    return out;
  };

  BootstrapOptions opts;
  opts.replicates = 60;
  const auto r =
      bootstrap_confidence_band(observed_fit, predicted_fit, predicted_all, refit, opts);
  EXPECT_GE(r.replicates_used, 50);
  // Bootstrap EC over all samples should be broadly comparable to Eq. 13.
  const double ec = empirical_coverage(fit.series().values(), r.band);
  EXPECT_GE(ec, 80.0);
}

}  // namespace
}  // namespace prm::stats
