#include "data/time_series.hpp"

#include <gtest/gtest.h>

namespace prm::data {
namespace {

PerformanceSeries sample_series() {
  return PerformanceSeries("s", {1.0, 0.98, 0.95, 0.96, 0.99, 1.02});
}

TEST(PerformanceSeries, UniformGridConstructor) {
  const PerformanceSeries s = sample_series();
  EXPECT_EQ(s.size(), 6u);
  EXPECT_DOUBLE_EQ(s.time(0), 0.0);
  EXPECT_DOUBLE_EQ(s.time(5), 5.0);
  EXPECT_DOUBLE_EQ(s.value(2), 0.95);
  EXPECT_EQ(s.name(), "s");
}

TEST(PerformanceSeries, ExplicitTimesValidated) {
  EXPECT_NO_THROW(PerformanceSeries("x", {0.0, 2.0, 5.0}, {1.0, 2.0, 3.0}));
  EXPECT_THROW(PerformanceSeries("x", {0.0, 2.0}, {1.0}), std::invalid_argument);
  EXPECT_THROW(PerformanceSeries("x", {0.0, 0.0}, {1.0, 2.0}), std::invalid_argument);
  EXPECT_THROW(PerformanceSeries("x", {1.0, 0.5}, {1.0, 2.0}), std::invalid_argument);
}

TEST(PerformanceSeries, HeadTailSlice) {
  const PerformanceSeries s = sample_series();
  const PerformanceSeries h = s.head(3);
  EXPECT_EQ(h.size(), 3u);
  EXPECT_DOUBLE_EQ(h.value(2), 0.95);
  const PerformanceSeries t = s.tail(2);
  EXPECT_EQ(t.size(), 2u);
  EXPECT_DOUBLE_EQ(t.value(0), 0.99);
  EXPECT_DOUBLE_EQ(t.time(0), 4.0);  // preserves absolute times
  const PerformanceSeries m = s.slice(1, 3);
  EXPECT_DOUBLE_EQ(m.value(0), 0.98);
  EXPECT_THROW(s.slice(4, 3), std::out_of_range);
  EXPECT_THROW(s.tail(7), std::out_of_range);
}

TEST(PerformanceSeries, SplitPartitionsExactly) {
  const PerformanceSeries s = sample_series();
  const auto [train, test] = s.split(2);
  EXPECT_EQ(train.size(), 4u);
  EXPECT_EQ(test.size(), 2u);
  EXPECT_DOUBLE_EQ(train.value(3), 0.96);
  EXPECT_DOUBLE_EQ(test.value(0), 0.99);
  EXPECT_THROW(s.split(6), std::invalid_argument);
}

TEST(PerformanceSeries, TroughDetection) {
  const PerformanceSeries s = sample_series();
  EXPECT_EQ(s.trough_index(), 2u);
  EXPECT_DOUBLE_EQ(s.trough_time(), 2.0);
  EXPECT_DOUBLE_EQ(s.trough_value(), 0.95);
  // First occurrence on ties.
  const PerformanceSeries tie("t", {1.0, 0.9, 0.9, 1.0});
  EXPECT_EQ(tie.trough_index(), 1u);
}

TEST(PerformanceSeries, IntegralTrapezoid) {
  const PerformanceSeries s("i", {0.0, 1.0, 3.0}, {2.0, 4.0, 4.0});
  // [0,1]: (2+4)/2 = 3; [1,3]: 4*2 = 8; total 11.
  EXPECT_DOUBLE_EQ(s.integral(), 11.0);
  EXPECT_DOUBLE_EQ(s.integral(0, 1), 3.0);
  EXPECT_DOUBLE_EQ(s.integral(1, 2), 8.0);
  EXPECT_THROW(s.integral(2, 1), std::out_of_range);
  EXPECT_THROW(s.integral(0, 3), std::out_of_range);
}

TEST(PerformanceSeries, SingleSampleIntegralIsZero) {
  const PerformanceSeries s("one", {5.0});
  EXPECT_DOUBLE_EQ(s.integral(), 0.0);
}

TEST(PerformanceSeries, Normalized) {
  const PerformanceSeries s("n", {2.0, 1.0, 3.0});
  const PerformanceSeries norm = s.normalized();
  EXPECT_DOUBLE_EQ(norm.value(0), 1.0);
  EXPECT_DOUBLE_EQ(norm.value(1), 0.5);
  EXPECT_DOUBLE_EQ(norm.value(2), 1.5);
  const PerformanceSeries zero("z", {0.0, 1.0});
  EXPECT_THROW(zero.normalized(), std::domain_error);
}

TEST(PerformanceSeries, Rebased) {
  const PerformanceSeries s("r", {10.0, 11.0, 13.0}, {1.0, 2.0, 3.0});
  const PerformanceSeries rb = s.rebased();
  EXPECT_DOUBLE_EQ(rb.time(0), 0.0);
  EXPECT_DOUBLE_EQ(rb.time(2), 3.0);
  EXPECT_DOUBLE_EQ(rb.value(1), 2.0);
}

TEST(PerformanceSeries, InterpolateLinearAndClamped) {
  const PerformanceSeries s("p", {0.0, 2.0, 4.0}, {1.0, 3.0, 2.0});
  EXPECT_DOUBLE_EQ(s.interpolate(1.0), 2.0);
  EXPECT_DOUBLE_EQ(s.interpolate(3.0), 2.5);
  EXPECT_DOUBLE_EQ(s.interpolate(-1.0), 1.0);  // clamp left
  EXPECT_DOUBLE_EQ(s.interpolate(9.0), 2.0);   // clamp right
  EXPECT_DOUBLE_EQ(s.interpolate(2.0), 3.0);   // exact node
}

TEST(PerformanceSeries, EmptySeriesBehaviour) {
  const PerformanceSeries e;
  EXPECT_TRUE(e.empty());
  EXPECT_THROW(e.trough_index(), std::logic_error);
  EXPECT_THROW(e.interpolate(0.0), std::logic_error);
}

}  // namespace
}  // namespace prm::data
