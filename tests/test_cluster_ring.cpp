// prm::cluster ring unit tests: the consistent-hash contract the whole
// cluster mode rests on.
//
//  * Determinism: same membership -> byte-identical ownership, regardless of
//    construction order (the wire contract -- router, nodes, and clients all
//    derive ownership independently).
//  * Uniformity: 1000 streams over 4 nodes land within generous bounds of
//    the 250/node ideal.
//  * Bounded remap: removing a node moves ONLY the keys it owned (and all of
//    them to survivors); adding a node moves keys only TO the new node, and
//    roughly K/N of them -- the property that makes a join a catch-up
//    problem instead of a reshuffle.
//  * parse_peer / transferable_file_name input validation.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "cluster/ring.hpp"
#include "cluster/upstream.hpp"

namespace {

using prm::cluster::HashRing;
using prm::cluster::PeerAddress;
using prm::cluster::parse_peer;
using prm::cluster::stable_hash;
using prm::cluster::transferable_file_name;

std::vector<std::string> stream_names(std::size_t n) {
  std::vector<std::string> names;
  names.reserve(n);
  for (std::size_t i = 0; i < n; ++i) names.push_back("stream-" + std::to_string(i));
  return names;
}

TEST(StableHash, IsStableAndSpreads) {
  // Pinned values: changing the hash silently would split a live cluster's
  // brain (old and new processes would disagree on ownership).
  EXPECT_EQ(stable_hash(""), stable_hash(""));
  EXPECT_NE(stable_hash("a"), stable_hash("b"));
  EXPECT_NE(stable_hash("stream-1"), stable_hash("stream-2"));
  const auto h1 = stable_hash("node#1");
  EXPECT_EQ(h1, stable_hash(std::string("node#1")));
}

TEST(HashRing, DeterministicAcrossConstructionOrder) {
  const HashRing a({"10.0.0.1:80", "10.0.0.2:80", "10.0.0.3:80"});
  const HashRing b({"10.0.0.3:80", "10.0.0.1:80", "10.0.0.2:80"});
  HashRing c({"10.0.0.2:80"});
  c.add_node("10.0.0.1:80");
  c.add_node("10.0.0.3:80");
  for (const std::string& key : stream_names(500)) {
    EXPECT_EQ(a.owner(key), b.owner(key));
    EXPECT_EQ(a.owner(key), c.owner(key));
  }
}

TEST(HashRing, DistributionIsRoughlyUniform) {
  const std::vector<std::string> nodes = {"n1:1", "n2:1", "n3:1", "n4:1"};
  const HashRing ring(nodes);
  std::map<std::string, int> counts;
  for (const std::string& key : stream_names(1000)) counts[ring.owner(key)]++;
  ASSERT_EQ(counts.size(), 4u) << "some node owns nothing";
  for (const auto& [node, count] : counts) {
    // Ideal is 250; with 64 vnodes the spread stays well inside [100, 400].
    EXPECT_GE(count, 100) << node << " is starved";
    EXPECT_LE(count, 400) << node << " is overloaded";
  }
}

TEST(HashRing, RemoveMovesOnlyTheRemovedNodesKeys) {
  const std::vector<std::string> nodes = {"n1:1", "n2:1", "n3:1", "n4:1"};
  HashRing ring(nodes);
  const std::vector<std::string> keys = stream_names(1000);
  std::map<std::string, std::string> before;
  for (const std::string& key : keys) before[key] = ring.owner(key);

  ASSERT_TRUE(ring.remove_node("n3:1"));
  int moved = 0;
  for (const std::string& key : keys) {
    const std::string& now = ring.owner(key);
    EXPECT_NE(now, "n3:1");
    if (before[key] == "n3:1") {
      ++moved;  // must move somewhere
    } else {
      // Keys the departed node never owned must not move at all.
      EXPECT_EQ(now, before[key]) << key << " moved without cause";
    }
  }
  EXPECT_GT(moved, 0);
}

TEST(HashRing, AddMovesKeysOnlyToTheNewNodeAndBoundedlyMany) {
  HashRing ring({"n1:1", "n2:1", "n3:1"});
  const std::vector<std::string> keys = stream_names(1000);
  std::map<std::string, std::string> before;
  for (const std::string& key : keys) before[key] = ring.owner(key);

  ring.add_node("n4:1");
  int moved = 0;
  for (const std::string& key : keys) {
    const std::string& now = ring.owner(key);
    if (now != before[key]) {
      EXPECT_EQ(now, "n4:1") << "a key moved between surviving nodes";
      ++moved;
    }
  }
  // Expectation is K/N = 250 of 1000; assert a generous bound well under a
  // reshuffle (which would move ~750) and above zero.
  EXPECT_GT(moved, 50);
  EXPECT_LT(moved, 500);
}

TEST(HashRing, AddRemoveRoundTripRestoresOwnership) {
  HashRing ring({"n1:1", "n2:1", "n3:1"});
  const std::vector<std::string> keys = stream_names(300);
  std::map<std::string, std::string> before;
  for (const std::string& key : keys) before[key] = ring.owner(key);
  ring.add_node("n4:1");
  ASSERT_TRUE(ring.remove_node("n4:1"));
  for (const std::string& key : keys) EXPECT_EQ(ring.owner(key), before[key]);
}

TEST(HashRing, Validation) {
  EXPECT_THROW(HashRing({}, 64).owner("k"), std::logic_error);
  EXPECT_THROW(HashRing({"n1:1"}, 0), std::invalid_argument);
  EXPECT_THROW(HashRing({""}), std::invalid_argument);
  EXPECT_THROW(HashRing().owner("k"), std::logic_error);

  HashRing ring({"n1:1", "n1:1", "n2:1"});  // duplicates collapse
  EXPECT_EQ(ring.size(), 2u);
  EXPECT_TRUE(ring.contains("n1:1"));
  EXPECT_FALSE(ring.contains("n9:1"));
  EXPECT_FALSE(ring.remove_node("n9:1"));
}

TEST(ParsePeer, AcceptsHostPortAndRejectsGarbage) {
  const PeerAddress a = parse_peer("127.0.0.1:8080");
  EXPECT_EQ(a.host, "127.0.0.1");
  EXPECT_EQ(a.port, 8080);

  EXPECT_THROW(parse_peer("127.0.0.1"), std::invalid_argument);
  EXPECT_THROW(parse_peer(":8080"), std::invalid_argument);
  EXPECT_THROW(parse_peer("host:"), std::invalid_argument);
  EXPECT_THROW(parse_peer("host:0"), std::invalid_argument);
  EXPECT_THROW(parse_peer("host:65536"), std::invalid_argument);
  EXPECT_THROW(parse_peer("host:80x"), std::invalid_argument);
  EXPECT_THROW(parse_peer(""), std::invalid_argument);
}

TEST(TransferableFileName, GatesExactlyTheWalDirFiles) {
  EXPECT_TRUE(transferable_file_name("snapshot.prm"));
  EXPECT_TRUE(transferable_file_name("wal-0000-00000001.log"));
  EXPECT_TRUE(transferable_file_name("wal-0007-12345678.log"));

  EXPECT_FALSE(transferable_file_name(""));
  EXPECT_FALSE(transferable_file_name("wal-0000-00000001.log.tmp"));
  EXPECT_FALSE(transferable_file_name("wal-000-00000001.log"));
  EXPECT_FALSE(transferable_file_name("../snapshot.prm"));
  EXPECT_FALSE(transferable_file_name("a/snapshot.prm"));
  EXPECT_FALSE(transferable_file_name("..\\snapshot.prm"));
  EXPECT_FALSE(transferable_file_name("/etc/passwd"));
  EXPECT_FALSE(transferable_file_name("wal-00000000000001.log"));
  EXPECT_FALSE(transferable_file_name("snapshot.prm "));
}

}  // namespace
