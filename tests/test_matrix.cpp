#include "numerics/matrix.hpp"

#include <gtest/gtest.h>

namespace prm::num {
namespace {

TEST(Matrix, DefaultConstructedIsEmpty) {
  Matrix m;
  EXPECT_EQ(m.rows(), 0u);
  EXPECT_EQ(m.cols(), 0u);
  EXPECT_TRUE(m.empty());
}

TEST(Matrix, SizedConstructorFills) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  for (std::size_t r = 0; r < 2; ++r) {
    for (std::size_t c = 0; c < 3; ++c) EXPECT_DOUBLE_EQ(m(r, c), 1.5);
  }
}

TEST(Matrix, InitializerListLaysOutRowMajor) {
  Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_DOUBLE_EQ(m(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(m(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
  EXPECT_DOUBLE_EQ(m(1, 1), 4.0);
  EXPECT_DOUBLE_EQ(m.data()[2], 3.0);  // row-major storage
}

TEST(Matrix, RaggedInitializerThrows) {
  EXPECT_THROW((Matrix{{1.0, 2.0}, {3.0}}), std::invalid_argument);
}

TEST(Matrix, OutOfRangeAccessThrows) {
  Matrix m(2, 2);
  EXPECT_THROW(m(2, 0), std::out_of_range);
  EXPECT_THROW(m(0, 2), std::out_of_range);
}

TEST(Matrix, IdentityAndDiagonal) {
  const Matrix i = Matrix::identity(3);
  EXPECT_DOUBLE_EQ(i(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(i(1, 2), 0.0);
  const Matrix d = Matrix::diagonal({2.0, 3.0});
  EXPECT_DOUBLE_EQ(d(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(d(1, 1), 3.0);
  EXPECT_DOUBLE_EQ(d(0, 1), 0.0);
}

TEST(Matrix, Transposed) {
  Matrix m{{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
  const Matrix t = m.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t(0, 1), 4.0);
  EXPECT_DOUBLE_EQ(t(2, 0), 3.0);
}

TEST(Matrix, RowAndColExtraction) {
  Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_EQ(m.row(1), (Vector{3.0, 4.0}));
  EXPECT_EQ(m.col(0), (Vector{1.0, 3.0}));
  EXPECT_THROW(m.row(2), std::out_of_range);
  EXPECT_THROW(m.col(2), std::out_of_range);
}

TEST(Matrix, AdditionSubtraction) {
  Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  Matrix b{{4.0, 3.0}, {2.0, 1.0}};
  const Matrix s = a + b;
  EXPECT_DOUBLE_EQ(s(0, 0), 5.0);
  EXPECT_DOUBLE_EQ(s(1, 1), 5.0);
  const Matrix d = a - b;
  EXPECT_DOUBLE_EQ(d(0, 0), -3.0);
  EXPECT_DOUBLE_EQ(d(1, 1), 3.0);
}

TEST(Matrix, ShapeMismatchThrows) {
  Matrix a(2, 2);
  Matrix b(2, 3);
  EXPECT_THROW(a + b, std::invalid_argument);
  EXPECT_THROW(a - b, std::invalid_argument);
  EXPECT_THROW(b * b, std::invalid_argument);
}

TEST(Matrix, Multiplication) {
  Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  Matrix b{{5.0, 6.0}, {7.0, 8.0}};
  const Matrix p = a * b;
  EXPECT_DOUBLE_EQ(p(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(p(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(p(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(p(1, 1), 50.0);
}

TEST(Matrix, ScalarMultiplication) {
  Matrix a{{1.0, -2.0}};
  const Matrix s = 3.0 * a;
  EXPECT_DOUBLE_EQ(s(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(s(0, 1), -6.0);
}

TEST(Matrix, MatrixVectorProduct) {
  Matrix a{{1.0, 2.0}, {3.0, 4.0}, {5.0, 6.0}};
  const Vector y = a * Vector{1.0, -1.0};
  EXPECT_EQ(y, (Vector{-1.0, -1.0, -1.0}));
  EXPECT_THROW(a * Vector{1.0}, std::invalid_argument);
}

TEST(VectorOps, AddSubScaleAxpy) {
  const Vector a{1.0, 2.0};
  const Vector b{3.0, 5.0};
  EXPECT_EQ(add(a, b), (Vector{4.0, 7.0}));
  EXPECT_EQ(sub(b, a), (Vector{2.0, 3.0}));
  EXPECT_EQ(scaled(2.0, a), (Vector{2.0, 4.0}));
  EXPECT_EQ(axpy(a, 2.0, b), (Vector{7.0, 12.0}));
  EXPECT_THROW(add(a, Vector{1.0}), std::invalid_argument);
}

TEST(VectorOps, DotAndNorms) {
  const Vector a{3.0, 4.0};
  EXPECT_DOUBLE_EQ(dot(a, a), 25.0);
  EXPECT_DOUBLE_EQ(norm2(a), 5.0);
  EXPECT_DOUBLE_EQ(norm_inf(Vector{-7.0, 2.0}), 7.0);
  EXPECT_THROW(dot(a, Vector{1.0}), std::invalid_argument);
}

TEST(VectorOps, GramIsAtA) {
  Matrix a{{1.0, 2.0}, {3.0, 4.0}, {5.0, 6.0}};
  const Matrix g = gram(a);
  const Matrix expected = a.transposed() * a;
  ASSERT_EQ(g.rows(), 2u);
  for (std::size_t r = 0; r < 2; ++r) {
    for (std::size_t c = 0; c < 2; ++c) {
      EXPECT_DOUBLE_EQ(g(r, c), expected(r, c));
    }
  }
}

TEST(VectorOps, AtTimesIsAtB) {
  Matrix a{{1.0, 2.0}, {3.0, 4.0}, {5.0, 6.0}};
  const Vector b{1.0, 1.0, 1.0};
  EXPECT_EQ(at_times(a, b), (Vector{9.0, 12.0}));
  EXPECT_THROW(at_times(a, Vector{1.0}), std::invalid_argument);
}

}  // namespace
}  // namespace prm::num
