#include "data/generator.hpp"

#include <gtest/gtest.h>

namespace prm::data {
namespace {

TEST(Generator, DeterministicForSameSpec) {
  ScenarioSpec spec;
  spec.seed = 123;
  const PerformanceSeries a = generate_scenario(spec);
  const PerformanceSeries b = generate_scenario(spec);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.value(i), b.value(i));
  }
}

TEST(Generator, DifferentSeedsDiffer) {
  ScenarioSpec a;
  a.seed = 1;
  ScenarioSpec b;
  b.seed = 2;
  const auto sa = generate_scenario(a);
  const auto sb = generate_scenario(b);
  bool any_diff = false;
  for (std::size_t i = 0; i < sa.size(); ++i) {
    if (sa.value(i) != sb.value(i)) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Generator, StartsAtExactlyNominal) {
  for (auto shape : {RecessionShape::kV, RecessionShape::kU, RecessionShape::kW,
                     RecessionShape::kL, RecessionShape::kJ, RecessionShape::kK}) {
    EXPECT_DOUBLE_EQ(generate_shape(shape).value(0), 1.0);
  }
}

TEST(Generator, RespectsLength) {
  ScenarioSpec spec;
  spec.length = 31;
  EXPECT_EQ(generate_scenario(spec).size(), 31u);
}

TEST(Generator, DepthApproximatelyRealized) {
  ScenarioSpec spec;
  spec.shape = RecessionShape::kV;
  spec.depth = 0.05;
  spec.noise = 0.0;
  const auto s = generate_scenario(spec);
  EXPECT_NEAR(s.trough_value(), 0.95, 0.005);
}

TEST(Generator, TroughPositionApproximatelyRealized) {
  ScenarioSpec spec;
  spec.shape = RecessionShape::kV;
  spec.trough_at = 0.25;
  spec.noise = 0.0;
  spec.length = 41;
  const auto s = generate_scenario(spec);
  EXPECT_NEAR(static_cast<double>(s.trough_index()) / 40.0, 0.25, 0.05);
}

TEST(Generator, VShapeRecoversAboveNominal) {
  ScenarioSpec spec;
  spec.shape = RecessionShape::kV;
  spec.recovery_gain = 0.05;
  spec.noise = 0.0;
  const auto s = generate_scenario(spec);
  EXPECT_NEAR(s.values().back(), 1.05, 0.01);
}

TEST(Generator, LShapeStaysDepressed) {
  ScenarioSpec spec;
  spec.shape = RecessionShape::kL;
  spec.depth = 0.15;
  spec.noise = 0.0;
  const auto s = generate_scenario(spec);
  EXPECT_LT(s.values().back(), 1.0);          // never fully recovers
  EXPECT_LE(s.trough_index(), s.size() / 8);  // crash is early
}

TEST(Generator, WShapeHasSecondDip) {
  ScenarioSpec spec;
  spec.shape = RecessionShape::kW;
  spec.depth = 0.02;
  spec.second_dip_depth = 0.03;
  spec.second_dip_at = 0.6;
  spec.noise = 0.0;
  spec.length = 101;
  const auto s = generate_scenario(spec);
  // Global trough should be the second, deeper dip.
  EXPECT_GT(static_cast<double>(s.trough_index()) / 100.0, 0.4);
  EXPECT_NEAR(s.trough_value(), 0.97, 0.005);
}

TEST(Generator, JShapeRecoveryAccelerates) {
  ScenarioSpec spec;
  spec.shape = RecessionShape::kJ;
  spec.noise = 0.0;
  spec.length = 101;
  const auto s = generate_scenario(spec);
  const std::size_t td = s.trough_index();
  const std::size_t mid = td + (100 - td) / 2;
  const double first_half = s.value(mid) - s.value(td);
  const double second_half = s.value(100) - s.value(mid);
  EXPECT_GT(second_half, first_half);
}

TEST(Generator, InvalidSpecsThrow) {
  ScenarioSpec spec;
  spec.length = 2;
  EXPECT_THROW(generate_scenario(spec), std::invalid_argument);
  spec = {};
  spec.trough_at = 0.0;
  EXPECT_THROW(generate_scenario(spec), std::invalid_argument);
  spec = {};
  spec.depth = 1.5;
  EXPECT_THROW(generate_scenario(spec), std::invalid_argument);
  spec = {};
  spec.shape = RecessionShape::kW;
  spec.second_dip_at = spec.trough_at / 2.0;  // before the first dip
  EXPECT_THROW(generate_scenario(spec), std::invalid_argument);
}

TEST(Generator, NoiseMagnitudeIsBounded) {
  ScenarioSpec quiet;
  quiet.noise = 0.0;
  ScenarioSpec noisy = quiet;
  noisy.noise = 0.001;
  const auto sq = generate_scenario(quiet);
  const auto sn = generate_scenario(noisy);
  for (std::size_t i = 0; i < sq.size(); ++i) {
    EXPECT_NEAR(sn.value(i), sq.value(i), 0.01);  // ~10 sigma
  }
}

}  // namespace
}  // namespace prm::data
