#include "numerics/special_functions.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace prm::num {
namespace {

TEST(ErfInv, RoundTripsThroughErf) {
  for (double x : {-0.999, -0.9, -0.5, -0.1, 0.0, 0.1, 0.5, 0.9, 0.999}) {
    EXPECT_NEAR(std::erf(erf_inv(x)), x, 1e-13) << "x = " << x;
  }
}

TEST(ErfInv, KnownValues) {
  // erf(1) = 0.8427007929497149.
  EXPECT_NEAR(erf_inv(0.8427007929497149), 1.0, 1e-10);
  EXPECT_DOUBLE_EQ(erf_inv(0.0), 0.0);
  // Odd symmetry.
  EXPECT_NEAR(erf_inv(-0.3), -erf_inv(0.3), 1e-15);
}

TEST(ErfInv, BoundaryAndDomain) {
  EXPECT_TRUE(std::isinf(erf_inv(1.0)));
  EXPECT_TRUE(std::isinf(erf_inv(-1.0)));
  EXPECT_LT(erf_inv(-1.0), 0.0);
  EXPECT_THROW(erf_inv(1.5), std::domain_error);
  EXPECT_THROW(erf_inv(-1.5), std::domain_error);
}

TEST(ErfcInv, ConsistentWithErfInv) {
  for (double x : {0.01, 0.3, 1.0, 1.7, 1.99}) {
    EXPECT_NEAR(erfc_inv(x), erf_inv(1.0 - x), 1e-12);
  }
  EXPECT_THROW(erfc_inv(-0.1), std::domain_error);
}

TEST(NormalCdf, StandardValues) {
  EXPECT_NEAR(normal_cdf(0.0), 0.5, 1e-15);
  EXPECT_NEAR(normal_cdf(1.0), 0.8413447460685429, 1e-12);
  EXPECT_NEAR(normal_cdf(-1.96), 0.024997895148220435, 1e-12);
}

TEST(NormalQuantile, InvertsCdf) {
  for (double p : {0.001, 0.025, 0.1, 0.5, 0.9, 0.975, 0.999}) {
    EXPECT_NEAR(normal_cdf(normal_quantile(p)), p, 1e-12) << "p = " << p;
  }
}

TEST(NormalQuantile, CriticalValue95) {
  EXPECT_NEAR(normal_quantile(0.975), 1.959963984540054, 1e-9);
}

TEST(NormalQuantile, Domain) {
  EXPECT_TRUE(std::isinf(normal_quantile(0.0)));
  EXPECT_TRUE(std::isinf(normal_quantile(1.0)));
  EXPECT_THROW(normal_quantile(-0.1), std::domain_error);
  EXPECT_THROW(normal_quantile(1.1), std::domain_error);
}

TEST(GammaP, IntegerShapeMatchesPoissonSum) {
  // P(k, x) = 1 - sum_{j<k} x^j e^-x / j! for integer k.
  const double x = 2.5;
  const int k = 3;
  double poisson_tail = 0.0;
  double term = std::exp(-x);
  for (int j = 0; j < k; ++j) {
    poisson_tail += term;
    term *= x / (j + 1);
  }
  EXPECT_NEAR(gamma_p(k, x), 1.0 - poisson_tail, 1e-12);
}

TEST(GammaP, HalfShapeMatchesErf) {
  // P(1/2, x) = erf(sqrt(x)).
  for (double x : {0.1, 0.5, 1.0, 4.0}) {
    EXPECT_NEAR(gamma_p(0.5, x), std::erf(std::sqrt(x)), 1e-12);
  }
}

TEST(GammaP, ComplementarityAndLimits) {
  for (double a : {0.3, 1.0, 2.7, 10.0}) {
    for (double x : {0.01, 0.5, 3.0, 20.0}) {
      EXPECT_NEAR(gamma_p(a, x) + gamma_q(a, x), 1.0, 1e-12);
    }
  }
  EXPECT_DOUBLE_EQ(gamma_p(2.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(gamma_q(2.0, 0.0), 1.0);
  EXPECT_NEAR(gamma_p(2.0, 1e3), 1.0, 1e-12);
}

TEST(GammaP, Domain) {
  EXPECT_THROW(gamma_p(0.0, 1.0), std::domain_error);
  EXPECT_THROW(gamma_p(1.0, -1.0), std::domain_error);
}

TEST(GammaPInv, RoundTrip) {
  for (double a : {0.5, 1.0, 2.0, 7.5}) {
    for (double p : {0.01, 0.25, 0.5, 0.9, 0.999}) {
      const double x = gamma_p_inv(a, p);
      EXPECT_NEAR(gamma_p(a, x), p, 1e-9) << "a=" << a << " p=" << p;
    }
  }
  EXPECT_DOUBLE_EQ(gamma_p_inv(2.0, 0.0), 0.0);
  EXPECT_THROW(gamma_p_inv(2.0, 1.0), std::domain_error);
}

TEST(LogBeta, MatchesGammaIdentity) {
  EXPECT_NEAR(log_beta(2.0, 3.0), std::log(1.0 / 12.0), 1e-12);  // B(2,3)=1/12
  EXPECT_NEAR(log_beta(0.5, 0.5), std::log(M_PI), 1e-12);        // B(.5,.5)=pi
  EXPECT_THROW(log_beta(0.0, 1.0), std::domain_error);
}

TEST(BetaInc, KnownValuesAndSymmetry) {
  // I_x(1, 1) = x.
  for (double x : {0.1, 0.5, 0.9}) EXPECT_NEAR(beta_inc(1.0, 1.0, x), x, 1e-12);
  // Symmetry I_x(a,b) = 1 - I_{1-x}(b,a).
  EXPECT_NEAR(beta_inc(2.0, 5.0, 0.3), 1.0 - beta_inc(5.0, 2.0, 0.7), 1e-12);
  EXPECT_DOUBLE_EQ(beta_inc(2.0, 3.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(beta_inc(2.0, 3.0, 1.0), 1.0);
  EXPECT_THROW(beta_inc(2.0, 3.0, 1.5), std::domain_error);
}

}  // namespace
}  // namespace prm::num
