#include "stats/goodness_of_fit.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace prm::stats {
namespace {

const std::vector<double> kObs{1.0, 2.0, 3.0, 4.0, 5.0};
const std::vector<double> kPred{1.1, 1.9, 3.2, 3.8, 5.0};

TEST(Sse, HandComputedValue) {
  // 0.01 + 0.01 + 0.04 + 0.04 + 0 = 0.10.
  EXPECT_NEAR(sse(kObs, kPred), 0.10, 1e-12);
  EXPECT_DOUBLE_EQ(sse(kObs, kObs), 0.0);
}

TEST(Sse, Errors) {
  EXPECT_THROW(sse(kObs, std::vector<double>{1.0}), std::invalid_argument);
  EXPECT_THROW(sse(std::vector<double>{}, std::vector<double>{}), std::invalid_argument);
}

TEST(MseAndPmse, AreScaledSse) {
  EXPECT_NEAR(mse(kObs, kPred), 0.02, 1e-12);
  EXPECT_NEAR(pmse(kObs, kPred), 0.02, 1e-12);  // same formula, holdout window
}

TEST(RSquared, PerfectFitIsOne) {
  EXPECT_DOUBLE_EQ(r_squared(kObs, kObs), 1.0);
}

TEST(RSquared, HandComputedValue) {
  // SSY = 10, SSE = 0.1 -> R2 = 0.99.
  EXPECT_NEAR(r_squared(kObs, kPred), 0.99, 1e-12);
}

TEST(RSquared, WorseThanMeanGoesNegative) {
  const std::vector<double> bad{5.0, 4.0, 3.0, 2.0, 1.0};  // anti-correlated
  EXPECT_LT(r_squared(kObs, bad), 0.0);
}

TEST(RSquared, ZeroVarianceThrows) {
  const std::vector<double> flat{2.0, 2.0, 2.0};
  EXPECT_THROW(r_squared(flat, flat), std::domain_error);
}

TEST(AdjustedRSquared, PenalizesParameters) {
  // r2_adj = 1 - (1 - 0.99) * (5-1)/(5-3) = 0.98 for 3 parameters.
  EXPECT_NEAR(adjusted_r_squared(kObs, kPred, 3), 0.98, 1e-12);
  // More parameters -> lower adjusted value.
  EXPECT_GT(adjusted_r_squared(kObs, kPred, 1), adjusted_r_squared(kObs, kPred, 3));
}

TEST(AdjustedRSquared, RequiresDegreesOfFreedom) {
  EXPECT_THROW(adjusted_r_squared(kObs, kPred, 5), std::invalid_argument);
  EXPECT_THROW(adjusted_r_squared(kObs, kPred, 6), std::invalid_argument);
}

TEST(AdjustedRSquared, CanBeNegativeOnBadFit) {
  const std::vector<double> bad{5.0, 1.0, 5.0, 1.0, 5.0};
  EXPECT_LT(adjusted_r_squared(kObs, bad, 3), 0.0);
}

TEST(Aic, PrefersBetterFitAtEqualComplexity) {
  EXPECT_LT(aic(kObs, kPred, 2), aic(kObs, std::vector<double>{2.0, 2.0, 2.0, 2.0, 2.0}, 2));
}

TEST(Aic, PenalizesComplexityAtEqualFit) {
  EXPECT_LT(aic(kObs, kPred, 2), aic(kObs, kPred, 4));
  // AIC = n ln(SSE/n) + 2k exactly.
  const double expected = 5.0 * std::log(0.10 / 5.0) + 4.0;
  EXPECT_NEAR(aic(kObs, kPred, 2), expected, 1e-12);
}

TEST(Bic, StrongerComplexityPenaltyThanAicForLargeN) {
  std::vector<double> obs(50), pred(50);
  for (int i = 0; i < 50; ++i) {
    obs[i] = i;
    pred[i] = i + 0.1;
  }
  const double aic_gap = aic(obs, pred, 5) - aic(obs, pred, 1);
  const double bic_gap = bic(obs, pred, 5) - bic(obs, pred, 1);
  EXPECT_GT(bic_gap, aic_gap);  // ln(50) > 2
}

TEST(Aic, PerfectFitDoesNotBlowUp) {
  EXPECT_TRUE(std::isfinite(aic(kObs, kObs, 2)));
  EXPECT_TRUE(std::isfinite(bic(kObs, kObs, 2)));
}

TEST(Mape, HandComputedValue) {
  // |0.1/1| + |0.1/2| + |0.2/3| + |0.2/4| + 0 = 0.266667; /5 *100 = 5.3333.
  EXPECT_NEAR(mape(kObs, kPred), 100.0 * (0.1 + 0.05 + 0.2 / 3.0 + 0.05 + 0.0) / 5.0, 1e-9);
}

TEST(TheilU, OneWhenModelEqualsPersistence) {
  // Model predicting exactly the last observed value = the naive forecast.
  const std::vector<double> obs{1.1, 1.2, 1.3};
  const std::vector<double> pred{1.0, 1.0, 1.0};
  EXPECT_DOUBLE_EQ(theil_u(obs, pred, 1.0), 1.0);
}

TEST(TheilU, BelowOneWhenModelBeatsPersistence) {
  const std::vector<double> obs{1.1, 1.2, 1.3};
  const std::vector<double> good{1.09, 1.21, 1.31};
  EXPECT_LT(theil_u(obs, good, 1.0), 0.2);
}

TEST(TheilU, AboveOneWhenModelLosesToPersistence) {
  const std::vector<double> obs{1.01, 1.02, 1.01};
  const std::vector<double> bad{1.5, 1.5, 1.5};
  EXPECT_GT(theil_u(obs, bad, 1.0), 1.0);
}

TEST(TheilU, DegenerateFlatObservations) {
  const std::vector<double> obs{1.0, 1.0};
  EXPECT_DOUBLE_EQ(theil_u(obs, obs, 1.0), 1.0);  // both forecasts exact
  const std::vector<double> off{1.1, 1.1};
  EXPECT_TRUE(std::isinf(theil_u(obs, off, 1.0)));
}

TEST(TheilU, SizeMismatchThrows) {
  EXPECT_THROW(theil_u(std::vector<double>{1.0}, std::vector<double>{1.0, 2.0}, 1.0),
               std::invalid_argument);
}

TEST(Mape, SkipsZeroObservations) {
  const std::vector<double> obs{0.0, 2.0};
  const std::vector<double> pred{5.0, 2.2};
  EXPECT_NEAR(mape(obs, pred), 10.0, 1e-12);
  EXPECT_TRUE(std::isnan(mape(std::vector<double>{0.0}, std::vector<double>{1.0})));
}

}  // namespace
}  // namespace prm::stats
