// serve::Json: parser grammar coverage (strings/escapes/unicode, numbers,
// nesting, errors with offsets), serializer round trips (bit-exact doubles,
// deterministic key order), and the typed field helpers the handlers use.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>

#include "serve/json.hpp"

namespace {

using prm::serve::Json;
using prm::serve::JsonArray;
using prm::serve::JsonObject;

TEST(Json, ParsesScalars) {
  EXPECT_TRUE(Json::parse("null").is_null());
  EXPECT_EQ(Json::parse("true").as_bool(), true);
  EXPECT_EQ(Json::parse("false").as_bool(), false);
  EXPECT_DOUBLE_EQ(Json::parse("42").as_number(), 42.0);
  EXPECT_DOUBLE_EQ(Json::parse("-0.75").as_number(), -0.75);
  EXPECT_DOUBLE_EQ(Json::parse("6.02e23").as_number(), 6.02e23);
  EXPECT_DOUBLE_EQ(Json::parse("1E-3").as_number(), 1e-3);
  EXPECT_EQ(Json::parse("\"hi\"").as_string(), "hi");
  EXPECT_EQ(Json::parse("  [1, 2]  ").as_array().size(), 2u);
}

TEST(Json, ParsesNestedStructures) {
  const Json doc = Json::parse(
      R"({"series":{"values":[1,0.9,0.8],"times":[0,1,2]},"model":"quadratic","opts":{"holdout":2,"robust":false}})");
  ASSERT_TRUE(doc.is_object());
  const Json* series = doc.find("series");
  ASSERT_NE(series, nullptr);
  EXPECT_EQ(series->find("values")->as_array().size(), 3u);
  EXPECT_DOUBLE_EQ(series->find("values")->as_array()[1].as_number(), 0.9);
  EXPECT_EQ(doc.find("model")->as_string(), "quadratic");
  EXPECT_EQ(doc.find("opts")->find("robust")->as_bool(), false);
  EXPECT_EQ(doc.find("nope"), nullptr);
}

TEST(Json, ParsesStringEscapes) {
  EXPECT_EQ(Json::parse(R"("a\"b\\c\/d\n\t")").as_string(), "a\"b\\c/d\n\t");
  EXPECT_EQ(Json::parse(R"("Aé")").as_string(), "A\xc3\xa9");
  // Surrogate pair: U+1F600 -> 4-byte UTF-8.
  EXPECT_EQ(Json::parse(R"("😀")").as_string(), "\xf0\x9f\x98\x80");
  // Escaped control characters round-trip through dump().
  const Json v = Json(std::string("line1\nline2\x01"));
  EXPECT_EQ(Json::parse(v.dump()), v);
}

TEST(Json, RejectsMalformedDocuments) {
  const char* bad[] = {
      "",          "{",          "[1,",        "tru",       "nul",
      "\"open",    "{\"a\":}",   "{\"a\" 1}",  "[1 2]",     "01x",
      "1.2.3",     "--1",        "1e",         "{}extra",   R"("\q")",
      R"("\ud83d")",  // unpaired high surrogate
      R"("raw
newline")",
  };
  for (const char* text : bad) {
    EXPECT_THROW(Json::parse(text), std::runtime_error) << text;
  }
}

TEST(Json, RejectsPathologicalNesting) {
  std::string deep;
  for (int i = 0; i < 200; ++i) deep += '[';
  for (int i = 0; i < 200; ++i) deep += ']';
  EXPECT_THROW(Json::parse(deep), std::runtime_error);
}

TEST(Json, ErrorsNameTheByteOffset) {
  try {
    Json::parse("[1, 2, oops]");
    FAIL() << "expected parse failure";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("offset 7"), std::string::npos) << e.what();
  }
}

TEST(Json, DumpRoundTripsDoublesExactly) {
  const double values[] = {0.1,
                           1.0 / 3.0,
                           6.02214076e23,
                           -2.2250738585072014e-308,
                           123456789.123456789,
                           0.0,
                           -1.5e-300};
  for (const double v : values) {
    const Json parsed = Json::parse(Json(v).dump());
    EXPECT_EQ(parsed.as_number(), v) << Json(v).dump();  // bit-exact, no tolerance
  }
}

TEST(Json, DumpIsCompactAndDeterministic) {
  Json obj = Json::object();
  obj["zeta"] = Json(1);
  obj["alpha"] = Json(JsonArray{Json(true), Json(nullptr)});
  obj["mid"] = Json("x");
  EXPECT_EQ(obj.dump(), R"({"alpha":[true,null],"mid":"x","zeta":1})");
  EXPECT_EQ(Json(12.0).dump(), "12");  // integral doubles have no trailing ".0"
}

TEST(Json, NonFiniteNumbersSerializeAsNull) {
  EXPECT_EQ(Json(std::numeric_limits<double>::quiet_NaN()).dump(), "null");
  EXPECT_EQ(Json(std::numeric_limits<double>::infinity()).dump(), "null");
}

TEST(Json, TypeMismatchesThrow) {
  const Json num = Json(3.0);
  EXPECT_THROW(num.as_string(), std::runtime_error);
  EXPECT_THROW(num.as_array(), std::runtime_error);
  EXPECT_THROW(Json("x").as_number(), std::runtime_error);
  EXPECT_EQ(num.find("k"), nullptr);  // find() on a non-object is a soft miss
}

TEST(Json, BuilderInterfaceConvertsNullInPlace) {
  Json doc;  // starts null
  doc["list"].push_back(Json(1));
  doc["list"].push_back(Json(2));
  doc["name"] = Json("series");
  EXPECT_EQ(doc.dump(), R"({"list":[1,2],"name":"series"})");
  EXPECT_THROW(doc["name"].push_back(Json(3)), std::runtime_error);
}

TEST(JsonHelpers, TypedFieldAccess) {
  const Json doc = Json::parse(R"({"n":3,"s":"abc","xs":[1,2,3],"null":null})");
  EXPECT_DOUBLE_EQ(prm::serve::json_number(doc, "n"), 3.0);
  EXPECT_THROW(prm::serve::json_number(doc, "missing"), std::runtime_error);
  EXPECT_THROW(prm::serve::json_number(doc, "s"), std::runtime_error);
  EXPECT_DOUBLE_EQ(prm::serve::json_number_or(doc, "n", 7.0), 3.0);
  EXPECT_DOUBLE_EQ(prm::serve::json_number_or(doc, "missing", 7.0), 7.0);
  EXPECT_DOUBLE_EQ(prm::serve::json_number_or(doc, "null", 7.0), 7.0);
  EXPECT_EQ(prm::serve::json_string_or(doc, "s", "d"), "abc");
  EXPECT_EQ(prm::serve::json_string_or(doc, "missing", "d"), "d");
  EXPECT_EQ(prm::serve::json_number_array(doc, "xs").size(), 3u);
  EXPECT_THROW(prm::serve::json_number_array(doc, "s"), std::runtime_error);
  EXPECT_THROW(prm::serve::json_number_array(Json::parse(R"({"xs":[1,"x"]})"), "xs"),
               std::runtime_error);
}

}  // namespace
