#include "optimize/multistart.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

namespace prm::opt {
namespace {

TEST(LatinHypercube, PointsInsideBox) {
  const auto pts = latin_hypercube({-1.0, 0.0}, {1.0, 10.0}, 16, 7);
  ASSERT_EQ(pts.size(), 16u);
  for (const auto& p : pts) {
    EXPECT_GE(p[0], -1.0);
    EXPECT_LE(p[0], 1.0);
    EXPECT_GE(p[1], 0.0);
    EXPECT_LE(p[1], 10.0);
  }
}

TEST(LatinHypercube, StratifiedPerDimension) {
  // Exactly one sample per stratum in each dimension.
  const int n = 10;
  const auto pts = latin_hypercube({0.0}, {1.0}, n, 3);
  std::vector<int> counts(n, 0);
  for (const auto& p : pts) {
    const int cell = std::min(n - 1, static_cast<int>(p[0] * n));
    ++counts[cell];
  }
  for (int c : counts) EXPECT_EQ(c, 1);
}

TEST(LatinHypercube, DeterministicForSameSeed) {
  const auto a = latin_hypercube({0.0, 0.0}, {1.0, 1.0}, 8, 99);
  const auto b = latin_hypercube({0.0, 0.0}, {1.0, 1.0}, 8, 99);
  EXPECT_EQ(a, b);
  const auto c = latin_hypercube({0.0, 0.0}, {1.0, 1.0}, 8, 100);
  EXPECT_NE(a, c);
}

TEST(LatinHypercube, RejectsBadBox) {
  EXPECT_THROW(latin_hypercube({1.0}, {0.0}, 4, 1), std::invalid_argument);
  EXPECT_THROW(latin_hypercube({0.0, 0.0}, {1.0}, 4, 1), std::invalid_argument);
  EXPECT_TRUE(latin_hypercube({0.0}, {1.0}, 0, 1).empty());
}

// Two-basin least squares: r = min distance to one of two centers, with the
// global basin narrow so single-start LM from the origin lands in the wrong
// one.
ResidualProblem two_basin_problem() {
  ResidualProblem p;
  p.num_parameters = 1;
  p.num_residuals = 1;
  p.residuals = [](const num::Vector& x) {
    // f(x) = 1 - 0.5 exp(-(x-1)^2) - exp(-20 (x-6)^2); residual sqrt(f).
    const double f = 1.0 - 0.5 * std::exp(-(x[0] - 1.0) * (x[0] - 1.0)) -
                     0.999 * std::exp(-20.0 * (x[0] - 6.0) * (x[0] - 6.0));
    return num::Vector{std::sqrt(std::max(f, 0.0))};
  };
  return p;
}

TEST(Multistart, EscapesLocalBasin) {
  MultistartOptions opts;
  opts.sampled_starts = 24;
  opts.jitter_per_start = 0;
  const MultistartResult r =
      multistart_least_squares(two_basin_problem(), {{1.0}}, {0.0}, {8.0}, opts);
  EXPECT_NEAR(r.best.parameters[0], 6.0, 0.05);
  EXPECT_GE(r.starts_tried, 25);
}

TEST(Multistart, SingleStartFindsOnlyLocal) {
  MultistartOptions opts;
  opts.sampled_starts = 0;
  opts.jitter_per_start = 0;
  opts.polish_with_nelder_mead = false;
  const MultistartResult r =
      multistart_least_squares(two_basin_problem(), {{1.0}}, {}, {}, opts);
  EXPECT_NEAR(r.best.parameters[0], 1.0, 0.1);  // trapped, by construction
}

TEST(Multistart, DeterministicForSameSeed) {
  MultistartOptions opts;
  opts.sampled_starts = 8;
  const auto r1 = multistart_least_squares(two_basin_problem(), {{1.0}}, {0.0}, {8.0}, opts);
  const auto r2 = multistart_least_squares(two_basin_problem(), {{1.0}}, {0.0}, {8.0}, opts);
  EXPECT_EQ(r1.best.parameters, r2.best.parameters);
  EXPECT_DOUBLE_EQ(r1.best.cost, r2.best.cost);
}

TEST(Multistart, CountsFailedStarts) {
  ResidualProblem p;
  p.num_parameters = 1;
  p.num_residuals = 1;
  p.residuals = [](const num::Vector& x) {
    // NaN for x < 0 -- starts there fail outright.
    if (x[0] < 0.0) return num::Vector{std::numeric_limits<double>::quiet_NaN()};
    return num::Vector{x[0] - 2.0};
  };
  MultistartOptions opts;
  opts.sampled_starts = 0;
  opts.jitter_per_start = 0;
  opts.polish_with_nelder_mead = false;
  const MultistartResult r =
      multistart_least_squares(p, {{-5.0}, {1.0}}, {}, {}, opts);
  EXPECT_EQ(r.starts_failed, 1);
  EXPECT_NEAR(r.best.parameters[0], 2.0, 1e-8);
}

TEST(Multistart, ThrowsWithoutAnyStarts) {
  MultistartOptions opts;
  opts.sampled_starts = 0;
  EXPECT_THROW(multistart_least_squares(two_basin_problem(), {}, {}, {}, opts),
               std::invalid_argument);
}

TEST(Multistart, SampledStartsRequireBox) {
  MultistartOptions opts;
  opts.sampled_starts = 4;
  EXPECT_THROW(multistart_least_squares(two_basin_problem(), {{1.0}}, {}, {}, opts),
               std::invalid_argument);
}

TEST(Multistart, WarmStartReplacesTheRegularStartSet) {
  // The regular start {1.0} would trap in the local basin; a warm seed near
  // the global optimum must win because the warm path ignores it entirely.
  MultistartOptions opts;
  opts.sampled_starts = 24;  // ignored on the warm path
  opts.warm_start = {5.9};
  opts.warm_jitter = 0;
  opts.warm_sampled_starts = 0;
  const MultistartResult r =
      multistart_least_squares(two_basin_problem(), {{1.0}}, {0.0}, {8.0}, opts);
  EXPECT_NEAR(r.best.parameters[0], 6.0, 0.05);
  EXPECT_EQ(r.starts_tried, 1);  // exactly the seed: no multistart cost
}

TEST(Multistart, WarmStartJitterAndSafetyStartsAreCounted) {
  MultistartOptions opts;
  opts.warm_start = {5.9};
  opts.warm_jitter = 3;
  opts.warm_sampled_starts = 4;
  const MultistartResult r =
      multistart_least_squares(two_basin_problem(), {{1.0}}, {0.0}, {8.0}, opts);
  EXPECT_EQ(r.starts_tried, 1 + 3 + 4);
  EXPECT_NEAR(r.best.parameters[0], 6.0, 0.05);
}

TEST(Multistart, WarmStartDimensionMismatchThrows) {
  MultistartOptions opts;
  opts.warm_start = {1.0, 2.0};  // problem has one parameter
  EXPECT_THROW(multistart_least_squares(two_basin_problem(), {{1.0}}, {}, {}, opts),
               std::invalid_argument);
}

TEST(Multistart, ColdPathUnchangedByWarmKnobs) {
  // With warm_start empty, warm_jitter/warm_sampled_starts are inert and the
  // RNG stream matches a default-configured run exactly.
  MultistartOptions cold;
  cold.sampled_starts = 8;
  MultistartOptions with_knobs = cold;
  with_knobs.warm_jitter = 7;
  with_knobs.warm_sampled_starts = 5;
  const auto r1 = multistart_least_squares(two_basin_problem(), {{1.0}}, {0.0}, {8.0}, cold);
  const auto r2 =
      multistart_least_squares(two_basin_problem(), {{1.0}}, {0.0}, {8.0}, with_knobs);
  EXPECT_EQ(r1.best.parameters, r2.best.parameters);
  EXPECT_DOUBLE_EQ(r1.best.cost, r2.best.cost);
  EXPECT_EQ(r1.starts_tried, r2.starts_tried);
}

TEST(Multistart, NelderMeadPolishNeverWorsens) {
  MultistartOptions with_polish;
  with_polish.sampled_starts = 4;
  with_polish.polish_with_nelder_mead = true;
  MultistartOptions without_polish = with_polish;
  without_polish.polish_with_nelder_mead = false;
  const auto a =
      multistart_least_squares(two_basin_problem(), {{1.0}}, {0.0}, {8.0}, with_polish);
  const auto b =
      multistart_least_squares(two_basin_problem(), {{1.0}}, {0.0}, {8.0}, without_polish);
  EXPECT_LE(a.best.cost, b.best.cost + 1e-12);
}

TEST(LatinHypercube, SinglePointLandsInsideTheBox) {
  // count = 1 means one stratum spanning the whole box: still in bounds,
  // still deterministic.
  const auto pts = latin_hypercube({-2.0, 5.0}, {2.0, 6.0}, 1, 11);
  ASSERT_EQ(pts.size(), 1u);
  EXPECT_GE(pts[0][0], -2.0);
  EXPECT_LE(pts[0][0], 2.0);
  EXPECT_GE(pts[0][1], 5.0);
  EXPECT_LE(pts[0][1], 6.0);
  EXPECT_EQ(pts, latin_hypercube({-2.0, 5.0}, {2.0, 6.0}, 1, 11));
}

TEST(LatinHypercube, DegenerateBoxCollapsesToThePoint) {
  // lo == hi in one dimension: every sample must sit exactly on it while the
  // other dimension stays stratified.
  const int n = 8;
  const auto pts = latin_hypercube({0.5, 0.0}, {0.5, 1.0}, n, 21);
  ASSERT_EQ(pts.size(), static_cast<std::size_t>(n));
  std::vector<int> counts(n, 0);
  for (const auto& p : pts) {
    EXPECT_EQ(p[0], 0.5);
    ++counts[std::min(n - 1, static_cast<int>(p[1] * n))];
  }
  for (int c : counts) EXPECT_EQ(c, 1);
}

TEST(LatinHypercube, HighDimensionalStratificationHolds) {
  // One sample per stratum must hold in EVERY dimension simultaneously.
  const int n = 16;
  const std::size_t dims = 12;
  const auto pts =
      latin_hypercube(num::Vector(dims, 0.0), num::Vector(dims, 1.0), n, 77);
  ASSERT_EQ(pts.size(), static_cast<std::size_t>(n));
  for (std::size_t d = 0; d < dims; ++d) {
    std::vector<int> counts(n, 0);
    for (const auto& p : pts) {
      ++counts[std::min(n - 1, static_cast<int>(p[d] * n))];
    }
    for (int c : counts) EXPECT_EQ(c, 1) << "dimension " << d;
  }
}

TEST(MultistartStartPoints, JitterDependsOnlyOnIndexAndOptions) {
  // The per-index seeding contract: a jittered start's coordinates are a
  // function of (options.seed ^ its position) only. Identical configs agree.
  MultistartOptions options;
  options.jitter_per_start = 3;
  options.sampled_starts = 4;
  const std::vector<num::Vector> starts{{1.0, 2.0}, {-1.0, 0.5}};
  const num::Vector lo{-5.0, -5.0};
  const num::Vector hi{5.0, 5.0};
  const auto a = multistart_start_points(starts, lo, hi, options, 2);
  const auto b = multistart_start_points(starts, lo, hi, options, 2);
  EXPECT_EQ(a, b);
  // Layout: caller starts first, then their jittered copies, then LHS.
  ASSERT_EQ(a.size(), starts.size() + starts.size() * 3 + 4);
  EXPECT_EQ(a[0], starts[0]);
  EXPECT_EQ(a[1], starts[1]);
}

TEST(MultistartStartPoints, ChangingTheSampledCountLeavesEarlierPointsAlone) {
  // Appending LHS points must not disturb caller starts or jittered copies:
  // they draw from per-index streams, not one shared RNG that LHS would
  // advance. This is what makes the parallel reduction bit-stable.
  MultistartOptions small;
  small.jitter_per_start = 2;
  small.sampled_starts = 2;
  MultistartOptions large = small;
  large.sampled_starts = 9;

  const std::vector<num::Vector> starts{{0.3, -0.7}};
  const num::Vector lo{-2.0, -2.0};
  const num::Vector hi{2.0, 2.0};
  const auto a = multistart_start_points(starts, lo, hi, small, 2);
  const auto b = multistart_start_points(starts, lo, hi, large, 2);
  const std::size_t prefix = 1 + 2;  // caller start + its jittered copies
  ASSERT_GE(a.size(), prefix);
  ASSERT_GE(b.size(), prefix);
  for (std::size_t i = 0; i < prefix; ++i) EXPECT_EQ(a[i], b[i]) << "index " << i;
}

TEST(MultistartStartPoints, DistinctIndicesDrawDistinctJitter) {
  // Two jittered copies of the SAME seed point must differ: each index gets
  // its own stream, not a replay of the first.
  MultistartOptions options;
  options.jitter_per_start = 2;
  options.sampled_starts = 0;
  const std::vector<num::Vector> starts{{1.0, 1.0}};
  const auto pts = multistart_start_points(starts, {}, {}, options, 2);
  ASSERT_EQ(pts.size(), 3u);
  EXPECT_NE(pts[1], pts[2]);
  EXPECT_NE(pts[1], pts[0]);
}

TEST(Multistart, ParallelKnobDoesNotChangeTheWinner) {
  // Same rosenbrock-style problem as EscapesLocalBasin, run at several
  // thread counts: identical best parameters and cost, bit for bit.
  ResidualProblem problem;
  problem.num_parameters = 2;
  problem.num_residuals = 2;
  problem.residuals = [](const num::Vector& p) {
    return num::Vector{10.0 * (p[1] - p[0] * p[0]), 1.0 - p[0]};
  };
  MultistartOptions serial;
  serial.sampled_starts = 6;
  const auto baseline =
      multistart_least_squares(problem, {{-1.5, 2.0}}, {-3.0, -3.0}, {3.0, 3.0}, serial);
  for (const int threads : {2, 8}) {
    MultistartOptions opts;
    opts.sampled_starts = 6;
    opts.threads = threads;
    const auto got = multistart_least_squares(problem, {{-1.5, 2.0}}, {-3.0, -3.0},
                                              {3.0, 3.0}, opts);
    EXPECT_EQ(got.best.cost, baseline.best.cost) << "threads = " << threads;
    EXPECT_EQ(got.best.parameters, baseline.best.parameters);
    EXPECT_EQ(got.starts_tried, baseline.starts_tried);
    EXPECT_EQ(got.starts_failed, baseline.starts_failed);
  }
}

}  // namespace
}  // namespace prm::opt
