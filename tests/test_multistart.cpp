#include "optimize/multistart.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

namespace prm::opt {
namespace {

TEST(LatinHypercube, PointsInsideBox) {
  const auto pts = latin_hypercube({-1.0, 0.0}, {1.0, 10.0}, 16, 7);
  ASSERT_EQ(pts.size(), 16u);
  for (const auto& p : pts) {
    EXPECT_GE(p[0], -1.0);
    EXPECT_LE(p[0], 1.0);
    EXPECT_GE(p[1], 0.0);
    EXPECT_LE(p[1], 10.0);
  }
}

TEST(LatinHypercube, StratifiedPerDimension) {
  // Exactly one sample per stratum in each dimension.
  const int n = 10;
  const auto pts = latin_hypercube({0.0}, {1.0}, n, 3);
  std::vector<int> counts(n, 0);
  for (const auto& p : pts) {
    const int cell = std::min(n - 1, static_cast<int>(p[0] * n));
    ++counts[cell];
  }
  for (int c : counts) EXPECT_EQ(c, 1);
}

TEST(LatinHypercube, DeterministicForSameSeed) {
  const auto a = latin_hypercube({0.0, 0.0}, {1.0, 1.0}, 8, 99);
  const auto b = latin_hypercube({0.0, 0.0}, {1.0, 1.0}, 8, 99);
  EXPECT_EQ(a, b);
  const auto c = latin_hypercube({0.0, 0.0}, {1.0, 1.0}, 8, 100);
  EXPECT_NE(a, c);
}

TEST(LatinHypercube, RejectsBadBox) {
  EXPECT_THROW(latin_hypercube({1.0}, {0.0}, 4, 1), std::invalid_argument);
  EXPECT_THROW(latin_hypercube({0.0, 0.0}, {1.0}, 4, 1), std::invalid_argument);
  EXPECT_TRUE(latin_hypercube({0.0}, {1.0}, 0, 1).empty());
}

// Two-basin least squares: r = min distance to one of two centers, with the
// global basin narrow so single-start LM from the origin lands in the wrong
// one.
ResidualProblem two_basin_problem() {
  ResidualProblem p;
  p.num_parameters = 1;
  p.num_residuals = 1;
  p.residuals = [](const num::Vector& x) {
    // f(x) = 1 - 0.5 exp(-(x-1)^2) - exp(-20 (x-6)^2); residual sqrt(f).
    const double f = 1.0 - 0.5 * std::exp(-(x[0] - 1.0) * (x[0] - 1.0)) -
                     0.999 * std::exp(-20.0 * (x[0] - 6.0) * (x[0] - 6.0));
    return num::Vector{std::sqrt(std::max(f, 0.0))};
  };
  return p;
}

TEST(Multistart, EscapesLocalBasin) {
  MultistartOptions opts;
  opts.sampled_starts = 24;
  opts.jitter_per_start = 0;
  const MultistartResult r =
      multistart_least_squares(two_basin_problem(), {{1.0}}, {0.0}, {8.0}, opts);
  EXPECT_NEAR(r.best.parameters[0], 6.0, 0.05);
  EXPECT_GE(r.starts_tried, 25);
}

TEST(Multistart, SingleStartFindsOnlyLocal) {
  MultistartOptions opts;
  opts.sampled_starts = 0;
  opts.jitter_per_start = 0;
  opts.polish_with_nelder_mead = false;
  const MultistartResult r =
      multistart_least_squares(two_basin_problem(), {{1.0}}, {}, {}, opts);
  EXPECT_NEAR(r.best.parameters[0], 1.0, 0.1);  // trapped, by construction
}

TEST(Multistart, DeterministicForSameSeed) {
  MultistartOptions opts;
  opts.sampled_starts = 8;
  const auto r1 = multistart_least_squares(two_basin_problem(), {{1.0}}, {0.0}, {8.0}, opts);
  const auto r2 = multistart_least_squares(two_basin_problem(), {{1.0}}, {0.0}, {8.0}, opts);
  EXPECT_EQ(r1.best.parameters, r2.best.parameters);
  EXPECT_DOUBLE_EQ(r1.best.cost, r2.best.cost);
}

TEST(Multistart, CountsFailedStarts) {
  ResidualProblem p;
  p.num_parameters = 1;
  p.num_residuals = 1;
  p.residuals = [](const num::Vector& x) {
    // NaN for x < 0 -- starts there fail outright.
    if (x[0] < 0.0) return num::Vector{std::numeric_limits<double>::quiet_NaN()};
    return num::Vector{x[0] - 2.0};
  };
  MultistartOptions opts;
  opts.sampled_starts = 0;
  opts.jitter_per_start = 0;
  opts.polish_with_nelder_mead = false;
  const MultistartResult r =
      multistart_least_squares(p, {{-5.0}, {1.0}}, {}, {}, opts);
  EXPECT_EQ(r.starts_failed, 1);
  EXPECT_NEAR(r.best.parameters[0], 2.0, 1e-8);
}

TEST(Multistart, ThrowsWithoutAnyStarts) {
  MultistartOptions opts;
  opts.sampled_starts = 0;
  EXPECT_THROW(multistart_least_squares(two_basin_problem(), {}, {}, {}, opts),
               std::invalid_argument);
}

TEST(Multistart, SampledStartsRequireBox) {
  MultistartOptions opts;
  opts.sampled_starts = 4;
  EXPECT_THROW(multistart_least_squares(two_basin_problem(), {{1.0}}, {}, {}, opts),
               std::invalid_argument);
}

TEST(Multistart, WarmStartReplacesTheRegularStartSet) {
  // The regular start {1.0} would trap in the local basin; a warm seed near
  // the global optimum must win because the warm path ignores it entirely.
  MultistartOptions opts;
  opts.sampled_starts = 24;  // ignored on the warm path
  opts.warm_start = {5.9};
  opts.warm_jitter = 0;
  opts.warm_sampled_starts = 0;
  const MultistartResult r =
      multistart_least_squares(two_basin_problem(), {{1.0}}, {0.0}, {8.0}, opts);
  EXPECT_NEAR(r.best.parameters[0], 6.0, 0.05);
  EXPECT_EQ(r.starts_tried, 1);  // exactly the seed: no multistart cost
}

TEST(Multistart, WarmStartJitterAndSafetyStartsAreCounted) {
  MultistartOptions opts;
  opts.warm_start = {5.9};
  opts.warm_jitter = 3;
  opts.warm_sampled_starts = 4;
  const MultistartResult r =
      multistart_least_squares(two_basin_problem(), {{1.0}}, {0.0}, {8.0}, opts);
  EXPECT_EQ(r.starts_tried, 1 + 3 + 4);
  EXPECT_NEAR(r.best.parameters[0], 6.0, 0.05);
}

TEST(Multistart, WarmStartDimensionMismatchThrows) {
  MultistartOptions opts;
  opts.warm_start = {1.0, 2.0};  // problem has one parameter
  EXPECT_THROW(multistart_least_squares(two_basin_problem(), {{1.0}}, {}, {}, opts),
               std::invalid_argument);
}

TEST(Multistart, ColdPathUnchangedByWarmKnobs) {
  // With warm_start empty, warm_jitter/warm_sampled_starts are inert and the
  // RNG stream matches a default-configured run exactly.
  MultistartOptions cold;
  cold.sampled_starts = 8;
  MultistartOptions with_knobs = cold;
  with_knobs.warm_jitter = 7;
  with_knobs.warm_sampled_starts = 5;
  const auto r1 = multistart_least_squares(two_basin_problem(), {{1.0}}, {0.0}, {8.0}, cold);
  const auto r2 =
      multistart_least_squares(two_basin_problem(), {{1.0}}, {0.0}, {8.0}, with_knobs);
  EXPECT_EQ(r1.best.parameters, r2.best.parameters);
  EXPECT_DOUBLE_EQ(r1.best.cost, r2.best.cost);
  EXPECT_EQ(r1.starts_tried, r2.starts_tried);
}

TEST(Multistart, NelderMeadPolishNeverWorsens) {
  MultistartOptions with_polish;
  with_polish.sampled_starts = 4;
  with_polish.polish_with_nelder_mead = true;
  MultistartOptions without_polish = with_polish;
  without_polish.polish_with_nelder_mead = false;
  const auto a =
      multistart_least_squares(two_basin_problem(), {{1.0}}, {0.0}, {8.0}, with_polish);
  const auto b =
      multistart_least_squares(two_basin_problem(), {{1.0}}, {0.0}, {8.0}, without_polish);
  EXPECT_LE(a.best.cost, b.best.cost + 1e-12);
}

}  // namespace
}  // namespace prm::opt
