#include "core/analysis.hpp"

#include <gtest/gtest.h>

namespace prm::core {
namespace {

TEST(Analyze, ProducesCompleteResult) {
  const auto r = analyze("quadratic", data::recession("1990-93"));
  EXPECT_EQ(r.dataset, "1990-93");
  EXPECT_EQ(r.model_name, "quadratic");
  EXPECT_EQ(r.model_label, "Quadratic");
  EXPECT_TRUE(r.fit.success());
  EXPECT_EQ(r.validation.predictions.size(), 48u);
}

TEST(Analyze, UsesDatasetHoldout) {
  const auto r = analyze("quadratic", data::recession("2020-21"));
  EXPECT_EQ(r.fit.holdout(), 3u);
  EXPECT_EQ(r.fit.fit_count(), 21u);
}

TEST(AnalyzeGrid, RowMajorCrossProduct) {
  const std::vector<std::string> models{"quadratic", "competing-risks"};
  const std::vector<data::RecessionDataset> datasets{data::recession("1990-93"),
                                                     data::recession("2001-05")};
  const auto grid = analyze_grid(models, datasets);
  ASSERT_EQ(grid.size(), 4u);
  EXPECT_EQ(grid[0].dataset, "1990-93");
  EXPECT_EQ(grid[0].model_name, "quadratic");
  EXPECT_EQ(grid[1].model_name, "competing-risks");
  EXPECT_EQ(grid[2].dataset, "2001-05");
}

TEST(MetricTable, EightRows) {
  const auto r = analyze("competing-risks", data::recession("1990-93"));
  const auto table = metric_table(r);
  EXPECT_EQ(table.size(), 8u);
}

TEST(DisplayLabel, PaperStyleLabels) {
  EXPECT_EQ(display_label("quadratic"), "Quadratic");
  EXPECT_EQ(display_label("competing-risks"), "Competing Risks");
  EXPECT_EQ(display_label("mix-wei-exp-log"), "Wei-Exp");
  EXPECT_EQ(display_label("mix-exp-wei-log"), "Exp-Wei");
  EXPECT_EQ(display_label("unregistered-model"), "unregistered-model");
}

TEST(Analyze, UnknownModelThrows) {
  EXPECT_THROW(analyze("no-such-model", data::recession("1980")), std::out_of_range);
}

}  // namespace
}  // namespace prm::core
