// The vectored-write data path: WriteQueue iovec building and cursor
// resume, BufferPool recycling accounting, byte-identity of responses
// under forced short writes (socketpair), and pipelined-response
// coalescing through the real server on the portable poll backend.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "serve/buffer_pool.hpp"
#include "serve/http.hpp"
#include "serve/server.hpp"
#include "serve/write_queue.hpp"

namespace {

using namespace prm::serve;

OutChunk owned_chunk(std::string head, std::string body) {
  OutChunk chunk;
  chunk.head = std::move(head);
  chunk.body = std::move(body);
  return chunk;
}

OutChunk shared_chunk(std::string head, std::string body) {
  OutChunk chunk;
  chunk.head = std::move(head);
  chunk.body_ref = std::make_shared<const std::string>(std::move(body));
  return chunk;
}

std::string concat(const WriteQueue&, const std::vector<OutChunk>& chunks) {
  std::string all;
  for (const OutChunk& chunk : chunks) {
    all += chunk.head;
    all += chunk.body_bytes();
  }
  return all;
}

TEST(WriteQueue, BuildIovSkipsEmptyPartsAndHonorsMax) {
  WriteQueue queue;
  queue.push(owned_chunk("head0", ""));        // no body -> one span
  queue.push(owned_chunk("", "body1"));        // no head -> one span
  queue.push(shared_chunk("head2", "body2"));  // two spans

  iovec iov[8];
  ASSERT_EQ(queue.build_iov(iov, 8), 4u);
  EXPECT_EQ(std::string(static_cast<char*>(iov[0].iov_base), iov[0].iov_len), "head0");
  EXPECT_EQ(std::string(static_cast<char*>(iov[1].iov_base), iov[1].iov_len), "body1");
  EXPECT_EQ(std::string(static_cast<char*>(iov[2].iov_base), iov[2].iov_len), "head2");
  EXPECT_EQ(std::string(static_cast<char*>(iov[3].iov_base), iov[3].iov_len), "body2");

  // A smaller max truncates the gather list without disturbing the cursor.
  ASSERT_EQ(queue.build_iov(iov, 2), 2u);
  EXPECT_EQ(std::string(static_cast<char*>(iov[1].iov_base), iov[1].iov_len), "body1");
  EXPECT_EQ(queue.bytes_pending(), 5u + 5u + 5u + 5u);
}

TEST(WriteQueue, AdvanceResumesMidHeadAndMidBody) {
  WriteQueue queue;
  queue.push(owned_chunk("HEADER", "BODYBYTES"));
  int reclaimed = 0;
  const auto reclaim = [&](OutChunk&&) { ++reclaimed; };

  queue.advance(3, reclaim);  // cursor mid-head
  iovec iov[4];
  ASSERT_EQ(queue.build_iov(iov, 4), 2u);
  EXPECT_EQ(std::string(static_cast<char*>(iov[0].iov_base), iov[0].iov_len), "DER");

  queue.advance(3 + 4, reclaim);  // finish head, land mid-body
  ASSERT_EQ(queue.build_iov(iov, 4), 1u);
  EXPECT_EQ(std::string(static_cast<char*>(iov[0].iov_base), iov[0].iov_len), "BYTES");
  EXPECT_EQ(reclaimed, 0);

  queue.advance(5, reclaim);  // drain
  EXPECT_EQ(reclaimed, 1);
  EXPECT_TRUE(queue.empty());
  EXPECT_EQ(queue.bytes_pending(), 0u);
}

TEST(WriteQueue, ExactPartBoundariesNormalizeAndZeroChunksNeverLinger) {
  WriteQueue queue;
  queue.push(owned_chunk("AB", "CD"));
  queue.push(owned_chunk("", ""));  // zero-size chunk queued behind it
  queue.push(owned_chunk("EF", ""));
  int reclaimed = 0;
  const auto reclaim = [&](OutChunk&&) { ++reclaimed; };

  queue.advance(2, reclaim);  // exactly the head: cursor must sit on the body
  iovec iov[4];
  ASSERT_GE(queue.build_iov(iov, 4), 1u);
  EXPECT_EQ(std::string(static_cast<char*>(iov[0].iov_base), iov[0].iov_len), "CD");

  // Finishing the body must also sweep the zero-size chunk behind it.
  queue.advance(2, reclaim);
  EXPECT_EQ(reclaimed, 2);
  ASSERT_EQ(queue.build_iov(iov, 4), 1u);
  EXPECT_EQ(std::string(static_cast<char*>(iov[0].iov_base), iov[0].iov_len), "EF");
  queue.advance(2, reclaim);
  EXPECT_EQ(reclaimed, 3);
  EXPECT_TRUE(queue.empty());
}

TEST(WriteQueue, ClearReclaimsEveryChunkAndResetsCursor) {
  WriteQueue queue;
  queue.push(owned_chunk("abc", "def"));
  queue.push(shared_chunk("ghi", "jkl"));
  int reclaimed = 0;
  queue.advance(2, [](OutChunk&&) {});  // park the cursor mid-head first
  queue.clear([&](OutChunk&&) { ++reclaimed; });
  EXPECT_EQ(reclaimed, 2);
  EXPECT_TRUE(queue.empty());
  EXPECT_EQ(queue.bytes_pending(), 0u);
  queue.push(owned_chunk("xy", ""));
  iovec iov[2];
  ASSERT_EQ(queue.build_iov(iov, 2), 1u);
  EXPECT_EQ(std::string(static_cast<char*>(iov[0].iov_base), iov[0].iov_len), "xy");
}

TEST(BufferPool, RecyclesReleasedCapacityAndCountsMisses) {
  BufferPool pool;
  std::string first = pool.acquire(100);
  EXPECT_GE(first.capacity(), 100u);
  const std::size_t capacity = first.capacity();
  first = "scribbled";  // content must not leak into the next acquire
  pool.release(std::move(first));

  std::string second = pool.acquire(100);
  EXPECT_TRUE(second.empty());
  EXPECT_GE(second.capacity(), capacity);

  const BufferPoolStats stats = pool.stats();
  EXPECT_EQ(stats.acquired, 2u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.recycled, 1u);
  EXPECT_EQ(stats.released, 1u);
  EXPECT_EQ(stats.high_water, 1u);
  EXPECT_EQ(stats.in_use, 1u);  // `second` is still out
}

TEST(BufferPool, OversizedAndOverfullReleasesAreDroppedNotPooled) {
  BufferPool pool;
  std::string huge;
  huge.reserve(BufferPool::kClassBytes.back() + 1);
  pool.release(std::move(huge));
  EXPECT_EQ(pool.stats().dropped, 1u);
  EXPECT_EQ(pool.stats().pooled, 0u);

  for (std::size_t i = 0; i < BufferPool::kMaxPerClass + 5; ++i) {
    std::string buffer;
    buffer.reserve(64);
    pool.release(std::move(buffer));
  }
  const BufferPoolStats stats = pool.stats();
  EXPECT_EQ(stats.pooled, BufferPool::kMaxPerClass);
  EXPECT_EQ(stats.dropped, 6u);  // the oversized one + 5 past the class cap
}

/// Drive a WriteQueue across a socketpair with every sendmsg clamped to at
/// most 7 bytes: the cursor must resume at every offset class -- mid-head,
/// the head/body seam, mid-body -- and the receiver must see the exact
/// byte stream the chunks describe.
TEST(WriteQueue, SocketpairShortWritesMidHeadAndMidBodyAreByteIdentical) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  const int writer = fds[0];
  const int reader = fds[1];

  std::vector<OutChunk> chunks;
  chunks.push_back(owned_chunk("HTTP/1.1 200 OK\r\nContent-Length: 500\r\n\r\n",
                               std::string(500, 'a')));
  chunks.push_back(shared_chunk("HTTP/1.1 200 OK\r\nContent-Length: 300\r\n\r\n",
                                std::string(300, 'b')));
  chunks.push_back(owned_chunk("HTTP/1.1 204 No Content\r\n\r\n", ""));

  WriteQueue queue;
  const std::string expected = concat(queue, chunks);
  for (OutChunk& chunk : chunks) {
    OutChunk copy;
    copy.head = chunk.head;
    copy.body = chunk.body;
    copy.body_ref = chunk.body_ref;
    queue.push(std::move(copy));
  }

  int reclaimed = 0;
  std::string received;
  char buf[256];
  while (!queue.empty()) {
    iovec iov[4];
    const std::size_t count = queue.build_iov(iov, 4);
    ASSERT_GT(count, 0u);
    iov[0].iov_len = std::min<std::size_t>(iov[0].iov_len, 7);  // force a short write
    msghdr msg{};
    msg.msg_iov = iov;
    msg.msg_iovlen = 1;
    const ssize_t n = ::sendmsg(writer, &msg, MSG_NOSIGNAL | MSG_DONTWAIT);
    ASSERT_GT(n, 0) << std::strerror(errno);
    ASSERT_LE(n, 7);
    queue.advance(static_cast<std::size_t>(n), [&](OutChunk&&) { ++reclaimed; });
    // Drain as we go so the socket buffer never fills.
    for (;;) {
      const ssize_t r = ::recv(reader, buf, sizeof buf, MSG_DONTWAIT);
      if (r <= 0) break;
      received.append(buf, static_cast<std::size_t>(r));
    }
  }
  for (;;) {
    const ssize_t r = ::recv(reader, buf, sizeof buf, MSG_DONTWAIT);
    if (r <= 0) break;
    received.append(buf, static_cast<std::size_t>(r));
  }
  ::close(writer);
  ::close(reader);

  EXPECT_EQ(reclaimed, 3);
  EXPECT_EQ(received, expected);  // byte-identical despite ~120 short writes
}

/// Same byte-identity contract under real kernel-sized partial writes: a
/// shrunken send buffer and multi-span sendmsg calls, reading between
/// EAGAINs like the reactor's EPOLLOUT resume path does.
TEST(WriteQueue, SocketpairVectoredWritesSurviveKernelBackpressure) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  const int writer = fds[0];
  const int reader = fds[1];
  const int sndbuf = 4096;
  ::setsockopt(writer, SOL_SOCKET, SO_SNDBUF, &sndbuf, sizeof sndbuf);

  WriteQueue queue;
  std::string expected;
  for (int i = 0; i < 6; ++i) {
    const std::string head =
        "HTTP/1.1 200 OK\r\nContent-Length: 20000\r\n\r\n";
    const std::string body(20000, static_cast<char>('a' + i));
    expected += head + body;
    queue.push(i % 2 == 0 ? owned_chunk(head, body) : shared_chunk(head, body));
  }

  int reclaimed = 0;
  std::string received;
  char buf[2048];
  while (!queue.empty()) {
    iovec iov[8];
    const std::size_t count = queue.build_iov(iov, 8);
    ASSERT_GT(count, 0u);
    msghdr msg{};
    msg.msg_iov = iov;
    msg.msg_iovlen = count;
    const ssize_t n = ::sendmsg(writer, &msg, MSG_NOSIGNAL | MSG_DONTWAIT);
    if (n > 0) {
      queue.advance(static_cast<std::size_t>(n), [&](OutChunk&&) { ++reclaimed; });
      continue;
    }
    ASSERT_TRUE(errno == EAGAIN || errno == EWOULDBLOCK) << std::strerror(errno);
    const ssize_t r = ::recv(reader, buf, sizeof buf, 0);
    ASSERT_GT(r, 0);
    received.append(buf, static_cast<std::size_t>(r));
  }
  for (;;) {
    const ssize_t r = ::recv(reader, buf, sizeof buf, MSG_DONTWAIT);
    if (r <= 0) break;
    received.append(buf, static_cast<std::size_t>(r));
  }
  ::close(writer);
  ::close(reader);

  EXPECT_EQ(reclaimed, 6);
  EXPECT_EQ(received, expected);
}

/// Raw loopback client for the server-level tests below.
int connect_loopback(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  EXPECT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr), 0);
  return fd;
}

TEST(Server, LargeResponseSurvivesShortWritesByteForByte) {
  // An 8 MiB patterned body exceeds the largest send buffer the kernel will
  // autotune (tcp_wmem caps at 4 MiB on common configs), so the server's
  // sendmsg must hit EAGAIN mid-body and resume from the write cursor when
  // the (deliberately slow) client finally reads. Every byte must arrive in
  // order exactly once.
  std::string pattern(8u << 20, '\0');
  for (std::size_t i = 0; i < pattern.size(); ++i) {
    pattern[i] = static_cast<char>('a' + (i * 131) % 26);
  }
  Server server(ServerOptions{}, [&pattern](const http::Request&) {
    http::Response response;
    response.body = pattern;
    response.headers["Content-Type"] = "application/octet-stream";
    return response;
  });
  server.start();

  const int fd = connect_loopback(server.port());
  const std::string wire = "GET /big HTTP/1.1\r\nConnection: close\r\n\r\n";
  ASSERT_EQ(::send(fd, wire.data(), wire.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(wire.size()));
  // Let the server fill the socket buffers and park on EPOLLOUT before the
  // first read, so the partial-write resume path definitely runs.
  std::this_thread::sleep_for(std::chrono::milliseconds(150));

  std::string reply;
  char buf[8192];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n <= 0) break;
    reply.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  server.stop();

  const std::size_t split = reply.find("\r\n\r\n");
  ASSERT_NE(split, std::string::npos);
  EXPECT_EQ(reply.rfind("HTTP/1.1 200 OK\r\n", 0), 0u);
  EXPECT_NE(reply.find("Content-Length: 8388608\r\n"), std::string::npos);
  EXPECT_EQ(reply.substr(split + 4), pattern);  // byte-identical body
  EXPECT_GE(server.stats().writev_calls, 2u) << "expected a partial-write resume";
}

TEST(Server, PollBackendCoalescesPipelinedResponsesIntoOneWrite) {
  // Warm the handler EMA with a couple of ordinary requests so the inline
  // fast path opens, then pipeline four requests in one segment: the burst
  // must be answered in order and flushed as a coalesced vectored write
  // (writev_batches counts flushes that carried more than one response).
  ServerOptions options;
  options.backend = PollerBackend::kPoll;
  options.event_threads = 1;
  Server server(options, [](const http::Request& request) {
    http::Response response;
    response.body = "echo:" + request.target;
    return response;
  });
  server.start();
  EXPECT_EQ(server.backend_name(), "poll");

  {
    http::Client client("127.0.0.1", server.port());
    EXPECT_EQ(client.get("/warm1").status, 200);
    EXPECT_EQ(client.get("/warm2").status, 200);
  }

  const int fd = connect_loopback(server.port());
  const std::string wire =
      "GET /p1 HTTP/1.1\r\n\r\n"
      "GET /p2 HTTP/1.1\r\n\r\n"
      "GET /p3 HTTP/1.1\r\n\r\n"
      "GET /p4 HTTP/1.1\r\nConnection: close\r\n\r\n";
  ASSERT_EQ(::send(fd, wire.data(), wire.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(wire.size()));
  std::string reply;
  char buf[8192];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n <= 0) break;
    reply.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  server.stop();

  const std::size_t p1 = reply.find("echo:/p1");
  const std::size_t p2 = reply.find("echo:/p2");
  const std::size_t p3 = reply.find("echo:/p3");
  const std::size_t p4 = reply.find("echo:/p4");
  ASSERT_NE(p1, std::string::npos) << reply;
  ASSERT_NE(p2, std::string::npos) << reply;
  ASSERT_NE(p3, std::string::npos) << reply;
  ASSERT_NE(p4, std::string::npos) << reply;
  EXPECT_LT(p1, p2);
  EXPECT_LT(p2, p3);
  EXPECT_LT(p3, p4);

  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.requests_total, 6u);
  EXPECT_EQ(stats.responses_2xx, 6u);
  EXPECT_GE(stats.writev_batches, 1u)
      << "pipelined burst should flush as one vectored write";
  EXPECT_GE(stats.buffer_pool.recycled, 1u)
      << "inline responses should recycle pooled head buffers";
}

TEST(Server, AcceptShardCountersSumToConnectionsAccepted) {
  // Whether REUSEPORT sharding engaged or the runtime fell back to dealing
  // from loop 0, per-loop accept counters must partition the total.
  ServerOptions options;
  options.event_threads = 2;
  Server server(options, [](const http::Request&) { return http::Response{}; });
  server.start();

  constexpr int kConnections = 12;
  for (int i = 0; i < kConnections; ++i) {
    http::Client client("127.0.0.1", server.port());
    EXPECT_EQ(client.get("/ping").status, 200);
  }
  server.stop();

  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.connections_accepted, static_cast<std::uint64_t>(kConnections));
  ASSERT_EQ(stats.loop_accepts.size(), 2u);
  std::uint64_t sum = 0;
  for (const std::uint64_t accepts : stats.loop_accepts) sum += accepts;
  EXPECT_EQ(sum, stats.connections_accepted);
#ifdef SO_REUSEPORT
  EXPECT_TRUE(stats.reuseport);
#endif
}

}  // namespace
