// End-to-end acceptance for prm::serve: a real App behind a real Server on a
// loopback socket, driven by concurrent HTTP clients.
//
//  * 8 client threads POST distinct and duplicate fits; duplicates are served
//    from the fit cache, verified through the /metrics counters, and every
//    response matches a direct core::fit_model call bit-for-bit.
//  * /v1/forecast and /v1/metrics share the same cache slots as /v1/fit.
//  * The /v1/streams bridge ingests into the shared live::Monitor.
//  * Error contract: 400 / 404 / 405 with {"error": ...} bodies.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "core/fitting.hpp"
#include "data/recessions.hpp"
#include "serve/handlers.hpp"
#include "serve/http.hpp"
#include "serve/json.hpp"
#include "serve/server.hpp"

namespace {

using namespace prm;
using serve::Json;

class ServeE2E : public ::testing::Test {
 protected:
  void SetUp() override {
    app_ = std::make_unique<serve::App>();
    serve::ServerOptions options;
    options.port = 0;
    options.threads = 8;  // one worker per concurrent client below
    server_ = std::make_unique<serve::Server>(
        options, [this](const serve::http::Request& r) { return app_->handle(r); });
    server_->start();
    app_->set_stats_provider([this] { return server_->stats(); });
  }

  void TearDown() override { server_->stop(); }

  static std::string fit_body(const std::string& name) {
    const data::RecessionDataset& dataset = data::recession(name);
    Json series = Json::object();
    series["name"] = Json(name);
    Json times = Json::array();
    for (const double t : dataset.series.times()) times.push_back(Json(t));
    Json values = Json::array();
    for (const double v : dataset.series.values()) values.push_back(Json(v));
    series["times"] = std::move(times);
    series["values"] = std::move(values);
    Json body = Json::object();
    body["series"] = std::move(series);
    body["model"] = Json("competing-risks");
    body["holdout"] = Json(dataset.holdout);
    return body.dump();
  }

  serve::http::Client client() { return {"127.0.0.1", server_->port()}; }

  std::unique_ptr<serve::App> app_;
  std::unique_ptr<serve::Server> server_;
};

TEST_F(ServeE2E, HealthzAndModels) {
  auto c = client();
  const serve::http::Response health = c.get("/healthz");
  EXPECT_EQ(health.status, 200);
  const Json health_doc = Json::parse(health.body);
  EXPECT_EQ(health_doc.find("status")->as_string(), "ok");

  const Json models = Json::parse(c.get("/v1/models").body);
  const auto& list = models.find("models")->as_array();
  EXPECT_GE(list.size(), 5u);
  bool found = false;
  bool found_neural = false;
  for (const Json& entry : list) {
    if (entry.find("name")->as_string() == "competing-risks") {
      found = true;
      EXPECT_EQ(entry.find("family")->as_string(), "bathtub");
    }
    if (entry.find("family")->as_string() == "neural") found_neural = true;
  }
  EXPECT_TRUE(found) << "the paper's competing-risks model must be registered";
  EXPECT_TRUE(found_neural) << "the nn family must be listed with its family tag";
}

TEST_F(ServeE2E, ConcurrentClientsShareTheFitCache) {
  const auto names = data::recession_names();
  const auto name_count = static_cast<std::uint64_t>(names.size());
  ASSERT_EQ(name_count, 7u);

  // Warm-up pass: every recession fits once; all of these are cache misses.
  {
    auto c = client();
    for (const std::string_view name : names) {
      const serve::http::Response response =
          c.post_json("/v1/fit", fit_body(std::string(name)));
      ASSERT_EQ(response.status, 200) << response.body;
      EXPECT_EQ(Json::parse(response.body).find("cache")->as_string(), "miss");
    }
  }

  // Concurrent pass: 8 clients x 7 recessions, all duplicates of the warm-up.
  constexpr int kClients = 8;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([this, &names, &failures, i] {
      auto c = client();
      // Stagger each client's starting recession so distinct fits are in
      // flight simultaneously, not seven waves of identical requests.
      for (std::size_t k = 0; k < names.size(); ++k) {
        const std::string name(names[(k + static_cast<std::size_t>(i)) % names.size()]);
        const serve::http::Response response = c.post_json("/v1/fit", fit_body(name));
        if (response.status != 200 ||
            Json::parse(response.body).find("cache")->as_string() != "hit") {
          ++failures;
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);

  // The /metrics counters prove the caches did the work: exactly 7 optimizer
  // runs ever, and every one of the 56 concurrent requests was served from
  // the rendered-response cache (identical bodies short-circuit before even
  // reaching the fit cache).
  auto c = client();
  const Json metrics = Json::parse(c.get("/metrics").body);
  const Json* cache = metrics.find("fit_cache");
  ASSERT_NE(cache, nullptr);
  EXPECT_EQ(cache->find("hits")->as_number(), 0.0);
  EXPECT_EQ(cache->find("misses")->as_number(), static_cast<double>(name_count));
  EXPECT_EQ(cache->find("size")->as_number(), static_cast<double>(name_count));
  const Json* responses = metrics.find("response_cache");
  ASSERT_NE(responses, nullptr);
  EXPECT_EQ(responses->find("hits")->as_number(),
            kClients * static_cast<double>(name_count));
  EXPECT_EQ(responses->find("misses")->as_number(), static_cast<double>(name_count));
  EXPECT_EQ(responses->find("size")->as_number(), static_cast<double>(name_count));
  EXPECT_EQ(metrics.find("fits_computed")->as_number(), static_cast<double>(name_count));

  const Json* server_stats = metrics.find("server");
  ASSERT_NE(server_stats, nullptr);
  ASSERT_FALSE(server_stats->is_null());
  EXPECT_GE(server_stats->find("requests_total")->as_number(),
            static_cast<double>(name_count + kClients * name_count));
}

TEST_F(ServeE2E, ResponsesMatchDirectCoreFit) {
  const std::string name = "2007-09";
  const data::RecessionDataset& dataset = data::recession(name);

  auto c = client();
  const serve::http::Response response = c.post_json("/v1/fit", fit_body(name));
  ASSERT_EQ(response.status, 200) << response.body;
  const Json doc = Json::parse(response.body);

  // The JSON layer round-trips doubles bit-exactly, so the service's numbers
  // must equal a direct in-process fit with identical inputs -- no tolerance.
  const core::FitResult direct = core::fit_model("competing-risks", dataset.series,
                                                 dataset.holdout, core::FitOptions{});
  ASSERT_TRUE(direct.success());

  const auto& served = doc.find("parameter_vector")->as_array();
  ASSERT_EQ(served.size(), direct.parameters().size());
  for (std::size_t i = 0; i < served.size(); ++i) {
    EXPECT_DOUBLE_EQ(served[i].as_number(), direct.parameters()[i]) << "parameter " << i;
  }
  EXPECT_DOUBLE_EQ(doc.find("solver")->find("sse")->as_number(), direct.sse);
  EXPECT_EQ(doc.find("holdout")->as_number(), static_cast<double>(dataset.holdout));

  // Named parameters mirror the vector entry-for-entry.
  const auto parameter_names = direct.model().parameter_names();
  for (std::size_t i = 0; i < parameter_names.size(); ++i) {
    EXPECT_DOUBLE_EQ(doc.find("parameters")->find(parameter_names[i])->as_number(),
                     direct.parameters()[i]);
  }

  // Confidence band arrays cover the full sample grid.
  const Json* band = doc.find("band");
  ASSERT_NE(band, nullptr);
  EXPECT_EQ(band->find("lower")->as_array().size(), dataset.series.size());
  EXPECT_EQ(band->find("upper")->as_array().size(), dataset.series.size());
}

TEST_F(ServeE2E, ForecastAndMetricsShareTheFitCache) {
  auto c = client();
  const std::string body = fit_body("1990-93");
  ASSERT_EQ(c.post_json("/v1/fit", body).status, 200);

  // Same fit-shaped request through the other two routes: no new optimizer
  // run, both report a cache hit.
  Json forecast_body = Json::parse(body);
  forecast_body["steps"] = Json(6);
  const serve::http::Response forecast =
      c.post_json("/v1/forecast", forecast_body.dump());
  ASSERT_EQ(forecast.status, 200) << forecast.body;
  const Json forecast_doc = Json::parse(forecast.body);
  EXPECT_EQ(forecast_doc.find("cache")->as_string(), "hit");
  EXPECT_EQ(forecast_doc.find("points")->as_array().size(), 6u);
  for (const Json& point : forecast_doc.find("points")->as_array()) {
    EXPECT_LE(point.find("lower")->as_number(), point.find("upper")->as_number());
  }

  const serve::http::Response metrics = c.post_json("/v1/metrics", body);
  ASSERT_EQ(metrics.status, 200) << metrics.body;
  const Json metrics_doc = Json::parse(metrics.body);
  EXPECT_EQ(metrics_doc.find("cache")->as_string(), "hit");
  EXPECT_EQ(metrics_doc.find("metrics")->as_array().size(), 8u)
      << "the paper defines eight interval resilience metrics";

  EXPECT_DOUBLE_EQ(Json::parse(c.get("/metrics").body).find("fits_computed")->as_number(),
                   1.0);
}

TEST_F(ServeE2E, StreamBridgeIngestsIntoSharedMonitor) {
  auto c = client();

  // Unknown stream: 404 before any ingest.
  EXPECT_EQ(c.get("/v1/streams/ghost").status, 404);

  Json samples = Json::array();
  for (int i = 0; i < 5; ++i) {
    Json pair = Json::array();
    pair.push_back(Json(static_cast<double>(i)));
    pair.push_back(Json(1.0));
    samples.push_back(std::move(pair));
  }
  Json ingest = Json::object();
  ingest["samples"] = std::move(samples);
  const serve::http::Response response =
      c.post_json("/v1/streams/e2e/ingest", ingest.dump());
  ASSERT_EQ(response.status, 200) << response.body;
  EXPECT_EQ(Json::parse(response.body).find("accepted")->as_number(), 5.0);

  // Single-sample shorthand body.
  EXPECT_EQ(c.post_json("/v1/streams/e2e/ingest", R"({"t":5,"value":0.99})").status, 200);

  const Json snapshot = Json::parse(c.get("/v1/streams/e2e").body);
  EXPECT_EQ(snapshot.find("stream")->as_string(), "e2e");
  EXPECT_EQ(snapshot.find("samples_seen")->as_number(), 6.0);
  EXPECT_FALSE(snapshot.find("phase")->as_string().empty());

  const Json list = Json::parse(c.get("/v1/streams").body);
  ASSERT_EQ(list.find("streams")->as_array().size(), 1u);
  EXPECT_EQ(list.find("streams")->as_array()[0].as_string(), "e2e");

  // The HTTP bridge and the in-process Monitor are the same object.
  EXPECT_EQ(app_->monitor().snapshot("e2e").samples_seen, 6u);

  // Out-of-order time violates the monitor's contract: 400, state unchanged.
  const serve::http::Response stale =
      c.post_json("/v1/streams/e2e/ingest", R"({"t":2,"value":0.5})");
  EXPECT_EQ(stale.status, 400);
  EXPECT_EQ(app_->monitor().snapshot("e2e").samples_seen, 6u);
}

TEST_F(ServeE2E, BulkIngestRouteAppliesWholeBatchesAtomically) {
  auto c = client();

  Json samples = Json::array();
  for (int i = 0; i < 8; ++i) {
    Json pair = Json::array();
    pair.push_back(Json(static_cast<double>(i)));
    pair.push_back(Json(1.0));
    samples.push_back(std::move(pair));
  }
  Json body = Json::object();
  body["samples"] = std::move(samples);
  const serve::http::Response response =
      c.post_json("/v1/streams/bulk/ingest-batch", body.dump());
  ASSERT_EQ(response.status, 200) << response.body;
  const Json parsed = Json::parse(response.body);
  EXPECT_EQ(parsed.find("accepted")->as_number(), 8.0);
  EXPECT_TRUE(parsed.find("batched")->as_bool());
  EXPECT_EQ(app_->monitor().snapshot("bulk").samples_seen, 8u);

  // A batch with a stale time anywhere must apply none of its samples.
  const serve::http::Response stale = c.post_json(
      "/v1/streams/bulk/ingest-batch", R"({"samples":[[8,1.0],[3,0.5]]})");
  EXPECT_EQ(stale.status, 400);
  EXPECT_NE(Json::parse(stale.body).find("error"), nullptr);
  EXPECT_EQ(app_->monitor().snapshot("bulk").samples_seen, 8u);

  // Batches above the configured cap are rejected before any work happens.
  const std::size_t cap = app_->options().max_batch_samples;
  std::string big = R"({"samples":[)";
  for (std::size_t i = 0; i <= cap; ++i) {
    if (i > 0) big += ',';
    big += '[' + std::to_string(100 + i) + ",1.0]";
  }
  big += "]}";
  const serve::http::Response over =
      c.post_json("/v1/streams/bulk/ingest-batch", big);
  EXPECT_EQ(over.status, 400);
  EXPECT_NE(Json::parse(over.body).find("error")->as_string().find("batch"),
            std::string::npos);
  EXPECT_EQ(app_->monitor().snapshot("bulk").samples_seen, 8u);
}

TEST_F(ServeE2E, MetricsExportBufferPoolAndWritevCounters) {
  auto c = client();
  ASSERT_EQ(c.get("/healthz").status, 200);
  const Json metrics = Json::parse(c.get("/metrics").body);
  const Json* server = metrics.find("server");
  ASSERT_NE(server, nullptr);
  ASSERT_NE(server->find("buffer_pool"), nullptr);
  EXPECT_NE(server->find("buffer_pool")->find("acquired"), nullptr);
  EXPECT_NE(server->find("buffer_pool")->find("recycled"), nullptr);
  EXPECT_NE(server->find("buffer_pool")->find("high_water"), nullptr);
  EXPECT_NE(server->find("writev_calls"), nullptr);
  EXPECT_NE(server->find("writev_batches"), nullptr);
  EXPECT_NE(server->find("reuseport"), nullptr);
  ASSERT_NE(server->find("accept_loops"), nullptr);
  EXPECT_GE(server->find("writev_calls")->as_number(), 1.0);
}

TEST_F(ServeE2E, ErrorContract) {
  auto c = client();

  const serve::http::Response bad_json = c.post_json("/v1/fit", "{not json");
  EXPECT_EQ(bad_json.status, 400);
  EXPECT_NE(Json::parse(bad_json.body).find("error"), nullptr);

  const serve::http::Response bad_model = c.post_json(
      "/v1/fit", R"({"series":{"values":[1,0.9,0.8,0.85,0.9]},"model":"nope"})");
  EXPECT_EQ(bad_model.status, 400);
  EXPECT_NE(Json::parse(bad_model.body).find("error")->as_string().find("nope"),
            std::string::npos);

  const serve::http::Response short_series =
      c.post_json("/v1/fit", R"({"series":{"values":[1]}})");
  EXPECT_EQ(short_series.status, 400);

  const serve::http::Response big_holdout = c.post_json(
      "/v1/fit", R"({"series":{"values":[1,0.9,0.8]},"holdout":3})");
  EXPECT_EQ(big_holdout.status, 400);

  EXPECT_EQ(c.get("/v1/nope").status, 404);
  EXPECT_EQ(c.post_json("/healthz", "{}").status, 405);
  EXPECT_EQ(c.get("/v1/fit").status, 405);
}

}  // namespace
