#include <gtest/gtest.h>

#include "core/bathtub.hpp"
#include "core/mixture.hpp"
#include "core/model.hpp"

namespace prm::core {
namespace {

TEST(ModelRegistry, BuiltinsAreRegistered) {
  auto& r = ModelRegistry::instance();
  EXPECT_TRUE(r.contains("quadratic"));
  EXPECT_TRUE(r.contains("competing-risks"));
  EXPECT_TRUE(r.contains("mix-exp-exp-log"));
  EXPECT_TRUE(r.contains("mix-wei-exp-log"));
  EXPECT_TRUE(r.contains("mix-exp-wei-log"));
  EXPECT_TRUE(r.contains("mix-wei-wei-log"));
  EXPECT_GE(r.names().size(), 6u);
}

TEST(ModelRegistry, CreateReturnsFreshInstances) {
  auto& r = ModelRegistry::instance();
  const ModelPtr a = r.create("quadratic");
  const ModelPtr b = r.create("quadratic");
  EXPECT_NE(a.get(), b.get());
  EXPECT_EQ(a->name(), "quadratic");
}

TEST(ModelRegistry, UnknownNameThrows) {
  EXPECT_THROW(ModelRegistry::instance().create("no-such-model"), std::out_of_range);
  EXPECT_FALSE(ModelRegistry::instance().contains("no-such-model"));
}

TEST(ModelRegistry, NullFactoryRejected) {
  EXPECT_THROW(ModelRegistry::instance().register_model("bad", nullptr),
               std::invalid_argument);
}

TEST(ModelRegistry, UserModelCanBeRegisteredAndReplaced) {
  auto& r = ModelRegistry::instance();
  r.register_model("user-quad", [] { return ModelPtr(new QuadraticBathtubModel()); });
  EXPECT_TRUE(r.contains("user-quad"));
  EXPECT_EQ(r.create("user-quad")->name(), "quadratic");
  // Replacement under the same key takes effect.
  r.register_model("user-quad", [] { return ModelPtr(new CompetingRisksModel()); });
  EXPECT_EQ(r.create("user-quad")->name(), "competing-risks");
}

TEST(ModelRegistry, RegisteredMixturesMatchPaperConfiguration) {
  const ModelPtr m = ModelRegistry::instance().create("mix-wei-exp-log");
  const auto* mix = dynamic_cast<const MixtureModel*>(m.get());
  ASSERT_NE(mix, nullptr);
  EXPECT_EQ(mix->spec().degradation, Family::kWeibull);
  EXPECT_EQ(mix->spec().recovery, Family::kExponential);
  EXPECT_EQ(mix->spec().trend, RecoveryTrend::kLogarithmic);
}

TEST(ResilienceModel, DefaultClosedFormsAreAbsent) {
  // MixtureModel inherits the defaults: no closed forms.
  const MixtureModel m({Family::kExponential, Family::kExponential,
                        RecoveryTrend::kLogarithmic});
  const num::Vector p{0.1, 0.1, 0.3};
  EXPECT_FALSE(m.area_closed_form(p, 0.0, 1.0).has_value());
  EXPECT_FALSE(m.recovery_time_closed_form(p, 1.0, 0.0).has_value());
  EXPECT_FALSE(m.trough_closed_form(p).has_value());
}

}  // namespace
}  // namespace prm::core
