#include "core/segmented.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/analysis.hpp"
#include "data/generator.hpp"

namespace prm::core {
namespace {

const num::Vector kParams{1.0, -0.02, 0.002, -0.015, 0.0008, 12.0};

TEST(Segmented, ContinuousAtTheBreakpoint) {
  const SegmentedQuadraticModel m;
  const double tau = kParams[5];
  EXPECT_NEAR(m.evaluate(tau - 1e-9, kParams), m.evaluate(tau + 1e-9, kParams), 1e-7);
}

TEST(Segmented, FirstSegmentIsPlainQuadratic) {
  const SegmentedQuadraticModel m;
  for (double t : {0.0, 3.0, 11.9}) {
    EXPECT_DOUBLE_EQ(m.evaluate(t, kParams),
                     kParams[0] + kParams[1] * t + kParams[2] * t * t);
  }
}

TEST(Segmented, SecondSegmentRestartsDecline) {
  const SegmentedQuadraticModel m;
  const double at_tau = m.evaluate(12.0, kParams);
  // Just after tau, beta2 < 0 pulls the curve down again: the W's second dip.
  EXPECT_LT(m.evaluate(14.0, kParams), at_tau);
  // Far after tau, gamma2 lifts it back.
  EXPECT_GT(m.evaluate(40.0, kParams), m.evaluate(14.0, kParams));
}

TEST(Segmented, HasTwoLocalMinima) {
  const SegmentedQuadraticModel m;
  // Vertex of segment 1 at t = -beta1/(2 gamma1) = 5; of segment 2 at
  // tau + (-beta2/(2 gamma2)) = 12 + 9.375.
  const double d1 = m.evaluate(5.0, kParams);
  const double d2 = m.evaluate(21.375, kParams);
  EXPECT_LT(d1, m.evaluate(0.0, kParams));
  EXPECT_LT(d1, m.evaluate(10.0, kParams));
  EXPECT_LT(d2, m.evaluate(13.0, kParams));
  EXPECT_LT(d2, m.evaluate(35.0, kParams));
}

TEST(Segmented, GradientMatchesFiniteDifference) {
  const SegmentedQuadraticModel m;
  for (double t : {2.0, 11.0, 13.0, 30.0}) {
    const num::Vector g = m.gradient(t, kParams);
    for (std::size_t i = 0; i < kParams.size(); ++i) {
      num::Vector p = kParams;
      const double h = 1e-6 * std::max(1.0, std::fabs(p[i]));
      p[i] += h;
      const double up = m.evaluate(t, p);
      p[i] -= 2.0 * h;
      const double dn = m.evaluate(t, p);
      EXPECT_NEAR(g[i], (up - dn) / (2.0 * h), 1e-5) << "t=" << t << " param " << i;
    }
  }
}

TEST(Segmented, MetadataConsistent) {
  const SegmentedQuadraticModel m;
  EXPECT_EQ(m.num_parameters(), 6u);
  EXPECT_EQ(m.parameter_names().size(), 6u);
  EXPECT_EQ(m.parameter_bounds().size(), 6u);
  EXPECT_EQ(m.parameter_bounds()[5].kind, opt::BoundKind::kInterval);
  EXPECT_THROW(m.evaluate(1.0, {1.0, 2.0}), std::invalid_argument);
  EXPECT_TRUE(ModelRegistry::instance().contains("segmented-quadratic"));
}

TEST(Segmented, RecoversExactSegmentedData) {
  const SegmentedQuadraticModel m;
  std::vector<double> v(48);
  for (std::size_t i = 0; i < 48; ++i) v[i] = m.evaluate(static_cast<double>(i), kParams);
  const FitResult fit = fit_model(m, data::PerformanceSeries("exact-seg", std::move(v)), 5);
  ASSERT_TRUE(fit.success());
  EXPECT_LT(fit.sse, 1e-8);
  EXPECT_NEAR(fit.parameters()[5], 12.0, 0.5);  // breakpoint recovered
}

TEST(Segmented, FixesTheWShaped1980Failure) {
  // The headline: the paper's models fail on 1980 (r2adj ~0.36 here, low or
  // negative in the paper). The segmented model must crack 0.9.
  const auto seg = analyze("segmented-quadratic", data::recession("1980"));
  const auto quad = analyze("quadratic", data::recession("1980"));
  EXPECT_GT(seg.validation.r2_adj, 0.9);
  EXPECT_LT(quad.validation.r2_adj, 0.6);
  // The fitted breakpoint lands near the observed inter-dip peak (~month 14).
  EXPECT_NEAR(seg.fit.parameters()[5], 14.0, 4.0);
}

TEST(Segmented, BeatsSingleQuadraticOnWShapesByInformationCriteria) {
  // Despite doubling the parameter count, AIC prefers it on the W data.
  const auto seg = analyze("segmented-quadratic", data::recession("1980"));
  const auto quad = analyze("quadratic", data::recession("1980"));
  EXPECT_LT(seg.validation.aic, quad.validation.aic);
  EXPECT_LT(seg.validation.bic, quad.validation.bic);
}

TEST(Segmented, DoesNotOverfitVShapes) {
  // On a clean single-dip dataset it should not do materially WORSE than the
  // plain quadratic in r2adj terms (the extra segment can go flat).
  const auto seg = analyze("segmented-quadratic", data::recession("1990-93"));
  const auto quad = analyze("quadratic", data::recession("1990-93"));
  EXPECT_GT(seg.validation.r2_adj, quad.validation.r2_adj - 0.05);
}

TEST(Segmented, FitsGeneratedWShapesAcrossSeeds) {
  for (std::uint64_t seed : {1u, 5u, 9u}) {
    const auto series = data::generate_shape(data::RecessionShape::kW, 48, seed);
    const data::RecessionDataset ds{series, data::RecessionShape::kW, 5};
    const auto r = analyze("segmented-quadratic", ds);
    EXPECT_GT(r.validation.r2_adj, 0.8) << "seed " << seed;
  }
}

}  // namespace
}  // namespace prm::core
