// prm::live acceptance tests: the full NOMINAL -> DEGRADING -> RECOVERING ->
// RESTORED walkthrough on a synthetic disruption with known ground truth,
// the mid-recovery t_r forecast accuracy, gating of RESTORED by the fitted
// prediction, W-shape back-edges, alerting, and the save/load round trip
// resuming identical state.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <bit>
#include <cmath>
#include <cstdint>
#include <mutex>
#include <optional>
#include <sstream>
#include <thread>
#include <utility>
#include <vector>

#include "live/monitor.hpp"
#include "live/stream_state.hpp"

namespace {

using namespace prm;
using live::StreamPhase;

double smoothstep(double x) {
  if (x <= 0.0) return 0.0;
  if (x >= 1.0) return 1.0;
  return x * x * (3.0 - 2.0 * x);
}

constexpr std::size_t kPrefix = 16;     // flat nominal run-in (baseline = 12)
constexpr double kDipLen = 10.0;        // samples from peak to trough
constexpr double kRecoveryLen = 30.0;   // samples from trough to full recovery
constexpr double kDepth = 0.10;         // trough at 0.90
constexpr double kOvershoot = 0.12;     // recovers to 1.02

/// Noiseless V-shaped disruption in absolute sample time: flat 1.0 for
/// kPrefix samples, smoothstep dip to 0.90, smoothstep recovery to 1.02.
double v_curve(double t) {
  const double u = t - static_cast<double>(kPrefix);
  if (u <= 0.0) return 1.0;
  if (u <= kDipLen) return 1.0 - kDepth * smoothstep(u / kDipLen);
  return (1.0 - kDepth) + kOvershoot * smoothstep((u - kDipLen) / kRecoveryLen);
}

/// Event time (samples past the pre-hazard peak) at which the curve first
/// reaches `level` during recovery, by dense scan of the generator formula.
double true_recovery_event_time(double level) {
  for (double u = kDipLen; u <= kDipLen + kRecoveryLen + 1.0; u += 1e-3) {
    if (v_curve(static_cast<double>(kPrefix) + u) >= level) return u;
  }
  return kDipLen + kRecoveryLen;
}

live::StreamConfig test_config() {
  live::StreamConfig config;
  config.window_capacity = 64;
  config.cusum.baseline = 12;
  config.confirm_samples = 3;
  config.recovery_fraction = 0.98;
  return config;
}

live::MonitorOptions test_options() {
  live::MonitorOptions options;
  options.stream = test_config();
  options.model = "competing-risks";
  options.refit_every = 2;
  options.min_fit_samples = 8;
  options.threads = 2;
  return options;
}

std::vector<StreamPhase> phases_entered(const std::vector<live::TransitionEvent>& ts) {
  std::vector<StreamPhase> out;
  for (const auto& t : ts) out.push_back(t.to);
  return out;
}

// ---------------------------------------------------------------------------
// StreamState: the state machine in isolation.

TEST(StreamState, WalksThroughAllFourPhasesOnAVShape) {
  live::StreamState state("svc", test_config());
  std::vector<live::TransitionEvent> all;
  const std::size_t total = kPrefix + static_cast<std::size_t>(kDipLen + kRecoveryLen) + 8;
  for (std::size_t i = 0; i < total; ++i) {
    const double t = static_cast<double>(i);
    for (const auto& tr : state.push(t, v_curve(t))) all.push_back(tr);
  }
  // The full life cycle, including the re-baseline back to NOMINAL once
  // enough post-recovery samples establish the new normal.
  const std::vector<StreamPhase> want = {StreamPhase::kDegrading,
                                         StreamPhase::kRecovering,
                                         StreamPhase::kRestored,
                                         StreamPhase::kNominal};
  EXPECT_EQ(phases_entered(all), want);
  EXPECT_EQ(state.phase(), StreamPhase::kNominal);
  EXPECT_EQ(state.event_ordinal(), 1u);

  // Onset aligned at the last flat sample; observed trough at depth 0.90.
  ASSERT_TRUE(state.onset_time().has_value());
  EXPECT_NEAR(*state.onset_time(), static_cast<double>(kPrefix), 2.0);
  ASSERT_TRUE(state.trough_value().has_value());
  EXPECT_NEAR(*state.trough_value(), 1.0 - kDepth, 0.01);
  EXPECT_NEAR(*state.trough_time(), kDipLen, 2.0);
}

TEST(StreamState, StaysNominalOnFlatAndNoisyButSteadyInput) {
  live::StreamState state("quiet", test_config());
  for (int i = 0; i < 200; ++i) {
    // Deterministic small oscillation well inside the alarm threshold.
    const double wiggle = 0.002 * std::sin(0.7 * static_cast<double>(i));
    auto transitions = state.push(static_cast<double>(i), 1.0 + wiggle);
    EXPECT_TRUE(transitions.empty());
  }
  EXPECT_EQ(state.phase(), StreamPhase::kNominal);
  EXPECT_EQ(state.event_ordinal(), 0u);
  EXPECT_FALSE(state.onset_time().has_value());
}

TEST(StreamState, WShapeTakesTheBackEdgeWithoutStartingANewEvent) {
  live::StreamState state("w", test_config());
  double t = 0.0;
  auto feed = [&](double value) {
    auto transitions = state.push(t, value);
    t += 1.0;
    return transitions;
  };
  for (std::size_t i = 0; i < kPrefix; ++i) feed(1.0);
  // First dip.
  for (double v = 0.99; v > 0.90; v -= 0.02) feed(v);
  EXPECT_EQ(state.phase(), StreamPhase::kDegrading);
  // Partial recovery: confirm the turn.
  for (double v = 0.91; v < 0.955; v += 0.01) feed(v);
  EXPECT_EQ(state.phase(), StreamPhase::kRecovering);
  const std::uint64_t ordinal = state.event_ordinal();
  // Second dip: must re-enter DEGRADING on the SAME event.
  for (double v = 0.94; v > 0.87; v -= 0.02) feed(v);
  EXPECT_EQ(state.phase(), StreamPhase::kDegrading);
  EXPECT_EQ(state.event_ordinal(), ordinal);
  // Full recovery this time.
  for (double v = 0.88; v < 1.01; v += 0.01) feed(v);
  EXPECT_EQ(state.phase(), StreamPhase::kRestored);
  EXPECT_EQ(state.event_ordinal(), ordinal);
}

TEST(StreamState, PredictedRecoveryGatesTheRestoredTransition) {
  live::StreamState state("gated", test_config());
  double t = 0.0;
  auto feed = [&](double value) {
    auto transitions = state.push(t, value);
    t += 1.0;
    return transitions;
  };
  for (std::size_t i = 0; i < kPrefix; ++i) feed(1.0);
  for (double v = 0.99; v > 0.90; v -= 0.02) feed(v);
  for (double v = 0.91; v < 0.97; v += 0.01) feed(v);
  ASSERT_EQ(state.phase(), StreamPhase::kRecovering);

  // Install a forecast far in the future: holding at the recovered level
  // must NOT flip the stream to RESTORED while the model says "not yet".
  state.set_predicted_recovery(1000.0);
  for (int i = 0; i < 10; ++i) feed(1.0);
  EXPECT_EQ(state.phase(), StreamPhase::kRecovering);

  // Clear the gate: the standing value evidence now suffices.
  state.set_predicted_recovery(std::nullopt);
  feed(1.0);
  EXPECT_EQ(state.phase(), StreamPhase::kRestored);
}

TEST(StreamState, RejectsNonMonotoneTimesAndNonFiniteSamples) {
  live::StreamState state("strict", test_config());
  state.push(0.0, 1.0);
  state.push(1.0, 1.0);
  EXPECT_THROW(state.push(1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(state.push(0.5, 1.0), std::invalid_argument);
  EXPECT_THROW(state.push(2.0, std::nan("")), std::invalid_argument);
  // The stream survives rejected samples.
  EXPECT_NO_THROW(state.push(2.0, 1.0));
}

TEST(StreamState, SaveLoadRoundTripResumesIdenticalState) {
  const live::StreamConfig config = test_config();
  live::StreamState original("svc", config);
  const std::size_t split = kPrefix + 18;  // mid-recovery
  for (std::size_t i = 0; i < split; ++i) {
    original.push(static_cast<double>(i), v_curve(static_cast<double>(i)));
  }
  original.set_predicted_recovery(29.0);

  std::stringstream buffer;
  original.save(buffer);
  live::StreamState restored = live::StreamState::load(buffer, config);

  EXPECT_EQ(restored.name(), original.name());
  EXPECT_EQ(restored.phase(), original.phase());
  EXPECT_EQ(restored.samples_seen(), original.samples_seen());
  EXPECT_EQ(restored.event_ordinal(), original.event_ordinal());
  EXPECT_EQ(restored.predicted_recovery_time(), original.predicted_recovery_time());
  EXPECT_EQ(restored.transitions().size(), original.transitions().size());

  // Both instances must evolve identically from here on.
  const std::size_t total = kPrefix + static_cast<std::size_t>(kDipLen + kRecoveryLen) + 8;
  for (std::size_t i = split; i < total; ++i) {
    const double t = static_cast<double>(i);
    const auto a = original.push(t, v_curve(t));
    const auto b = restored.push(t, v_curve(t));
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t j = 0; j < a.size(); ++j) {
      EXPECT_EQ(a[j].to, b[j].to);
      EXPECT_EQ(a[j].t, b[j].t);
    }
  }
  EXPECT_EQ(restored.phase(), original.phase());
  int restored_edges = 0;
  for (const auto& tr : restored.transitions()) {
    if (tr.to == StreamPhase::kRestored) ++restored_edges;
  }
  EXPECT_EQ(restored_edges, 1);
  const auto sa = original.event_series();
  const auto sb = restored.event_series();
  ASSERT_EQ(sa.size(), sb.size());
  for (std::size_t i = 0; i < sa.size(); ++i) {
    EXPECT_EQ(sa.time(i), sb.time(i));
    EXPECT_EQ(sa.value(i), sb.value(i));
  }
}

TEST(StreamState, LoadRejectsMalformedInput) {
  std::stringstream bad("prm-stream 1\nnonsense");
  EXPECT_THROW(live::StreamState::load(bad, test_config()), std::runtime_error);
}

// ---------------------------------------------------------------------------
// Monitor: facade, refits, forecasts, persistence.

TEST(Monitor, WalkthroughWithMidRecoveryForecastNearGroundTruth) {
  live::Monitor monitor(test_options());
  std::vector<StreamPhase> entered;

  const std::size_t mid = kPrefix + static_cast<std::size_t>(kDipLen) + 15;
  for (std::size_t i = 0; i < mid; ++i) {
    const double t = static_cast<double>(i);
    for (const auto& tr : monitor.ingest("svc", t, v_curve(t))) {
      entered.push_back(tr.to);
    }
  }
  monitor.drain();

  live::StreamSnapshot snap = monitor.snapshot("svc");
  EXPECT_EQ(snap.phase, StreamPhase::kRecovering);
  EXPECT_TRUE(snap.event_active);
  EXPECT_EQ(snap.event_ordinal, 1u);
  ASSERT_TRUE(snap.has_fit);
  EXPECT_EQ(snap.model, "competing-risks");
  EXPECT_GE(snap.refits, 1u);

  // Acceptance criterion: the mid-recovery forecast lands near the
  // generator's ground-truth recovery time (aligned to the pre-hazard peak,
  // which sits one sample before the event formula's origin).
  ASSERT_TRUE(snap.predicted_recovery_time.has_value());
  const double truth = true_recovery_event_time(0.98) + 1.0;
  EXPECT_NEAR(*snap.predicted_recovery_time, truth, 6.0);

  // Eight interval metrics over the unseen horizon [t_now, t_r].
  ASSERT_TRUE(snap.has_horizon_metrics);
  for (double m : snap.horizon_metrics) EXPECT_TRUE(std::isfinite(m));
  // Performance preserved over the remaining recovery is positive and less
  // than the full nominal area of that window.
  const double t_now = snap.last_time - *snap.onset_time;
  const double window = *snap.predicted_recovery_time - t_now;
  EXPECT_GT(snap.horizon_metrics[0], 0.0);
  EXPECT_LT(snap.horizon_metrics[0], 1.1 * window);

  // Run the curve to completion: the stream must come out RESTORED.
  const std::size_t total = kPrefix + static_cast<std::size_t>(kDipLen + kRecoveryLen) + 10;
  for (std::size_t i = mid; i < total; ++i) {
    const double t = static_cast<double>(i);
    for (const auto& tr : monitor.ingest("svc", t, v_curve(t))) {
      entered.push_back(tr.to);
    }
  }
  monitor.drain();
  snap = monitor.snapshot("svc");
  // RESTORED, or already re-baselined back to NOMINAL when the forecast let
  // the restoration land early enough.
  EXPECT_TRUE(snap.phase == StreamPhase::kRestored || snap.phase == StreamPhase::kNominal);
  ASSERT_GE(entered.size(), 3u);
  EXPECT_EQ(entered[0], StreamPhase::kDegrading);
  EXPECT_EQ(entered[1], StreamPhase::kRecovering);
  EXPECT_NE(std::find(entered.begin(), entered.end(), StreamPhase::kRestored),
            entered.end());
  EXPECT_GE(snap.warm_refits + monitor.refits_coalesced(), 1u)
      << "incremental refits neither warm-started nor coalesced";
}

TEST(Monitor, MultipleStreamsAreIndependent) {
  live::Monitor monitor(test_options());
  const std::size_t total = kPrefix + static_cast<std::size_t>(kDipLen + kRecoveryLen) + 8;
  for (std::size_t i = 0; i < total; ++i) {
    const double t = static_cast<double>(i);
    monitor.ingest("dipping", t, v_curve(t));
    monitor.ingest("steady", t, 1.0);
  }
  monitor.drain();

  EXPECT_EQ(monitor.stream_count(), 2u);
  const auto snaps = monitor.snapshot();
  ASSERT_EQ(snaps.size(), 2u);
  EXPECT_EQ(snaps[0].name, "dipping");  // sorted by name
  EXPECT_EQ(snaps[1].name, "steady");
  EXPECT_TRUE(snaps[0].phase == StreamPhase::kRestored ||
              snaps[0].phase == StreamPhase::kNominal);
  EXPECT_EQ(snaps[0].event_ordinal, 1u);
  EXPECT_EQ(snaps[1].phase, StreamPhase::kNominal);
  EXPECT_EQ(snaps[1].event_ordinal, 0u);
  EXPECT_FALSE(snaps[1].has_fit);
}

TEST(Monitor, BatchedIngestMatchesPerSampleIngestExactly) {
  // The same disruption fed per-sample and in 7-sample batches must produce
  // the identical transition sequence (same phases, times, sample indices),
  // identical stream state, and per-sample alerts inside each batch.
  // Refits are disabled so the walk is the pure state machine -- batching
  // coalesces refit *scheduling*, which is covered by the WAL tests.
  live::MonitorOptions options = test_options();
  options.min_fit_samples = 100000;
  live::Monitor per_sample(options);
  live::Monitor batched(options);

  live::AlertRule low;
  low.name = "low-value";
  low.kind = live::AlertKind::kValueBelow;
  low.threshold = 0.95;
  batched.alerts().add_rule(low);
  std::mutex alerts_m;
  std::vector<live::Alert> alerts_seen;
  batched.alerts().subscribe([&](const live::Alert& alert) {
    std::lock_guard<std::mutex> lock(alerts_m);
    alerts_seen.push_back(alert);
  });

  EXPECT_TRUE(batched.ingest_batch("svc", {}).empty());  // empty batch: no-op

  std::vector<live::TransitionEvent> single_events, batch_events;
  const std::size_t total =
      kPrefix + static_cast<std::size_t>(kDipLen + kRecoveryLen) + 8;
  std::vector<std::pair<double, double>> batch;
  for (std::size_t i = 0; i < total; ++i) {
    const double t = static_cast<double>(i);
    for (const auto& tr : per_sample.ingest("svc", t, v_curve(t))) {
      single_events.push_back(tr);
    }
    batch.emplace_back(t, v_curve(t));
    if (batch.size() == 7 || i + 1 == total) {
      for (const auto& tr : batched.ingest_batch("svc", batch)) {
        batch_events.push_back(tr);
      }
      batch.clear();
    }
  }
  per_sample.drain();
  batched.drain();

  ASSERT_EQ(batch_events.size(), single_events.size());
  for (std::size_t i = 0; i < single_events.size(); ++i) {
    EXPECT_EQ(batch_events[i].from, single_events[i].from) << "event " << i;
    EXPECT_EQ(batch_events[i].to, single_events[i].to) << "event " << i;
    EXPECT_EQ(batch_events[i].t, single_events[i].t) << "event " << i;
    EXPECT_EQ(batch_events[i].sample_index, single_events[i].sample_index);
  }

  const auto a = per_sample.snapshot("svc");
  const auto b = batched.snapshot("svc");
  EXPECT_EQ(b.phase, a.phase);
  EXPECT_EQ(b.samples_seen, a.samples_seen);
  EXPECT_EQ(b.last_time, a.last_time);
  EXPECT_EQ(b.last_value, a.last_value);
  EXPECT_EQ(b.event_ordinal, a.event_ordinal);
  EXPECT_EQ(b.event_active, a.event_active);
  EXPECT_EQ(b.onset_time, a.onset_time);
  EXPECT_EQ(b.trough_time, a.trough_time);
  EXPECT_EQ(b.trough_value, a.trough_value);

  // The threshold crossing happened mid-batch and must still have alerted.
  std::lock_guard<std::mutex> lock(alerts_m);
  int low_count = 0;
  for (const auto& alert : alerts_seen) {
    if (alert.rule == "low-value") ++low_count;
  }
  EXPECT_EQ(low_count, 1);
}

TEST(Monitor, AlertsFireOnValueThresholdTransitionsAndForecasts) {
  live::Monitor monitor(test_options());

  live::AlertRule low;
  low.name = "low-value";
  low.kind = live::AlertKind::kValueBelow;
  low.threshold = 0.95;
  monitor.alerts().add_rule(low);

  live::AlertRule degrading;
  degrading.name = "degrading";
  degrading.kind = live::AlertKind::kPhaseTransition;
  degrading.phase = StreamPhase::kDegrading;
  monitor.alerts().add_rule(degrading);

  live::AlertRule slow;
  slow.name = "slow-recovery";
  slow.kind = live::AlertKind::kRecoveryBeyond;
  slow.threshold = 5.0;  // recovery takes ~30 samples, so this must fire
  monitor.alerts().add_rule(slow);

  std::mutex m;
  std::vector<live::Alert> seen;
  monitor.alerts().subscribe([&](const live::Alert& alert) {
    std::lock_guard<std::mutex> lock(m);
    seen.push_back(alert);
  });

  const std::size_t total = kPrefix + static_cast<std::size_t>(kDipLen + kRecoveryLen) + 8;
  for (std::size_t i = 0; i < total; ++i) {
    const double t = static_cast<double>(i);
    monitor.ingest("svc", t, v_curve(t));
  }
  monitor.drain();

  std::lock_guard<std::mutex> lock(m);
  int low_count = 0, degrading_count = 0, slow_count = 0;
  for (const auto& alert : seen) {
    if (alert.rule == "low-value") ++low_count;
    if (alert.rule == "degrading") ++degrading_count;
    if (alert.rule == "slow-recovery") ++slow_count;
  }
  EXPECT_EQ(low_count, 1) << "once_per_event rule fired more than once";
  EXPECT_EQ(degrading_count, 1);
  EXPECT_GE(slow_count, 1);
}

TEST(Monitor, SaveLoadRoundTripResumesIdenticalState) {
  // threads = 1 + drain after every sample makes refit timing deterministic,
  // so the original and the restored copy must match bit for bit.
  live::MonitorOptions options = test_options();
  options.threads = 1;

  live::Monitor original(options);
  const std::size_t split = kPrefix + static_cast<std::size_t>(kDipLen) + 15;
  for (std::size_t i = 0; i < split; ++i) {
    const double t = static_cast<double>(i);
    original.ingest("svc", t, v_curve(t));
    original.drain();
  }

  std::stringstream buffer;
  original.save(buffer);
  const auto restored = live::Monitor::load(buffer, options);

  live::StreamSnapshot a = original.snapshot("svc");
  live::StreamSnapshot b = restored->snapshot("svc");
  EXPECT_EQ(b.phase, a.phase);
  EXPECT_EQ(b.samples_seen, a.samples_seen);
  EXPECT_EQ(b.event_ordinal, a.event_ordinal);
  EXPECT_EQ(b.last_time, a.last_time);
  EXPECT_EQ(b.last_value, a.last_value);
  ASSERT_EQ(b.has_fit, a.has_fit);
  ASSERT_TRUE(b.has_fit);
  ASSERT_EQ(b.parameters.size(), a.parameters.size());
  for (std::size_t i = 0; i < a.parameters.size(); ++i) {
    EXPECT_DOUBLE_EQ(b.parameters[i], a.parameters[i]);
  }
  EXPECT_EQ(b.predicted_recovery_time, a.predicted_recovery_time);
  EXPECT_EQ(b.refits, a.refits);
  EXPECT_EQ(b.warm_refits, a.warm_refits);

  // Both monitors replay the remainder identically: same transitions, same
  // terminal phase.
  const std::size_t total = kPrefix + static_cast<std::size_t>(kDipLen + kRecoveryLen) + 10;
  for (std::size_t i = split; i < total; ++i) {
    const double t = static_cast<double>(i);
    const auto ta = original.ingest("svc", t, v_curve(t));
    original.drain();
    const auto tb = restored->ingest("svc", t, v_curve(t));
    restored->drain();
    ASSERT_EQ(ta.size(), tb.size());
    for (std::size_t j = 0; j < ta.size(); ++j) {
      EXPECT_EQ(ta[j].to, tb[j].to);
      EXPECT_EQ(ta[j].t, tb[j].t);
    }
  }
  a = original.snapshot("svc");
  b = restored->snapshot("svc");
  EXPECT_TRUE(a.phase == StreamPhase::kRestored || a.phase == StreamPhase::kNominal);
  EXPECT_EQ(b.phase, a.phase);
  EXPECT_EQ(b.event_ordinal, a.event_ordinal);
}

TEST(Monitor, ValidatesOptionsAndInputs) {
  live::MonitorOptions options = test_options();
  options.model = "no-such-model";
  EXPECT_THROW(live::Monitor{options}, std::out_of_range);

  options = test_options();
  options.refit_every = 0;
  EXPECT_THROW(live::Monitor{options}, std::invalid_argument);

  live::Monitor monitor(test_options());
  EXPECT_THROW(monitor.snapshot("missing"), std::out_of_range);
  EXPECT_THROW(monitor.ingest("bad name", 0.0, 1.0), std::invalid_argument);
  monitor.ingest("svc", 0.0, 1.0);
  EXPECT_THROW(monitor.ingest("svc", 0.0, 1.0), std::invalid_argument);
}

TEST(Monitor, LoadRejectsMalformedInput) {
  std::stringstream bad("prm-live 999\n");
  EXPECT_THROW(live::Monitor::load(bad, test_options()), std::runtime_error);
  std::stringstream worse("not-a-snapshot\n");
  EXPECT_THROW(live::Monitor::load(worse, test_options()), std::runtime_error);
}

TEST(Monitor, LoadNamesTheUnknownSnapshotVersion) {
  // A snapshot from a newer (or corrupted) build must be refused with an
  // error that names the version it found, not a generic parse failure.
  std::stringstream future("prm-live 999\nmodel competing-risks\nstreams 0\n");
  try {
    live::Monitor::load(future, test_options());
    FAIL() << "expected std::runtime_error for an unknown snapshot version";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("999"), std::string::npos) << what;
    EXPECT_NE(what.find("prm-live 2"), std::string::npos) << what;
  }
}

TEST(Monitor, LoadRejectsATruncatedSnapshot) {
  // Cut a valid snapshot off mid-stream: load must throw, not return a
  // monitor that silently dropped the tail.
  live::Monitor monitor(test_options());
  for (int t = 0; t < 12; ++t) {
    monitor.ingest("svc-a", t, 1.0);
    monitor.ingest("svc-b", t, 1.0);
  }
  std::ostringstream full;
  monitor.save(full);
  const std::string text = full.str();

  // Truncate at several depths: inside the header, inside the first stream,
  // and just before the final line. The cut can land mid-token, so any
  // std::exception is acceptable -- returning a monitor is not.
  for (const std::size_t keep :
       {text.size() / 8, text.size() / 2, text.size() - 10}) {
    std::stringstream cut(text.substr(0, keep));
    try {
      live::Monitor::load(cut, test_options());
      FAIL() << "load accepted a snapshot truncated to " << keep << " of "
             << text.size() << " bytes";
    } catch (const std::exception&) {
      // expected: truncated input must be refused
    }
  }
}

TEST(Monitor, LoadNamesAnUnknownModel) {
  // A snapshot written by a build with extra registered models must fail
  // with the model's name in the message, not a bare lookup error.
  live::Monitor monitor(test_options());
  monitor.ingest("svc", 0.0, 1.0);
  std::ostringstream out;
  monitor.save(out);
  std::string text = out.str();
  const std::string from = "model competing-risks";
  const std::size_t at = text.find(from);
  ASSERT_NE(at, std::string::npos);
  text.replace(at, from.size(), "model from-the-future");

  std::stringstream in(text);
  try {
    live::Monitor::load(in, test_options());
    FAIL() << "expected a throw for an unknown model name";
  } catch (const std::exception& e) {
    EXPECT_NE(std::string(e.what()).find("from-the-future"), std::string::npos)
        << e.what();
  }
}

TEST(Monitor, ShardedRegistryKeepsStreamsIndependentSortedAndCounted) {
  // 3 shards over 12 streams ingested from 4 threads: the striped registry
  // must neither lose a stream nor disturb the name-sorted snapshot()/
  // stream_names() contract the single-map registry provided.
  live::MonitorOptions options = test_options();
  options.shards = 3;
  live::Monitor monitor(options);
  EXPECT_EQ(monitor.registry_shards(), 3u);

  constexpr int kThreads = 4;
  constexpr int kStreamsPerThread = 3;
  constexpr int kSamples = 40;
  std::vector<std::thread> threads;
  for (int w = 0; w < kThreads; ++w) {
    threads.emplace_back([&monitor, w] {
      for (int s = 0; s < kStreamsPerThread; ++s) {
        // Built via append (not operator+ chains): GCC 12 raises a spurious
        // -Wrestrict on the chained concatenation at -O2.
        std::string stream = "t";
        stream += std::to_string(w);
        stream += 's';
        stream += std::to_string(s);
        for (int i = 0; i < kSamples; ++i) {
          monitor.ingest(stream, static_cast<double>(i), 1.0);
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  monitor.drain();

  EXPECT_EQ(monitor.stream_count(),
            static_cast<std::size_t>(kThreads) * kStreamsPerThread);
  const std::vector<std::string> names = monitor.stream_names();
  ASSERT_EQ(names.size(), monitor.stream_count());
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
  const auto snaps = monitor.snapshot();
  ASSERT_EQ(snaps.size(), names.size());
  for (std::size_t i = 0; i < snaps.size(); ++i) {
    EXPECT_EQ(snaps[i].name, names[i]);
    EXPECT_EQ(snaps[i].samples_seen, static_cast<std::uint64_t>(kSamples));
  }
}

/// Bitwise equality of two optional doubles (NaN-safe, sign-of-zero-exact).
bool bits_equal(const std::optional<double>& a, const std::optional<double>& b) {
  if (a.has_value() != b.has_value()) return false;
  if (!a) return true;
  return std::bit_cast<std::uint64_t>(*a) == std::bit_cast<std::uint64_t>(*b);
}

TEST(Monitor, BatchedRefitsBitIdenticalToThreadedAtAnyShardAndThreadCount) {
  // Three streams with staggered disruptions, drained after every sample so
  // both modes execute the same refit sequence on the same data. The batched
  // path fans each claim over one prm::par parallel pass; its results must be
  // bit-identical to the per-stream threaded scheduler at every shard count
  // and batch thread count (acceptance criterion of the sharding PR).
  const std::size_t total =
      kPrefix + static_cast<std::size_t>(kDipLen + kRecoveryLen) + 8;
  const auto value_of = [](const std::string& stream, double t) {
    if (stream == "steady") return 1.0;
    return stream == "shifted" ? v_curve(t - 3.0) : v_curve(t);
  };
  const std::vector<std::string> streams = {"base", "shifted", "steady"};

  const auto run = [&](bool batched, std::size_t shards, std::size_t threads,
                       int batch_threads) {
    live::MonitorOptions options = test_options();
    options.batched_refits = batched;
    options.shards = shards;
    options.threads = threads;
    live::Monitor monitor(options);
    for (std::size_t i = 0; i < total; ++i) {
      const double t = static_cast<double>(i);
      for (const std::string& stream : streams) {
        monitor.ingest(stream, t, value_of(stream, t));
      }
      if (batched) monitor.refit_batch(batch_threads);
      monitor.drain();
    }
    return monitor.snapshot();
  };

  const auto reference = run(/*batched=*/false, 1, 1, 0);
  ASSERT_EQ(reference.size(), streams.size());
  ASSERT_TRUE(reference[0].has_fit);
  EXPECT_GE(reference[0].refits, 2u);

  const std::pair<std::size_t, std::size_t> grids[] = {{1, 1}, {4, 3}, {8, 2}};
  for (const auto& [shards, threads] : grids) {
    const auto batched = run(/*batched=*/true, shards, threads,
                             static_cast<int>(threads));
    ASSERT_EQ(batched.size(), reference.size());
    for (std::size_t s = 0; s < reference.size(); ++s) {
      SCOPED_TRACE("stream " + reference[s].name + " shards " +
                   std::to_string(shards) + " threads " + std::to_string(threads));
      EXPECT_EQ(batched[s].name, reference[s].name);
      EXPECT_EQ(batched[s].refits, reference[s].refits);
      EXPECT_EQ(batched[s].phase, reference[s].phase);
      ASSERT_EQ(batched[s].has_fit, reference[s].has_fit);
      if (!reference[s].has_fit) continue;
      ASSERT_EQ(batched[s].parameters.size(), reference[s].parameters.size());
      for (std::size_t p = 0; p < reference[s].parameters.size(); ++p) {
        EXPECT_EQ(std::bit_cast<std::uint64_t>(batched[s].parameters[p]),
                  std::bit_cast<std::uint64_t>(reference[s].parameters[p]))
            << "parameter " << p << " differs";
      }
      EXPECT_EQ(std::bit_cast<std::uint64_t>(batched[s].fit_sse),
                std::bit_cast<std::uint64_t>(reference[s].fit_sse));
      EXPECT_TRUE(bits_equal(batched[s].predicted_recovery_time,
                             reference[s].predicted_recovery_time));
      EXPECT_TRUE(bits_equal(batched[s].predicted_trough_time,
                             reference[s].predicted_trough_time));
    }
  }
}

TEST(Monitor, ConcurrentIngestAndSnapshotAreRaceFree) {
  // Several writer threads ingest disjoint streams (per-stream time ordering
  // is a hard precondition) while reader threads hammer snapshot() and
  // stream_names() and refit workers run in the background. There are no
  // value assertions beyond the final counts -- the point is that the CI
  // sanitizer job executes this interleaving and finds no races.
  live::Monitor monitor(test_options());
  constexpr int kWriters = 4;
  constexpr int kReaders = 2;
  constexpr int kSamples = 120;

  std::atomic<bool> writers_done{false};
  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&monitor, w] {
      const std::string stream = "w" + std::to_string(w);
      for (int i = 0; i < kSamples; ++i) {
        const double t = static_cast<double>(i);
        monitor.ingest(stream, t, v_curve(t));
      }
    });
  }
  for (int r = 0; r < kReaders; ++r) {
    threads.emplace_back([&monitor, &writers_done] {
      while (!writers_done.load()) {
        for (const live::StreamSnapshot& snap : monitor.snapshot()) {
          ASSERT_FALSE(snap.name.empty());
        }
        (void)monitor.stream_names();
        (void)monitor.stream_count();
      }
    });
  }
  for (int w = 0; w < kWriters; ++w) threads[static_cast<std::size_t>(w)].join();
  writers_done.store(true);
  for (std::size_t i = kWriters; i < threads.size(); ++i) threads[i].join();
  monitor.drain();

  ASSERT_EQ(monitor.stream_count(), static_cast<std::size_t>(kWriters));
  for (const live::StreamSnapshot& snap : monitor.snapshot()) {
    EXPECT_EQ(snap.samples_seen, static_cast<std::uint64_t>(kSamples));
    EXPECT_EQ(snap.event_ordinal, 1u);  // every stream saw the one disruption
  }
}

}  // namespace
