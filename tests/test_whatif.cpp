#include "core/whatif.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/predictor.hpp"
#include "data/recessions.hpp"

namespace prm::core {
namespace {

FitResult baseline_fit() {
  const auto& ds = data::recession("1981-83");
  return fit_model("competing-risks", ds.series, ds.holdout);
}

TEST(WhatIf, KappaOneIsIdentity) {
  const FitResult fit = baseline_fit();
  for (double t : {0.0, 5.0, 16.0, 30.0, 47.0}) {
    EXPECT_NEAR(accelerated_value(fit, 1.0, t), fit.evaluate(t), 1e-12);
  }
  const auto base = predict_recovery_time(fit, 1.0);
  const auto acc = accelerated_recovery_time(fit, 1.0, 1.0);
  ASSERT_TRUE(base.has_value());
  ASSERT_TRUE(acc.has_value());
  EXPECT_NEAR(*acc, *base, 1e-9);
}

TEST(WhatIf, DegradationLegIsUntouched) {
  const FitResult fit = baseline_fit();
  const double t_d = predict_trough_time(fit);
  for (double t = 0.0; t < t_d; t += 2.0) {
    EXPECT_DOUBLE_EQ(accelerated_value(fit, 3.0, t), fit.evaluate(t));
  }
}

TEST(WhatIf, AccelerationHalvesTheRecoverySpan) {
  const FitResult fit = baseline_fit();
  const double t_d = predict_trough_time(fit);
  const auto base = predict_recovery_time(fit, 1.0, t_d);
  const auto twice = accelerated_recovery_time(fit, 2.0, 1.0);
  ASSERT_TRUE(base.has_value());
  ASSERT_TRUE(twice.has_value());
  EXPECT_NEAR(*twice - t_d, (*base - t_d) / 2.0, 1e-9);
  // And the accelerated curve really is at the level then.
  EXPECT_NEAR(accelerated_value(fit, 2.0, *twice), 1.0, 1e-6);
}

TEST(WhatIf, SlowdownDelaysRecovery) {
  const FitResult fit = baseline_fit();
  const auto slow = accelerated_recovery_time(fit, 0.5, 1.0);
  const auto base = predict_recovery_time(fit, 1.0);
  ASSERT_TRUE(slow.has_value());
  EXPECT_GT(*slow, *base);
}

TEST(WhatIf, RequiredAccelerationInvertsTheForecast) {
  const FitResult fit = baseline_fit();
  const auto base = predict_recovery_time(fit, 1.0);
  ASSERT_TRUE(base.has_value());
  const double t_d = predict_trough_time(fit);
  const double target = t_d + 0.5 * (*base - t_d);  // want it twice as fast
  const auto kappa = required_acceleration(fit, 1.0, target);
  ASSERT_TRUE(kappa.has_value());
  EXPECT_NEAR(*kappa, 2.0, 1e-9);
  // Round trip: that kappa hits the target.
  const auto hit = accelerated_recovery_time(fit, *kappa, 1.0);
  ASSERT_TRUE(hit.has_value());
  EXPECT_NEAR(*hit, target, 1e-9);
}

TEST(WhatIf, TargetBeforeTroughIsImpossible) {
  const FitResult fit = baseline_fit();
  const double t_d = predict_trough_time(fit);
  EXPECT_FALSE(required_acceleration(fit, 1.0, t_d - 1.0).has_value());
  EXPECT_FALSE(required_acceleration(fit, 1.0, t_d).has_value());
}

TEST(WhatIf, UnreachableLevelPropagatesNullopt) {
  const FitResult fit = baseline_fit();
  EXPECT_FALSE(accelerated_recovery_time(fit, 2.0, 10.0).has_value());  // level 10x nominal
  EXPECT_FALSE(required_acceleration(fit, 10.0, 100.0).has_value());
}

TEST(WhatIf, InvalidKappaThrows) {
  const FitResult fit = baseline_fit();
  EXPECT_THROW(accelerated_value(fit, 0.0, 5.0), std::invalid_argument);
  EXPECT_THROW(accelerated_value(fit, -1.0, 5.0), std::invalid_argument);
  EXPECT_THROW(accelerated_recovery_time(fit, 0.0, 1.0), std::invalid_argument);
}

}  // namespace
}  // namespace prm::core
