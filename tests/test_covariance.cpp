#include "core/covariance.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "core/bathtub.hpp"
#include "data/recessions.hpp"
#include "numerics/linalg.hpp"
#include "stats/confidence.hpp"

namespace prm::core {
namespace {

// Linear-in-parameters model (the quadratic): the NLS covariance formula is
// EXACT, so we can verify against the textbook linear-regression answer.
FitResult noisy_quadratic_fit(double noise_sigma, std::uint64_t seed,
                              std::size_t n = 40, std::size_t holdout = 5) {
  const QuadraticBathtubModel m;
  const num::Vector truth{1.0, -0.03, 0.0006};
  std::mt19937_64 rng(seed);
  std::normal_distribution<double> noise(0.0, noise_sigma);
  std::vector<double> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = m.evaluate(static_cast<double>(i), truth) + noise(rng);
  }
  return fit_model(m, data::PerformanceSeries("noisy", std::move(v)), holdout);
}

TEST(ParameterInference, MatchesTextbookLinearRegressionCovariance) {
  const FitResult fit = noisy_quadratic_fit(0.002, 42);
  const auto inf = parameter_inference(fit);
  ASSERT_TRUE(inf.has_value());

  // Build the design matrix and compute sigma^2 (X^T X)^-1 directly.
  const auto window = fit.fit_window();
  num::Matrix x(window.size(), 3);
  for (std::size_t i = 0; i < window.size(); ++i) {
    const double t = window.time(i);
    x(i, 0) = 1.0;
    x(i, 1) = t;
    x(i, 2) = t * t;
  }
  const auto xtx_inv = num::inverse(num::gram(x));
  ASSERT_TRUE(xtx_inv.has_value());
  const double sigma2 = fit.sse / static_cast<double>(window.size() - 3);
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 3; ++c) {
      EXPECT_NEAR(inf->covariance(r, c), sigma2 * (*xtx_inv)(r, c),
                  1e-10 * std::fabs(sigma2 * (*xtx_inv)(r, c)) + 1e-18);
    }
  }
}

TEST(ParameterInference, StandardErrorsCoverTruthAcrossReplicates) {
  // Frequentist check: |theta_hat - theta_true| < 3 se in the large majority
  // of noise realizations.
  const num::Vector truth{1.0, -0.03, 0.0006};
  int covered = 0;
  int total = 0;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const FitResult fit = noisy_quadratic_fit(0.002, seed);
    const auto inf = parameter_inference(fit);
    ASSERT_TRUE(inf.has_value());
    for (std::size_t i = 0; i < 3; ++i) {
      ++total;
      if (std::fabs(fit.parameters()[i] - truth[i]) < 3.0 * inf->standard_errors[i]) {
        ++covered;
      }
    }
  }
  EXPECT_GE(covered, total - 4);  // ~99.7% nominal; allow slack
}

TEST(ParameterInference, CorrelationMatrixIsValid) {
  const FitResult fit = noisy_quadratic_fit(0.002, 7);
  const auto inf = parameter_inference(fit);
  ASSERT_TRUE(inf.has_value());
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(inf->correlation(i, i), 1.0, 1e-12);
    for (std::size_t c = 0; c < 3; ++c) {
      EXPECT_LE(std::fabs(inf->correlation(i, c)), 1.0 + 1e-12);
      EXPECT_NEAR(inf->correlation(i, c), inf->correlation(c, i), 1e-12);
    }
  }
  // In a polynomial fit on [0, n], slope and curvature are strongly
  // negatively correlated.
  EXPECT_LT(inf->correlation(1, 2), -0.8);
}

TEST(ParameterInference, RequiresDegreesOfFreedom) {
  const QuadraticBathtubModel m;
  const data::PerformanceSeries s("tiny", {1.0, 0.98, 0.99});
  FitResult fit(std::make_shared<QuadraticBathtubModel>(), {1.0, -0.02, 0.001}, s, 0);
  fit.sse = 1e-6;
  EXPECT_THROW(parameter_inference(fit), std::invalid_argument);
}

// A model with two perfectly redundant parameters: J^T J is singular by
// construction, exercising the nullopt paths.
class RedundantModel final : public ResilienceModel {
 public:
  std::string name() const override { return "redundant"; }
  std::string description() const override { return "P(t) = p0 + p1 (unidentifiable)"; }
  std::size_t num_parameters() const override { return 2; }
  std::vector<std::string> parameter_names() const override { return {"p0", "p1"}; }
  std::vector<opt::Bound> parameter_bounds() const override {
    return {opt::Bound::free(), opt::Bound::free()};
  }
  double evaluate(double, const num::Vector& p) const override { return p[0] + p[1]; }
  std::vector<num::Vector> initial_guesses(
      const data::PerformanceSeries&) const override {
    return {{0.5, 0.5}};
  }
  std::pair<num::Vector, num::Vector> search_box(
      const data::PerformanceSeries&) const override {
    return {{0.0, 0.0}, {2.0, 2.0}};
  }
  std::unique_ptr<ResilienceModel> clone() const override {
    return std::make_unique<RedundantModel>(*this);
  }
};

TEST(ParameterInference, SingularJacobianReturnsNullopt) {
  std::vector<double> v(12, 1.0);
  v[3] = 0.99;  // some variance so SSE > 0
  FitResult fit(std::make_shared<RedundantModel>(), {0.5, 0.5},
                data::PerformanceSeries("flat", std::move(v)), 2);
  fit.sse = 1e-4;
  fit.stop_reason = opt::StopReason::kConverged;
  EXPECT_FALSE(parameter_inference(fit).has_value());
  EXPECT_FALSE(delta_method_band(fit).has_value());
}

TEST(DeltaMethodBand, WidensOutsideTheFittingWindow) {
  const FitResult fit = noisy_quadratic_fit(0.002, 3, 48, 8);
  const auto band = delta_method_band(fit);
  ASSERT_TRUE(band.has_value());
  // Width at the last extrapolated point must exceed the width in the middle
  // of the fitting window.
  const std::size_t mid = fit.fit_count() / 2;
  const std::size_t last = fit.series().size() - 1;
  const double w_mid = band->upper[mid] - band->lower[mid];
  const double w_last = band->upper[last] - band->lower[last];
  EXPECT_GT(w_last, 1.2 * w_mid);
}

TEST(DeltaMethodBand, PredictionBandContainsCurveBand) {
  const FitResult fit = noisy_quadratic_fit(0.002, 5);
  const auto pred = delta_method_band(fit, 0.05, true);
  const auto curve = delta_method_band(fit, 0.05, false);
  ASSERT_TRUE(pred.has_value());
  ASSERT_TRUE(curve.has_value());
  for (std::size_t i = 0; i < pred->center.size(); ++i) {
    EXPECT_LE(pred->lower[i], curve->lower[i] + 1e-12);
    EXPECT_GE(pred->upper[i], curve->upper[i] - 1e-12);
  }
}

TEST(DeltaMethodBand, CoverageIsNominalOnGaussianData) {
  // Pool coverage over several replicates: the 95% prediction band should
  // cover ~95% of all observations.
  int inside = 0;
  int total = 0;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const FitResult fit = noisy_quadratic_fit(0.003, seed);
    const auto band = delta_method_band(fit);
    ASSERT_TRUE(band.has_value());
    const auto obs = fit.series().values();
    for (std::size_t i = 0; i < obs.size(); ++i) {
      if (obs[i] >= band->lower[i] && obs[i] <= band->upper[i]) ++inside;
      ++total;
    }
  }
  const double coverage = 100.0 * inside / total;
  EXPECT_GT(coverage, 90.0);
  EXPECT_LT(coverage, 99.9);
}

TEST(DeltaMethodBand, WorksOnRealRecessionAndBeatsConstantBandShape) {
  const auto& ds = data::recession("1990-93");
  const FitResult fit = fit_model("competing-risks", ds.series, ds.holdout);
  const auto band = delta_method_band(fit);
  ASSERT_TRUE(band.has_value());
  // The band over the holdout (extrapolated) region is wider than over the
  // center of the fit window -- the property Eq. 13's constant band lacks.
  const std::size_t mid = fit.fit_count() / 2;
  const std::size_t last = ds.series.size() - 1;
  EXPECT_GT(band->upper[last] - band->lower[last], band->upper[mid] - band->lower[mid]);
  // And it still covers the data well.
  const double ec = stats::empirical_coverage(ds.series.values(), *band);
  EXPECT_GE(ec, 90.0);
}

}  // namespace
}  // namespace prm::core
