#include "numerics/polynomial.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace prm::num {
namespace {

TEST(Polyval, HornerEvaluation) {
  // 2 + 3t - t^2 at t = 2 -> 2 + 6 - 4 = 4.
  EXPECT_DOUBLE_EQ(polyval({2.0, 3.0, -1.0}, 2.0), 4.0);
  EXPECT_DOUBLE_EQ(polyval({}, 5.0), 0.0);
  EXPECT_DOUBLE_EQ(polyval({7.0}, 123.0), 7.0);
}

TEST(Polyder, Derivative) {
  // d/dt (1 + 2t + 3t^2) = 2 + 6t.
  EXPECT_EQ(polyder({1.0, 2.0, 3.0}), (std::vector<double>{2.0, 6.0}));
  EXPECT_TRUE(polyder({5.0}).empty());
}

TEST(QuadraticRoots, TwoDistinctRealRoots) {
  // (t - 1)(t - 3) = t^2 - 4t + 3.
  const auto r = quadratic_roots(1.0, -4.0, 3.0);
  ASSERT_EQ(r.size(), 2u);
  EXPECT_NEAR(r[0], 1.0, 1e-14);
  EXPECT_NEAR(r[1], 3.0, 1e-14);
}

TEST(QuadraticRoots, NoRealRoots) {
  EXPECT_TRUE(quadratic_roots(1.0, 0.0, 1.0).empty());
}

TEST(QuadraticRoots, RepeatedRoot) {
  const auto r = quadratic_roots(1.0, -2.0, 1.0);
  ASSERT_EQ(r.size(), 1u);
  EXPECT_NEAR(r[0], 1.0, 1e-12);
}

TEST(QuadraticRoots, DegeneratesToLinear) {
  const auto r = quadratic_roots(0.0, 2.0, -4.0);
  ASSERT_EQ(r.size(), 1u);
  EXPECT_DOUBLE_EQ(r[0], 2.0);
  EXPECT_TRUE(quadratic_roots(0.0, 0.0, 3.0).empty());
}

TEST(QuadraticRoots, NumericallyStableForSmallRoot) {
  // Roots 1e-8 and 1e8: naive formula loses the small one to cancellation.
  const double r1 = 1e-8;
  const double r2 = 1e8;
  const auto r = quadratic_roots(1.0, -(r1 + r2), r1 * r2);
  ASSERT_EQ(r.size(), 2u);
  EXPECT_NEAR(r[0] / r1, 1.0, 1e-9);
  EXPECT_NEAR(r[1] / r2, 1.0, 1e-9);
}

TEST(CubicRoots, ThreeRealRoots) {
  // (t-1)(t-2)(t-4) = t^3 - 7t^2 + 14t - 8.
  const auto r = cubic_roots(1.0, -7.0, 14.0, -8.0);
  ASSERT_EQ(r.size(), 3u);
  EXPECT_NEAR(r[0], 1.0, 1e-9);
  EXPECT_NEAR(r[1], 2.0, 1e-9);
  EXPECT_NEAR(r[2], 4.0, 1e-9);
}

TEST(CubicRoots, OneRealRoot) {
  // (t-2)(t^2+1) = t^3 - 2t^2 + t - 2.
  const auto r = cubic_roots(1.0, -2.0, 1.0, -2.0);
  ASSERT_EQ(r.size(), 1u);
  EXPECT_NEAR(r[0], 2.0, 1e-9);
}

TEST(CubicRoots, TripleRoot) {
  // (t-1)^3 = t^3 - 3t^2 + 3t - 1.
  const auto r = cubic_roots(1.0, -3.0, 3.0, -1.0);
  ASSERT_GE(r.size(), 1u);
  for (double x : r) EXPECT_NEAR(x, 1.0, 1e-5);
}

TEST(CubicRoots, DegeneratesToQuadratic) {
  const auto r = cubic_roots(0.0, 1.0, -4.0, 3.0);
  ASSERT_EQ(r.size(), 2u);
  EXPECT_NEAR(r[0], 1.0, 1e-12);
  EXPECT_NEAR(r[1], 3.0, 1e-12);
}

TEST(CubicRoots, RootsSatisfyPolynomial) {
  const double a = 2.0, b = -3.0, c = -11.0, d = 6.0;
  for (double t : cubic_roots(a, b, c, d)) {
    EXPECT_NEAR(((a * t + b) * t + c) * t + d, 0.0, 1e-8);
  }
}

TEST(FirstRootAfter, PicksSmallestBeyondThreshold) {
  const std::vector<double> roots{-1.0, 2.0, 5.0};
  double out = 0.0;
  ASSERT_TRUE(first_root_after(roots, 0.0, &out));
  EXPECT_DOUBLE_EQ(out, 2.0);
  ASSERT_TRUE(first_root_after(roots, 3.0, &out));
  EXPECT_DOUBLE_EQ(out, 5.0);
  EXPECT_FALSE(first_root_after(roots, 6.0, &out));
}

}  // namespace
}  // namespace prm::num
