#include "optimize/levenberg_marquardt.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace prm::opt {
namespace {

// Linear least squares: LM must land on the exact normal-equation solution
// in very few iterations.
ResidualProblem linear_problem() {
  ResidualProblem p;
  p.num_parameters = 2;
  p.num_residuals = 4;
  p.residuals = [](const num::Vector& x) {
    // Fit y = a + b t to exact data from a = 1, b = 2.
    num::Vector r(4);
    for (int i = 0; i < 4; ++i) {
      r[i] = (1.0 + 2.0 * i) - (x[0] + x[1] * i);
    }
    return r;
  };
  return p;
}

TEST(LevenbergMarquardt, SolvesLinearProblemExactly) {
  const OptimizeResult r = levenberg_marquardt(linear_problem(), {0.0, 0.0});
  EXPECT_TRUE(r.converged());
  EXPECT_NEAR(r.parameters[0], 1.0, 1e-8);
  EXPECT_NEAR(r.parameters[1], 2.0, 1e-8);
  EXPECT_NEAR(r.cost, 0.0, 1e-16);
}

TEST(LevenbergMarquardt, RecoversExponentialDecayParameters) {
  // y = A exp(-k t) sampled exactly; recover (A, k) from a poor start.
  const double A = 2.5;
  const double k = 0.7;
  ResidualProblem p;
  p.num_parameters = 2;
  p.num_residuals = 20;
  p.residuals = [A, k](const num::Vector& x) {
    num::Vector r(20);
    for (int i = 0; i < 20; ++i) {
      const double t = 0.25 * i;
      r[i] = A * std::exp(-k * t) - x[0] * std::exp(-x[1] * t);
    }
    return r;
  };
  const OptimizeResult r = levenberg_marquardt(p, {1.0, 0.1});
  EXPECT_TRUE(r.converged());
  EXPECT_NEAR(r.parameters[0], A, 1e-6);
  EXPECT_NEAR(r.parameters[1], k, 1e-6);
}

TEST(LevenbergMarquardt, MinimizesRosenbrockAsResiduals) {
  // Rosenbrock = ||r||^2 with r = (10(y - x^2), 1 - x): global minimum (1,1).
  ResidualProblem p;
  p.num_parameters = 2;
  p.num_residuals = 2;
  p.residuals = [](const num::Vector& x) {
    return num::Vector{10.0 * (x[1] - x[0] * x[0]), 1.0 - x[0]};
  };
  LmOptions opts;
  opts.max_iterations = 500;
  const OptimizeResult r = levenberg_marquardt(p, {-1.2, 1.0}, opts);
  EXPECT_TRUE(r.usable());
  EXPECT_NEAR(r.parameters[0], 1.0, 1e-6);
  EXPECT_NEAR(r.parameters[1], 1.0, 1e-6);
}

TEST(LevenbergMarquardt, UsesAnalyticJacobianWhenProvided) {
  ResidualProblem p = linear_problem();
  int jacobian_calls = 0;
  p.jacobian = [&jacobian_calls](const num::Vector&) {
    ++jacobian_calls;
    num::Matrix j(4, 2);
    for (int i = 0; i < 4; ++i) {
      j(i, 0) = -1.0;
      j(i, 1) = -static_cast<double>(i);
    }
    return j;
  };
  const OptimizeResult r = levenberg_marquardt(p, {5.0, -3.0});
  EXPECT_TRUE(r.converged());
  EXPECT_GT(jacobian_calls, 0);
  EXPECT_NEAR(r.parameters[0], 1.0, 1e-8);
}

TEST(LevenbergMarquardt, ReportsNumericalFailureOnNanResiduals) {
  ResidualProblem p;
  p.num_parameters = 1;
  p.num_residuals = 1;
  p.residuals = [](const num::Vector&) {
    return num::Vector{std::numeric_limits<double>::quiet_NaN()};
  };
  const OptimizeResult r = levenberg_marquardt(p, {1.0});
  EXPECT_EQ(r.stop_reason, StopReason::kNumericalFailure);
  EXPECT_FALSE(r.usable());
}

TEST(LevenbergMarquardt, StaysFiniteWhenResidualsBlowUpAwayFromStart) {
  // Residual is finite near 0 but NaN for |x| > 2: LM must reject bad steps.
  ResidualProblem p;
  p.num_parameters = 1;
  p.num_residuals = 2;
  p.residuals = [](const num::Vector& x) {
    if (std::fabs(x[0]) > 2.0) {
      return num::Vector{std::numeric_limits<double>::quiet_NaN(), 0.0};
    }
    return num::Vector{x[0] - 1.0, 0.5 * (x[0] - 1.0)};
  };
  const OptimizeResult r = levenberg_marquardt(p, {0.0});
  EXPECT_TRUE(r.usable());
  EXPECT_NEAR(r.parameters[0], 1.0, 1e-6);
}

TEST(LevenbergMarquardt, RespectsIterationBudget) {
  ResidualProblem p;
  p.num_parameters = 2;
  p.num_residuals = 2;
  p.residuals = [](const num::Vector& x) {
    return num::Vector{10.0 * (x[1] - x[0] * x[0]), 1.0 - x[0]};
  };
  LmOptions opts;
  opts.max_iterations = 3;
  const OptimizeResult r = levenberg_marquardt(p, {-1.2, 1.0}, opts);
  EXPECT_LE(r.iterations, 3);
}

TEST(GaussNewton, SolvesLinearProblem) {
  const OptimizeResult r = gauss_newton(linear_problem(), {0.0, 0.0});
  EXPECT_TRUE(r.usable());
  EXPECT_NEAR(r.parameters[0], 1.0, 1e-8);
  EXPECT_NEAR(r.parameters[1], 2.0, 1e-8);
}

TEST(GaussNewton, StallsGracefullyOnHardProblem) {
  ResidualProblem p;
  p.num_parameters = 2;
  p.num_residuals = 2;
  p.residuals = [](const num::Vector& x) {
    return num::Vector{10.0 * (x[1] - x[0] * x[0]), 1.0 - x[0]};
  };
  const OptimizeResult r = gauss_newton(p, {-1.2, 1.0});
  // No assertion on the minimum: undamped GN may stall, but must not blow up.
  EXPECT_TRUE(std::isfinite(r.cost));
}

TEST(StopReason, ToStringCoversAllValues) {
  EXPECT_STREQ(to_string(StopReason::kConverged), "converged");
  EXPECT_STREQ(to_string(StopReason::kMaxIterations), "max-iterations");
  EXPECT_STREQ(to_string(StopReason::kStalled), "stalled");
  EXPECT_STREQ(to_string(StopReason::kNumericalFailure), "numerical-failure");
}

}  // namespace
}  // namespace prm::opt
