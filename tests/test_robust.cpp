#include "optimize/robust.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/bathtub.hpp"
#include "core/fitting.hpp"
#include "data/recessions.hpp"
#include "numerics/differentiate.hpp"

namespace prm::opt {
namespace {

TEST(LossRho, SquaredIsHalfRSquared) {
  EXPECT_DOUBLE_EQ(loss_rho(LossKind::kSquared, 3.0, 1.0), 4.5);
  EXPECT_DOUBLE_EQ(loss_rho(LossKind::kSquared, -3.0, 1.0), 4.5);
}

TEST(LossRho, HuberQuadraticInsideLinearOutside) {
  const double scale = 2.0;
  // Inside: rho = r^2/2.
  EXPECT_DOUBLE_EQ(loss_rho(LossKind::kHuber, 1.0, scale), 0.5);
  EXPECT_DOUBLE_EQ(loss_rho(LossKind::kHuber, 2.0, scale), 2.0);  // boundary
  // Outside: rho = scale (|r| - scale/2).
  EXPECT_DOUBLE_EQ(loss_rho(LossKind::kHuber, 5.0, scale), 2.0 * (5.0 - 1.0));
  // Continuous at the boundary.
  EXPECT_NEAR(loss_rho(LossKind::kHuber, 2.0 + 1e-9, scale),
              loss_rho(LossKind::kHuber, 2.0 - 1e-9, scale), 1e-8);
}

TEST(LossRho, CauchyGrowsLogarithmically) {
  const double scale = 1.0;
  const double r10 = loss_rho(LossKind::kCauchy, 10.0, scale);
  const double r100 = loss_rho(LossKind::kCauchy, 100.0, scale);
  // Quadratic would grow 100x; Cauchy grows ~2x (log).
  EXPECT_LT(r100 / r10, 3.0);
  EXPECT_NEAR(loss_rho(LossKind::kCauchy, 1.0, 1.0), 0.5 * std::log(2.0), 1e-14);
}

TEST(LossRho, RejectsBadScale) {
  EXPECT_THROW(loss_rho(LossKind::kHuber, 1.0, 0.0), std::invalid_argument);
  EXPECT_THROW(loss_rho(LossKind::kHuber, 1.0, -1.0), std::invalid_argument);
}

TEST(LossWhiten, PreservesSignAndSquaresBackToRho) {
  for (LossKind kind : {LossKind::kHuber, LossKind::kCauchy}) {
    for (double r : {-5.0, -0.5, 0.0, 0.3, 7.0}) {
      const double s = loss_whiten(kind, r, 1.0);
      EXPECT_EQ(std::signbit(s), std::signbit(r));
      EXPECT_NEAR(0.5 * s * s, loss_rho(kind, r, 1.0), 1e-12);
    }
  }
  EXPECT_DOUBLE_EQ(loss_whiten(LossKind::kSquared, -2.5, 1.0), -2.5);
}

TEST(MakeRobust, SquaredReturnsIdenticalResiduals) {
  const ResidualFn base = [](const num::Vector& p) {
    return num::Vector{p[0] - 1.0, 2.0 * p[0]};
  };
  const ResidualFn wrapped = make_robust(base, LossKind::kSquared, 1.0);
  const num::Vector p{3.0};
  EXPECT_EQ(base(p), wrapped(p));
}

TEST(MakeRobust, HuberShrinksLargeResidualsOnly) {
  const ResidualFn base = [](const num::Vector&) {
    return num::Vector{0.005, 0.5};  // one inlier, one outlier (scale 0.01)
  };
  const ResidualFn wrapped = make_robust(base, LossKind::kHuber, 0.01);
  const num::Vector r = wrapped({0.0});
  EXPECT_NEAR(r[0], 0.005, 1e-12);           // inside the scale: untouched
  EXPECT_LT(r[1], 0.5);                      // outlier: shrunk
  EXPECT_NEAR(0.5 * r[1] * r[1], 0.01 * (0.5 - 0.005), 1e-12);
}

TEST(MakeRobust, RejectsBadScale) {
  const ResidualFn base = [](const num::Vector&) { return num::Vector{1.0}; };
  EXPECT_THROW(make_robust(base, LossKind::kHuber, 0.0), std::invalid_argument);
}

TEST(RobustFit, HuberRecoversTruthDespiteGrossOutliers) {
  using namespace prm::core;
  // Exact quadratic data with two gross outliers in the fit window.
  const QuadraticBathtubModel m;
  const num::Vector truth{1.0, -0.03, 0.0006};
  std::vector<double> v(40);
  for (std::size_t i = 0; i < 40; ++i) v[i] = m.evaluate(static_cast<double>(i), truth);
  v[10] += 0.3;
  v[22] -= 0.3;
  const data::PerformanceSeries corrupted("outliers", std::move(v));

  FitOptions squared;
  FitOptions huber;
  huber.loss = LossKind::kHuber;
  huber.loss_scale = 0.01;

  const FitResult fit_sq = fit_model(m, corrupted, 4, squared);
  const FitResult fit_hu = fit_model(m, corrupted, 4, huber);

  // Parameter error: Huber must be far closer to the truth.
  const auto param_err = [&truth](const FitResult& f) {
    double e = 0.0;
    for (std::size_t i = 0; i < 3; ++i) {
      e += std::fabs(f.parameters()[i] - truth[i]) / std::fabs(truth[i]);
    }
    return e;
  };
  EXPECT_LT(param_err(fit_hu), 0.2 * param_err(fit_sq));
  EXPECT_NEAR(fit_hu.parameters()[0], truth[0], 5e-3);
}

TEST(RobustFit, ReportedSseIsAlwaysPlainSse) {
  using namespace prm::core;
  const auto& ds = data::recession("1990-93");
  FitOptions huber;
  huber.loss = LossKind::kHuber;
  huber.loss_scale = 0.005;
  const FitResult fit = fit_model("competing-risks", ds.series, ds.holdout, huber);
  // Recompute plain SSE from parameters; must match the reported value.
  const auto w = fit.fit_window();
  double sse = 0.0;
  for (std::size_t i = 0; i < w.size(); ++i) {
    const double e = w.value(i) - fit.evaluate(w.time(i));
    sse += e * e;
  }
  EXPECT_NEAR(fit.sse, sse, 1e-12);
}

TEST(RobustFit, MatchesSquaredLossOnCleanData) {
  using namespace prm::core;
  const auto& ds = data::recession("2001-05");
  FitOptions huber;
  huber.loss = LossKind::kHuber;
  huber.loss_scale = 0.05;  // residuals are ~1e-3: everything is an inlier
  const FitResult clean = fit_model("quadratic", ds.series, ds.holdout);
  const FitResult robust = fit_model("quadratic", ds.series, ds.holdout, huber);
  EXPECT_NEAR(clean.sse, robust.sse, 1e-6);
}

TEST(LossNames, AllCovered) {
  EXPECT_STREQ(to_string(LossKind::kSquared), "squared");
  EXPECT_STREQ(to_string(LossKind::kHuber), "huber");
  EXPECT_STREQ(to_string(LossKind::kCauchy), "cauchy");
}

TEST(LossDWhiten, MatchesDerivativeOfWhitenedResidual) {
  for (const LossKind kind : {LossKind::kSquared, LossKind::kHuber, LossKind::kCauchy}) {
    const double scale = 0.4;
    for (double r : {-2.0, -0.39, -0.1, 0.1, 0.41, 3.0}) {
      const double h = 1e-7;
      const double numeric =
          (loss_whiten(kind, r + h, scale) - loss_whiten(kind, r - h, scale)) / (2 * h);
      EXPECT_NEAR(loss_dwhiten(kind, r, scale), numeric, 1e-5)
          << to_string(kind) << " at r=" << r;
    }
  }
}

TEST(LossDWhiten, ContinuousAtZeroAndAtTheHuberKnee) {
  EXPECT_DOUBLE_EQ(loss_dwhiten(LossKind::kCauchy, 0.0, 1.0), 1.0);
  EXPECT_NEAR(loss_dwhiten(LossKind::kHuber, 1.0 - 1e-9, 1.0), 1.0, 1e-6);
  EXPECT_NEAR(loss_dwhiten(LossKind::kHuber, 1.0 + 1e-9, 1.0), 1.0, 1e-6);
}

TEST(MakeRobustProblem, RescaledJacobianMatchesCentralDifference) {
  // The robust wrapper chain-rules the analytic Jacobian through the
  // whitening: J_robust(i, :) = dwhiten(r_i) * J(i, :). Cross-check against
  // a central-difference Jacobian of the whitened residual function.
  ResidualProblem base;
  base.num_parameters = 2;
  base.num_residuals = 3;
  const num::Vector t{0.0, 1.0, 2.0};
  const num::Vector y{1.0, 0.2, 0.9};
  base.residuals = [&t, &y](const num::Vector& p) {
    num::Vector r(t.size());
    for (std::size_t i = 0; i < t.size(); ++i) {
      r[i] = y[i] - (p[0] + p[1] * t[i] * t[i]);
    }
    return r;
  };
  base.jacobian = [&t](const num::Vector&) {
    num::Matrix j(t.size(), 2);
    for (std::size_t i = 0; i < t.size(); ++i) {
      j(i, 0) = -1.0;
      j(i, 1) = -t[i] * t[i];
    }
    return j;
  };

  for (const LossKind kind : {LossKind::kHuber, LossKind::kCauchy}) {
    const ResidualProblem robust = make_robust_problem(base, kind, 0.3);
    ASSERT_TRUE(static_cast<bool>(robust.jacobian));
    // Residuals {0.15, -0.59, 0.29}: inliers and outliers for scale 0.3, but
    // none exactly on the Huber knee (central differences straddle the kink).
    const num::Vector p{0.85, -0.06};
    const num::Matrix analytic = robust.jacobian(p);
    const num::Matrix numeric = num::jacobian_central(robust.residuals, p);
    ASSERT_EQ(analytic.rows(), numeric.rows());
    ASSERT_EQ(analytic.cols(), numeric.cols());
    for (std::size_t i = 0; i < analytic.rows(); ++i) {
      for (std::size_t c = 0; c < analytic.cols(); ++c) {
        EXPECT_NEAR(analytic(i, c), numeric(i, c), 1e-6)
            << to_string(kind) << " entry (" << i << "," << c << ")";
      }
    }
  }
}

TEST(MakeRobustProblem, SquaredLossPassesProblemThroughUntouched) {
  ResidualProblem base;
  base.num_parameters = 1;
  base.num_residuals = 1;
  base.residuals = [](const num::Vector& p) { return num::Vector{p[0] - 2.0}; };
  const ResidualProblem same = make_robust_problem(base, LossKind::kSquared, 0.5);
  EXPECT_EQ(same.residuals({3.0})[0], 1.0);
  EXPECT_FALSE(static_cast<bool>(same.jacobian));
}

TEST(RobustFit, AnalyticAndNumericJacobiansAgreeOnTheOptimum) {
  // End-to-end: a Huber fit with the analytic (dual + whitening) Jacobian
  // must land on the same optimum as the central-difference fallback, while
  // spending fewer residual evaluations.
  using namespace prm::core;
  const auto& ds = data::recession("1990-93");
  FitOptions analytic;
  analytic.loss = LossKind::kHuber;
  FitOptions numeric = analytic;
  numeric.analytic_jacobian = false;
  const FitResult a = fit_model("competing-risks", ds.series, ds.holdout, analytic);
  const FitResult n = fit_model("competing-risks", ds.series, ds.holdout, numeric);
  ASSERT_TRUE(a.success());
  ASSERT_TRUE(n.success());
  for (std::size_t i = 0; i < a.parameters().size(); ++i) {
    EXPECT_NEAR(a.parameters()[i], n.parameters()[i],
                1e-5 * std::max(1.0, std::fabs(n.parameters()[i])));
  }
  EXPECT_LT(a.function_evaluations, n.function_evaluations);
}

}  // namespace
}  // namespace prm::opt
