#include "core/scorecard.hpp"

#include <gtest/gtest.h>

#include "data/generator.hpp"

namespace prm::core {
namespace {

TEST(AssessEvent, BasicAnatomyOfARecession) {
  const auto& ds = data::recession("1990-93");
  const ScorecardEntry e = assess_event(ds.series);
  EXPECT_EQ(e.name, "1990-93");
  EXPECT_EQ(e.duration, 48u);
  EXPECT_NEAR(e.depth, 1.0 - 0.9837, 1e-9);
  EXPECT_EQ(e.months_to_trough, 15u);
  ASSERT_TRUE(e.months_to_recovery.has_value());
  // Regains 1.0 at month 35 -> 20 months after the trough.
  EXPECT_EQ(*e.months_to_recovery, 20u);
  EXPECT_EQ(e.metrics.size(), kAllMetrics.size());
}

TEST(AssessEvent, RetrospectiveMetricsHaveZeroError) {
  const ScorecardEntry e = assess_event(data::recession("1981-83").series);
  for (const MetricValue& m : e.metrics) {
    EXPECT_DOUBLE_EQ(m.actual, m.predicted);
    EXPECT_DOUBLE_EQ(m.relative_error, 0.0);
  }
}

TEST(AssessEvent, UnrecoveredEventHasNoRecoveryTime) {
  const ScorecardEntry e = assess_event(data::recession("2007-09").series);
  EXPECT_FALSE(e.months_to_recovery.has_value());  // ends at 0.96
}

TEST(AssessEvent, ScoreIsNormalizedAvgPreserved) {
  const ScorecardEntry e = assess_event(data::recession("1974-76").series);
  for (const MetricValue& m : e.metrics) {
    if (m.kind == MetricKind::kNormalizedAvgPreserved) {
      EXPECT_DOUBLE_EQ(e.resilience_score, m.actual);
    }
  }
}

TEST(AssessEvent, RejectsTinySeries) {
  EXPECT_THROW(assess_event(data::PerformanceSeries("t", {1.0, 0.9})),
               std::invalid_argument);
}

TEST(Scorecard, SortsMostResilientFirst) {
  const auto entries = recession_scorecard();
  ASSERT_EQ(entries.size(), 7u);
  for (std::size_t i = 1; i < entries.size(); ++i) {
    EXPECT_GE(entries[i - 1].resilience_score, entries[i].resilience_score);
  }
  // The 14%-collapse 2020-21 recession must rank least resilient; the deep
  // 2007-09 episode second-to-last.
  EXPECT_EQ(entries.back().name, "2020-21");
  EXPECT_EQ(entries[entries.size() - 2].name, "2007-09");
}

TEST(Scorecard, ShallowBeatsDeepForSyntheticPair) {
  data::ScenarioSpec shallow;
  shallow.depth = 0.01;
  shallow.noise = 0.0;
  data::ScenarioSpec deep = shallow;
  deep.depth = 0.2;
  auto s1 = data::generate_scenario(shallow);
  auto s2 = data::generate_scenario(deep);
  const auto entries = scorecard({s2, s1});
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_LT(entries.front().depth, entries.back().depth);
}

TEST(Scorecard, EmptyInputGivesEmptyOutput) {
  EXPECT_TRUE(scorecard({}).empty());
}

}  // namespace
}  // namespace prm::core
