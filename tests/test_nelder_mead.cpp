#include "optimize/nelder_mead.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace prm::opt {
namespace {

TEST(NelderMead, MinimizesQuadraticBowl) {
  const auto f = [](const num::Vector& x) {
    return (x[0] - 2.0) * (x[0] - 2.0) + 3.0 * (x[1] + 1.0) * (x[1] + 1.0);
  };
  const OptimizeResult r = nelder_mead(f, {0.0, 0.0});
  EXPECT_TRUE(r.converged());
  EXPECT_NEAR(r.parameters[0], 2.0, 1e-5);
  EXPECT_NEAR(r.parameters[1], -1.0, 1e-5);
  EXPECT_NEAR(r.cost, 0.0, 1e-9);
}

TEST(NelderMead, MinimizesRosenbrock) {
  const auto f = [](const num::Vector& x) {
    const double a = x[1] - x[0] * x[0];
    const double b = 1.0 - x[0];
    return 100.0 * a * a + b * b;
  };
  NelderMeadOptions opts;
  opts.max_iterations = 5000;
  const OptimizeResult r = nelder_mead(f, {-1.2, 1.0}, opts);
  EXPECT_NEAR(r.parameters[0], 1.0, 1e-3);
  EXPECT_NEAR(r.parameters[1], 1.0, 1e-3);
}

TEST(NelderMead, FindsAHimmelblauMinimum) {
  // Himmelblau has four global minima, all with f = 0.
  const auto f = [](const num::Vector& x) {
    const double a = x[0] * x[0] + x[1] - 11.0;
    const double b = x[0] + x[1] * x[1] - 7.0;
    return a * a + b * b;
  };
  const OptimizeResult r = nelder_mead(f, {0.0, 0.0});
  EXPECT_NEAR(r.cost, 0.0, 1e-6);
}

TEST(NelderMead, OneDimensionalProblem) {
  const auto f = [](const num::Vector& x) { return std::cosh(x[0] - 0.5); };
  const OptimizeResult r = nelder_mead(f, {10.0});
  EXPECT_NEAR(r.parameters[0], 0.5, 1e-4);
}

TEST(NelderMead, ZeroDimensionalIsNoOp) {
  const auto f = [](const num::Vector&) { return 7.0; };
  const OptimizeResult r = nelder_mead(f, {});
  EXPECT_TRUE(r.converged());
}

TEST(NelderMead, SurvivesNanRegions) {
  // f is NaN left of x = -1: treated as +inf, so the simplex retreats.
  const auto f = [](const num::Vector& x) {
    if (x[0] < -1.0) return std::numeric_limits<double>::quiet_NaN();
    return (x[0] - 1.0) * (x[0] - 1.0);
  };
  const OptimizeResult r = nelder_mead(f, {-0.9});
  EXPECT_NEAR(r.parameters[0], 1.0, 1e-4);
}

TEST(NelderMead, ZeroInitialCoordinateStillPerturbed) {
  // The simplex must not be degenerate when a coordinate starts at 0.
  const auto f = [](const num::Vector& x) {
    return x[0] * x[0] + (x[1] - 3.0) * (x[1] - 3.0);
  };
  const OptimizeResult r = nelder_mead(f, {0.0, 0.0});
  EXPECT_NEAR(r.parameters[1], 3.0, 1e-4);
}

TEST(NelderMead, RespectsIterationBudget) {
  const auto f = [](const num::Vector& x) {
    const double a = x[1] - x[0] * x[0];
    return 100.0 * a * a + (1.0 - x[0]) * (1.0 - x[0]);
  };
  NelderMeadOptions opts;
  opts.max_iterations = 5;
  const OptimizeResult r = nelder_mead(f, {-1.2, 1.0}, opts);
  EXPECT_LE(r.iterations, 5);
  EXPECT_EQ(r.stop_reason, StopReason::kMaxIterations);
}

TEST(NelderMeadLeastSquares, MatchesDirectFormulation) {
  const auto residuals = [](const num::Vector& x) {
    return num::Vector{x[0] - 3.0, 2.0 * (x[1] + 1.0)};
  };
  const OptimizeResult r = nelder_mead_least_squares(residuals, {0.0, 0.0});
  EXPECT_NEAR(r.parameters[0], 3.0, 1e-4);
  EXPECT_NEAR(r.parameters[1], -1.0, 1e-4);
}

}  // namespace
}  // namespace prm::opt
