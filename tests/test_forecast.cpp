#include "core/forecast.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "core/bathtub.hpp"
#include "data/recessions.hpp"

namespace prm::core {
namespace {

FitResult real_fit() {
  const auto& ds = data::recession("1990-93");
  return fit_model("competing-risks", ds.series, ds.holdout);
}

TEST(ForecastHorizon, ProducesRequestedGrid) {
  const FitResult fit = real_fit();
  const ForecastResult f = forecast_horizon(fit, 6);
  ASSERT_EQ(f.points.size(), 6u);
  // Monthly data: steps continue at dt = 1 after month 47.
  EXPECT_DOUBLE_EQ(f.points.front().t, 48.0);
  EXPECT_DOUBLE_EQ(f.points.back().t, 53.0);
  for (const ForecastPoint& p : f.points) {
    EXPECT_LT(p.lower, p.value);
    EXPECT_GT(p.upper, p.value);
    EXPECT_DOUBLE_EQ(p.value, fit.evaluate(p.t));
  }
}

TEST(ForecastHorizon, CustomStepRespected) {
  const FitResult fit = real_fit();
  const ForecastResult f = forecast_horizon(fit, 4, 0.5);
  EXPECT_DOUBLE_EQ(f.points[0].t, 47.5);
  EXPECT_DOUBLE_EQ(f.points[3].t, 49.0);
}

TEST(ForecastHorizon, IntervalsWidenWithExtrapolationDistance) {
  const FitResult fit = real_fit();
  const ForecastResult f = forecast_horizon(fit, 24);
  ASSERT_TRUE(f.used_delta_method);
  const double w_first = f.points.front().upper - f.points.front().lower;
  const double w_last = f.points.back().upper - f.points.back().lower;
  EXPECT_GT(w_last, 1.2 * w_first);
}

TEST(ForecastHorizon, TighterAlphaWidensIntervals) {
  const FitResult fit = real_fit();
  const ForecastResult f95 = forecast_horizon(fit, 3, 0.0, 0.05);
  const ForecastResult f99 = forecast_horizon(fit, 3, 0.0, 0.01);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_GT(f99.points[i].upper - f99.points[i].lower,
              f95.points[i].upper - f95.points[i].lower);
  }
}

TEST(ForecastHorizon, CoversTruthOnSyntheticContinuation) {
  // Generate 60 months from a known quadratic + noise, fit on the first 40,
  // forecast the next 20: most of the unseen truth lies inside the band.
  const QuadraticBathtubModel m;
  const num::Vector truth{1.0, -0.03, 0.0006};
  std::mt19937_64 rng(99);
  std::normal_distribution<double> noise(0.0, 0.002);
  std::vector<double> v(60);
  for (std::size_t i = 0; i < 60; ++i) {
    v[i] = m.evaluate(static_cast<double>(i), truth) + noise(rng);
  }
  const data::PerformanceSeries full("cont", v);
  const FitResult fit = fit_model(m, full.head(40), 0);
  const ForecastResult f = forecast_horizon(fit, 20);
  int inside = 0;
  for (std::size_t i = 0; i < 20; ++i) {
    const double actual = v[40 + i];
    EXPECT_NEAR(f.points[i].t, static_cast<double>(40 + i), 1e-9);
    if (actual >= f.points[i].lower && actual <= f.points[i].upper) ++inside;
  }
  EXPECT_GE(inside, 18);  // ~95% nominal
}

TEST(ForecastHorizon, InputValidation) {
  const FitResult fit = real_fit();
  EXPECT_THROW(forecast_horizon(fit, 0), std::invalid_argument);
  EXPECT_THROW(forecast_horizon(fit, 3, -1.0), std::invalid_argument);
}

TEST(ForecastHorizon, FallsBackToConstantWidthWhenCovarianceSingular) {
  // Two redundant parameters -> singular J^T J -> Eq. 13 fallback width.
  class Redundant final : public ResilienceModel {
   public:
    std::string name() const override { return "redundant-f"; }
    std::string description() const override { return "P = p0 + p1"; }
    std::size_t num_parameters() const override { return 2; }
    std::vector<std::string> parameter_names() const override { return {"a", "b"}; }
    std::vector<opt::Bound> parameter_bounds() const override {
      return {opt::Bound::free(), opt::Bound::free()};
    }
    double evaluate(double, const num::Vector& p) const override { return p[0] + p[1]; }
    std::vector<num::Vector> initial_guesses(
        const data::PerformanceSeries&) const override {
      return {{0.5, 0.5}};
    }
    std::pair<num::Vector, num::Vector> search_box(
        const data::PerformanceSeries&) const override {
      return {{0.0, 0.0}, {2.0, 2.0}};
    }
    std::unique_ptr<ResilienceModel> clone() const override {
      return std::make_unique<Redundant>(*this);
    }
  };
  std::vector<double> v(12, 1.0);
  v[4] = 1.01;
  FitResult fit(std::make_shared<Redundant>(), {0.5, 0.5},
                data::PerformanceSeries("flat", std::move(v)), 2);
  fit.sse = 1e-4;
  fit.stop_reason = opt::StopReason::kConverged;
  const ForecastResult f = forecast_horizon(fit, 3);
  EXPECT_FALSE(f.used_delta_method);
  ASSERT_EQ(f.points.size(), 3u);
  // Constant width across the horizon.
  const double w0 = f.points[0].upper - f.points[0].lower;
  const double w2 = f.points[2].upper - f.points[2].lower;
  EXPECT_NEAR(w0, w2, 1e-12);
  EXPECT_GT(w0, 0.0);
}

TEST(ForecastHorizon, SigmaMatchesParameterInference) {
  const FitResult fit = real_fit();
  const ForecastResult f = forecast_horizon(fit, 2);
  const auto inf = parameter_inference(fit);
  ASSERT_TRUE(inf.has_value());
  EXPECT_DOUBLE_EQ(f.sigma2, inf->sigma2);
}

}  // namespace
}  // namespace prm::core
