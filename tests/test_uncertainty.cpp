#include "core/uncertainty.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/predictor.hpp"
#include "data/recessions.hpp"

namespace prm::core {
namespace {

// Shared, cheap configuration: the quadratic model refits in ~50 us without
// multistart, so 60 replicates stay fast.
UncertaintyOptions quick_options() {
  UncertaintyOptions opts;
  opts.replicates = 60;
  opts.fit.multistart.sampled_starts = 0;
  opts.fit.multistart.jitter_per_start = 0;
  opts.fit.multistart.polish_with_nelder_mead = false;
  return opts;
}

class UncertaintyFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    const auto& ds = data::recession("1990-93");
    fit_ = new FitResult(fit_model("quadratic", ds.series, ds.holdout));
    result_ = new UncertaintyResult(prediction_uncertainty(*fit_, quick_options()));
  }
  static void TearDownTestSuite() {
    delete fit_;
    delete result_;
    fit_ = nullptr;
    result_ = nullptr;
  }
  static FitResult* fit_;
  static UncertaintyResult* result_;
};

FitResult* UncertaintyFixture::fit_ = nullptr;
UncertaintyResult* UncertaintyFixture::result_ = nullptr;

TEST_F(UncertaintyFixture, MostReplicatesSucceed) {
  EXPECT_GE(result_->replicates_used, 50);
  EXPECT_LE(result_->replicates_failed, 10);
}

TEST_F(UncertaintyFixture, IntervalsBracketPointEstimates) {
  EXPECT_LE(result_->trough_time.lower, result_->trough_time.upper);
  EXPECT_GE(result_->trough_time.point + 2.0, result_->trough_time.lower);
  EXPECT_LE(result_->trough_time.point - 2.0, result_->trough_time.upper);
  EXPECT_LE(result_->trough_value.lower, result_->trough_value.upper);
  // Trough value interval sits in a plausible index range.
  EXPECT_GT(result_->trough_value.lower, 0.9);
  EXPECT_LT(result_->trough_value.upper, 1.0);
}

TEST_F(UncertaintyFixture, RecoveryTimeIntervalIsPlausible) {
  // 1990-93 regains its peak around month 32-35.
  ASSERT_GE(result_->recovery_time.samples, 30);
  EXPECT_GT(result_->recovery_time.lower, 20.0);
  EXPECT_LT(result_->recovery_time.upper, 50.0);
  EXPECT_GE(result_->recovery_time.upper, result_->recovery_time.lower);
}

TEST_F(UncertaintyFixture, MetricIntervalsCoverPointPredictions) {
  ASSERT_EQ(result_->metrics.size(), kAllMetrics.size());
  for (const auto& [kind, est] : result_->metrics) {
    EXPECT_LE(est.lower, est.upper) << to_string(kind);
    // Point prediction from the original fit lies inside (or at) the interval
    // for a well-behaved dataset.
    EXPECT_GE(est.point, est.lower - 0.05) << to_string(kind);
    EXPECT_LE(est.point, est.upper + 0.05) << to_string(kind);
  }
}

TEST_F(UncertaintyFixture, NoRecoveryRateIsSmallForRecoveringDataset) {
  EXPECT_LT(result_->no_recovery_rate, 20.0);
}

TEST(Uncertainty, DeterministicForSeed) {
  const auto& ds = data::recession("2001-05");
  const FitResult fit = fit_model("quadratic", ds.series, ds.holdout);
  UncertaintyOptions opts = quick_options();
  opts.replicates = 20;
  const auto a = prediction_uncertainty(fit, opts);
  const auto b = prediction_uncertainty(fit, opts);
  EXPECT_DOUBLE_EQ(a.trough_time.lower, b.trough_time.lower);
  EXPECT_DOUBLE_EQ(a.recovery_time.upper, b.recovery_time.upper);
}

TEST(Uncertainty, WiderAlphaNarrowsInterval) {
  const auto& ds = data::recession("2001-05");
  const FitResult fit = fit_model("quadratic", ds.series, ds.holdout);
  UncertaintyOptions narrow = quick_options();
  narrow.alpha = 0.5;  // 50% interval
  UncertaintyOptions wide = quick_options();
  wide.alpha = 0.05;  // 95% interval
  const auto a = prediction_uncertainty(fit, narrow);
  const auto b = prediction_uncertainty(fit, wide);
  EXPECT_LE(a.trough_time.upper - a.trough_time.lower,
            b.trough_time.upper - b.trough_time.lower + 1e-12);
}

TEST(Uncertainty, InputValidation) {
  const auto& ds = data::recession("1990-93");
  const FitResult fit = fit_model("quadratic", ds.series, ds.holdout);
  UncertaintyOptions too_few = quick_options();
  too_few.replicates = 5;
  EXPECT_THROW(prediction_uncertainty(fit, too_few), std::invalid_argument);

  // A fit without holdout cannot produce predictive metrics.
  const FitResult no_holdout = fit_model("quadratic", ds.series, 0);
  EXPECT_THROW(prediction_uncertainty(no_holdout, quick_options()), std::invalid_argument);
}

}  // namespace
}  // namespace prm::core
