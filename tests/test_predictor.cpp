#include "core/predictor.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/bathtub.hpp"
#include "core/mixture.hpp"
#include "data/recessions.hpp"

namespace prm::core {
namespace {

FitResult make_fit(std::shared_ptr<const ResilienceModel> model, const num::Vector& p,
                   std::size_t n = 40, std::size_t holdout = 4) {
  std::vector<double> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = model->evaluate(static_cast<double>(i), p);
  FitResult fit(model, p, data::PerformanceSeries("synthetic", std::move(v)), holdout);
  fit.sse = 0.0;
  fit.stop_reason = opt::StopReason::kConverged;
  return fit;
}

TEST(PredictTrough, QuadraticUsesClosedForm) {
  auto m = std::make_shared<QuadraticBathtubModel>();
  const num::Vector p{1.0, -0.05, 0.001};  // vertex at t = 25
  const FitResult fit = make_fit(m, p);
  EXPECT_NEAR(predict_trough_time(fit), 25.0, 1e-9);
  EXPECT_NEAR(predict_trough_value(fit), m->evaluate(25.0, p), 1e-9);
}

TEST(PredictTrough, MixtureFallsBackToNumericSearch) {
  auto m = std::make_shared<MixtureModel>(
      MixtureSpec{Family::kWeibull, Family::kExponential, RecoveryTrend::kLogarithmic});
  const num::Vector p{12.0, 2.0, 0.06, 0.30};
  const FitResult fit = make_fit(m, p, 48, 5);
  const double td = predict_trough_time(fit);
  // First-order check: value at td below neighbors.
  EXPECT_LT(fit.evaluate(td), fit.evaluate(td - 1.0));
  EXPECT_LT(fit.evaluate(td), fit.evaluate(td + 1.0));
}

TEST(PredictTrough, ClampedToHorizon) {
  auto m = std::make_shared<QuadraticBathtubModel>();
  const num::Vector p{1.0, -0.05, 0.0002};  // vertex at t = 125, far beyond data
  const FitResult fit = make_fit(m, p);
  EXPECT_LE(predict_trough_time(fit), 39.0 + 1e-9);
  EXPECT_NEAR(predict_trough_time(fit, 200.0), 125.0, 1e-6);
}

TEST(PredictRecoveryTime, ClosedFormPathMatchesCurve) {
  auto m = std::make_shared<CompetingRisksModel>();
  const num::Vector p{1.0, 0.25, 0.01};  // trough ~10, recovers 0.9 around t~40
  const FitResult fit = make_fit(m, p);
  const auto tr = predict_recovery_time(fit, 0.9);
  ASSERT_TRUE(tr.has_value());
  EXPECT_NEAR(fit.evaluate(*tr), 0.9, 1e-8);
  EXPECT_GT(*tr, predict_trough_time(fit));
}

TEST(PredictRecoveryTime, NumericPathMatchesCurve) {
  auto m = std::make_shared<MixtureModel>(
      MixtureSpec{Family::kWeibull, Family::kExponential, RecoveryTrend::kLogarithmic});
  const num::Vector p{12.0, 2.0, 0.06, 0.30};
  const FitResult fit = make_fit(m, p, 48, 5);
  const auto tr = predict_recovery_time(fit, 1.0);
  ASSERT_TRUE(tr.has_value());
  EXPECT_NEAR(fit.evaluate(*tr), 1.0, 1e-6);
}

TEST(PredictRecoveryTime, NulloptWhenLevelNeverReached) {
  auto m = std::make_shared<QuadraticBathtubModel>();
  // Minimum 0.375 at t=25; level 0.2 unreachable.
  const num::Vector p{1.0, -0.05, 0.001};
  const FitResult fit = make_fit(m, p);
  EXPECT_FALSE(predict_recovery_time(fit, 0.2).has_value());
}

TEST(PredictRecoveryTime, RespectsAfterArgument) {
  auto m = std::make_shared<QuadraticBathtubModel>();
  const num::Vector p{1.0, -0.05, 0.001};
  const FitResult fit = make_fit(m, p);
  // Level 0.9 is crossed on the way down (~t=2.1) and up (~t=47.9).
  const auto early = predict_recovery_time(fit, 0.9, 0.0);
  const auto late = predict_recovery_time(fit, 0.9, 30.0);
  ASSERT_TRUE(early.has_value());
  ASSERT_TRUE(late.has_value());
  EXPECT_LT(*early, 25.0);
  EXPECT_GT(*late, 30.0);
}

TEST(PredictFullRecovery, ReturnsToInitialLevel) {
  auto m = std::make_shared<CompetingRisksModel>();
  const num::Vector p{1.0, 0.25, 0.01};  // regains 1.0 at t = 46
  const FitResult fit = make_fit(m, p);
  const auto tr = predict_full_recovery_time(fit);
  ASSERT_TRUE(tr.has_value());
  EXPECT_NEAR(fit.evaluate(*tr), fit.series().value(0), 1e-8);
}

TEST(CurveArea, ClosedFormAndNumericAgree) {
  const QuadraticBathtubModel quad;
  const num::Vector p{1.0, -0.05, 0.001};
  const double closed = curve_area(quad, p, 3.0, 30.0);
  // Mixture has no closed form: exercises the adaptive Simpson path.
  const MixtureModel mix(
      {Family::kExponential, Family::kExponential, RecoveryTrend::kLogarithmic});
  const num::Vector mp{0.05, 0.08, 0.3};
  const double numeric = curve_area(mix, mp, 3.0, 30.0);
  EXPECT_TRUE(std::isfinite(closed));
  EXPECT_TRUE(std::isfinite(numeric));
  // Cross-check the closed form against direct Simpson on the same model.
  const double closed_ref = *quad.area_closed_form(p, 3.0, 30.0);
  EXPECT_NEAR(closed, closed_ref, 1e-12);
}

TEST(PredictRecoveryTime, RealRecessionRecoveryIsPlausible) {
  const auto& ds = data::recession("1981-83");
  const FitResult fit = fit_model("competing-risks", ds.series, ds.holdout);
  const auto tr = predict_recovery_time(fit, 1.0);
  ASSERT_TRUE(tr.has_value());
  // The 1981-83 payroll index regains 1.0 around month 27-31.
  EXPECT_GT(*tr, 20.0);
  EXPECT_LT(*tr, 40.0);
}

}  // namespace
}  // namespace prm::core
