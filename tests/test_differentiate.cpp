#include "numerics/differentiate.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace prm::num {
namespace {

TEST(DerivativeCentral, MatchesAnalyticDerivative) {
  const auto f = [](double x) { return std::exp(2.0 * x); };
  EXPECT_NEAR(derivative_central(f, 0.5), 2.0 * std::exp(1.0), 1e-7);
}

TEST(DerivativeRichardson, MoreAccurateThanCentral) {
  const auto f = [](double x) { return std::sin(x); };
  const double exact = std::cos(1.0);
  const double ec = std::fabs(derivative_central(f, 1.0, 1e-3) - exact);
  const double er = std::fabs(derivative_richardson(f, 1.0, 1e-3) - exact);
  EXPECT_LT(er, ec);
  EXPECT_NEAR(derivative_richardson(f, 1.0), exact, 1e-10);
}

TEST(DerivativeForward, WorksAtDomainBoundary) {
  // sqrt is only defined for x >= 0; forward difference at x = 0 must not
  // evaluate negative arguments.
  const auto f = [](double x) { return x * std::sqrt(x); };  // f' = 1.5 sqrt(x)
  EXPECT_NEAR(derivative_forward(f, 0.0), 0.0, 1e-3);
  EXPECT_NEAR(derivative_forward(f, 1.0), 1.5, 1e-5);
}

TEST(GradientCentral, MatchesAnalyticGradient) {
  const auto f = [](const Vector& x) {
    return x[0] * x[0] + 3.0 * x[0] * x[1] + std::exp(x[1]);
  };
  const Vector x{1.0, 0.5};
  const Vector g = gradient_central(f, x);
  ASSERT_EQ(g.size(), 2u);
  EXPECT_NEAR(g[0], 2.0 * x[0] + 3.0 * x[1], 1e-7);
  EXPECT_NEAR(g[1], 3.0 * x[0] + std::exp(x[1]), 1e-7);
}

TEST(JacobianCentral, MatchesAnalyticJacobian) {
  // r(p) = [p0^2, p0 p1, sin(p1)].
  const auto r = [](const Vector& p) {
    return Vector{p[0] * p[0], p[0] * p[1], std::sin(p[1])};
  };
  const Vector p{2.0, 0.7};
  const Matrix j = jacobian_central(r, p);
  ASSERT_EQ(j.rows(), 3u);
  ASSERT_EQ(j.cols(), 2u);
  EXPECT_NEAR(j(0, 0), 4.0, 1e-7);
  EXPECT_NEAR(j(0, 1), 0.0, 1e-7);
  EXPECT_NEAR(j(1, 0), 0.7, 1e-7);
  EXPECT_NEAR(j(1, 1), 2.0, 1e-7);
  EXPECT_NEAR(j(2, 0), 0.0, 1e-7);
  EXPECT_NEAR(j(2, 1), std::cos(0.7), 1e-7);
}

TEST(JacobianCentral, HandlesZeroParameters) {
  const auto r = [](const Vector&) { return Vector{1.0}; };
  const Matrix j = jacobian_central(r, {});
  EXPECT_EQ(j.rows(), 1u);
  EXPECT_EQ(j.cols(), 0u);
}

}  // namespace
}  // namespace prm::num
