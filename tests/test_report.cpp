#include <gtest/gtest.h>

#include <sstream>

#include "core/analysis.hpp"
#include "report/ascii_plot.hpp"
#include "report/series_csv.hpp"
#include "report/table.hpp"

namespace prm::report {
namespace {

TEST(Table, RendersHeadersAndRows) {
  Table t({"Model", "SSE"});
  t.add_row({"Quadratic", "0.0023"});
  t.add_row({"Competing Risks", "0.0026"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("Model"), std::string::npos);
  EXPECT_NE(s.find("Quadratic"), std::string::npos);
  EXPECT_NE(s.find("0.0026"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(Table, CellCountValidated) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(Table, SeparatorProducesRule) {
  Table t({"x"});
  t.add_row({"1"});
  t.add_separator();
  t.add_row({"2"});
  const std::string s = t.to_string();
  // Expect at least 4 horizontal rules: top, under header, mid, bottom.
  std::size_t rules = 0;
  std::istringstream ss(s);
  std::string line;
  while (std::getline(ss, line)) {
    if (line.rfind("+-", 0) == 0) ++rules;
  }
  EXPECT_GE(rules, 4u);
}

TEST(Table, ColumnsAlignedToWidestCell) {
  Table t({"h", "value"});
  t.add_row({"short", "1"});
  t.add_row({"a-much-longer-cell", "2"});
  std::istringstream ss(t.to_string());
  std::string line;
  std::vector<std::size_t> lengths;
  while (std::getline(ss, line)) lengths.push_back(line.size());
  for (std::size_t l : lengths) EXPECT_EQ(l, lengths.front());
}

TEST(Table, NumberFormatters) {
  EXPECT_EQ(Table::fixed(1.23456, 2), "1.23");
  EXPECT_EQ(Table::fixed(-0.5, 3), "-0.500");
  EXPECT_EQ(Table::scientific(0.000123, 2), "1.23e-04");
  EXPECT_EQ(Table::percent(95.833333, 2), "95.83%");
}

TEST(AsciiPlot, RendersSeriesAndLegend) {
  data::PerformanceSeries s("payroll", {1.0, 0.95, 0.9, 0.95, 1.0, 1.05});
  AsciiPlot plot(60, 12);
  plot.set_title("demo");
  plot.add_series(s, '*', "payroll index");
  const std::string out = plot.to_string();
  EXPECT_NE(out.find("demo"), std::string::npos);
  EXPECT_NE(out.find('*'), std::string::npos);
  EXPECT_NE(out.find("payroll index"), std::string::npos);
}

TEST(AsciiPlot, MarkerDrawsVerticalLine) {
  data::PerformanceSeries s("x", {1.0, 0.9, 0.8, 0.9, 1.0});
  AsciiPlot plot(40, 10);
  plot.add_series(s, 'o', "data");
  plot.add_vertical_marker(2.0, "fit boundary");
  const std::string out = plot.to_string();
  EXPECT_NE(out.find(':'), std::string::npos);
  EXPECT_NE(out.find("fit boundary"), std::string::npos);
}

TEST(AsciiPlot, BandValidatedAndRendered) {
  AsciiPlot plot(40, 10);
  PlotBand band;
  band.times = {0.0, 1.0, 2.0};
  band.lower = {0.8, 0.8, 0.8};
  band.upper = {1.2, 1.2, 1.2};
  band.label = "95% CI";
  plot.add_band(band);
  data::PerformanceSeries s("x", {1.0, 1.0, 1.0});
  plot.add_series(s, '*', "flat");
  EXPECT_NE(plot.to_string().find("95% CI"), std::string::npos);

  PlotBand bad;
  bad.times = {0.0};
  bad.lower = {};
  bad.upper = {1.0};
  EXPECT_THROW(plot.add_band(bad), std::invalid_argument);
}

TEST(AsciiPlot, RejectsTinyCanvas) {
  EXPECT_THROW(AsciiPlot(10, 3), std::invalid_argument);
}

TEST(AsciiPlot, EmptyPlotDoesNotCrash) {
  AsciiPlot plot(40, 10);
  EXPECT_NE(plot.to_string().find("empty"), std::string::npos);
}

TEST(SeriesCsv, WritesAlignedColumns) {
  std::ostringstream out;
  write_columns(out, {0.0, 1.0}, {{"a", {1.0, 2.0}}, {"b", {3.0, 4.0}}});
  const std::string s = out.str();
  EXPECT_NE(s.find("t,a,b"), std::string::npos);
  EXPECT_NE(s.find("1,2,4"), std::string::npos);
}

TEST(SeriesCsv, SizeMismatchThrows) {
  std::ostringstream out;
  EXPECT_THROW(write_columns(out, {0.0, 1.0}, {{"a", {1.0}}}), std::invalid_argument);
}

TEST(SeriesCsv, FigureCsvHasFourDataColumns) {
  const auto r = prm::core::analyze("quadratic", data::recession("1990-93"));
  std::ostringstream out;
  write_figure_csv(out, r.fit, r.validation);
  std::istringstream in(out.str());
  std::string header;
  std::getline(in, header);
  EXPECT_EQ(header, "t,observed,model,ci_lower,ci_upper");
  std::size_t rows = 0;
  std::string line;
  while (std::getline(in, line)) ++rows;
  EXPECT_EQ(rows, 48u);
}

}  // namespace
}  // namespace prm::report
