#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "numerics/differentiate.hpp"
#include "numerics/integrate.hpp"
#include "stats/exponential.hpp"
#include "stats/gamma.hpp"
#include "stats/gompertz.hpp"
#include "stats/loglogistic.hpp"
#include "stats/lognormal.hpp"
#include "stats/normal.hpp"
#include "stats/weibull.hpp"

namespace prm::stats {
namespace {

// ---- Family-generic properties, parameterized over all distributions ----

struct DistCase {
  std::string label;
  std::shared_ptr<const Distribution> dist;
  double probe_lo;
  double probe_hi;
};

class DistributionContract : public ::testing::TestWithParam<DistCase> {};

TEST_P(DistributionContract, CdfIsMonotoneNondecreasingWithin01) {
  const auto& d = *GetParam().dist;
  double prev = -1e-9;
  for (int i = 0; i <= 50; ++i) {
    const double x = GetParam().probe_lo +
                     (GetParam().probe_hi - GetParam().probe_lo) * i / 50.0;
    const double c = d.cdf(x);
    EXPECT_GE(c, prev - 1e-12);
    EXPECT_GE(c, 0.0);
    EXPECT_LE(c, 1.0);
    prev = c;
  }
}

TEST_P(DistributionContract, QuantileInvertsCdf) {
  const auto& d = *GetParam().dist;
  for (double p : {0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99}) {
    EXPECT_NEAR(d.cdf(d.quantile(p)), p, 1e-8) << GetParam().label << " p=" << p;
  }
}

TEST_P(DistributionContract, PdfIsDerivativeOfCdf) {
  const auto& d = *GetParam().dist;
  for (int i = 1; i < 5; ++i) {
    const double x = GetParam().probe_lo +
                     (GetParam().probe_hi - GetParam().probe_lo) * i / 5.0;
    const double fd = num::derivative_richardson([&d](double t) { return d.cdf(t); }, x);
    EXPECT_NEAR(d.pdf(x), fd, 1e-6 * std::max(1.0, d.pdf(x))) << GetParam().label;
  }
}

TEST_P(DistributionContract, PdfIntegratesToCdfDifference) {
  const auto& d = *GetParam().dist;
  const double a = GetParam().probe_lo;
  const double b = GetParam().probe_hi;
  const double integral =
      num::adaptive_simpson([&d](double x) { return d.pdf(x); }, a, b, 1e-11).value;
  EXPECT_NEAR(integral, d.cdf(b) - d.cdf(a), 1e-8) << GetParam().label;
}

TEST_P(DistributionContract, SurvivalComplementsCdf) {
  const auto& d = *GetParam().dist;
  const double mid = 0.5 * (GetParam().probe_lo + GetParam().probe_hi);
  EXPECT_NEAR(d.cdf(mid) + d.survival(mid), 1.0, 1e-12);
}

TEST_P(DistributionContract, HazardIsPdfOverSurvival) {
  const auto& d = *GetParam().dist;
  const double mid = 0.5 * (GetParam().probe_lo + GetParam().probe_hi);
  EXPECT_NEAR(d.hazard(mid), d.pdf(mid) / d.survival(mid), 1e-10);
}

TEST_P(DistributionContract, MeanMatchesNumericIntegral) {
  const auto& d = *GetParam().dist;
  // E[X] = integral x f(x); integrate far into the tail. Guard the integrand
  // at x = 0 where heavy-at-origin densities (Weibull k < 1) are infinite but
  // x * f(x) -> 0.
  const double hi = d.quantile(0.999999);
  const double lo = std::min(0.0, GetParam().probe_lo);
  const auto integrand = [&d](double x) { return x == 0.0 ? 0.0 : x * d.pdf(x); };
  const double mean_num = num::adaptive_simpson(integrand, lo, hi, 1e-11).value;
  EXPECT_NEAR(mean_num, d.mean(), 2e-3 * std::max(1.0, std::fabs(d.mean())))
      << GetParam().label;
}

TEST_P(DistributionContract, CloneIsIndependentEqualValue) {
  const auto& d = *GetParam().dist;
  const auto c = d.clone();
  EXPECT_EQ(c->name(), d.name());
  EXPECT_DOUBLE_EQ(c->cdf(1.0), d.cdf(1.0));
}

INSTANTIATE_TEST_SUITE_P(
    AllFamilies, DistributionContract,
    ::testing::Values(
        DistCase{"exponential", std::make_shared<Exponential>(0.7), 0.0, 8.0},
        DistCase{"weibull_k2", std::make_shared<Weibull>(3.0, 2.0), 0.0, 10.0},
        DistCase{"weibull_k05", std::make_shared<Weibull>(2.0, 0.8), 0.01, 12.0},
        DistCase{"normal", std::make_shared<Normal>(1.0, 2.0), -7.0, 9.0},
        DistCase{"lognormal", std::make_shared<LogNormal>(0.3, 0.5), 0.01, 10.0},
        DistCase{"gamma", std::make_shared<Gamma>(2.5, 1.5), 0.0, 25.0},
        DistCase{"loglogistic", std::make_shared<LogLogistic>(3.0, 4.0), 0.0, 30.0},
        DistCase{"gompertz", std::make_shared<Gompertz>(0.05, 0.3), 0.0, 15.0}),
    [](const ::testing::TestParamInfo<DistCase>& info) { return info.param.label; });

// ---- Family-specific facts ----

TEST(Exponential, MemorylessAndMoments) {
  const Exponential e(0.5);
  EXPECT_DOUBLE_EQ(e.mean(), 2.0);
  EXPECT_DOUBLE_EQ(e.variance(), 4.0);
  EXPECT_DOUBLE_EQ(e.hazard(0.1), 0.5);
  EXPECT_DOUBLE_EQ(e.hazard(10.0), 0.5);  // constant hazard
  // Memorylessness: S(s + t) = S(s) S(t).
  EXPECT_NEAR(e.survival(3.0), e.survival(1.0) * e.survival(2.0), 1e-14);
}

TEST(Exponential, RejectsBadRate) {
  EXPECT_THROW(Exponential(0.0), std::invalid_argument);
  EXPECT_THROW(Exponential(-1.0), std::invalid_argument);
  EXPECT_THROW(Exponential(std::numeric_limits<double>::quiet_NaN()), std::invalid_argument);
}

TEST(Weibull, ReducesToExponentialAtShapeOne) {
  const Weibull w(2.0, 1.0);
  const Exponential e(0.5);
  for (double x : {0.1, 1.0, 3.0}) {
    EXPECT_NEAR(w.cdf(x), e.cdf(x), 1e-14);
    EXPECT_NEAR(w.pdf(x), e.pdf(x), 1e-14);
  }
}

TEST(Weibull, HazardMonotoneByShape) {
  const Weibull increasing(1.0, 2.0);
  EXPECT_LT(increasing.hazard(0.5), increasing.hazard(2.0));
  const Weibull decreasing(1.0, 0.5);
  EXPECT_GT(decreasing.hazard(0.5), decreasing.hazard(2.0));
}

TEST(Weibull, PdfBoundaryByShape) {
  EXPECT_TRUE(std::isinf(Weibull(1.0, 0.5).pdf(0.0)));
  EXPECT_DOUBLE_EQ(Weibull(2.0, 1.0).pdf(0.0), 0.5);
  EXPECT_DOUBLE_EQ(Weibull(1.0, 2.0).pdf(0.0), 0.0);
}

TEST(Weibull, RejectsBadParameters) {
  EXPECT_THROW(Weibull(0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(Weibull(1.0, 0.0), std::invalid_argument);
  EXPECT_THROW(Weibull(-1.0, 2.0), std::invalid_argument);
}

TEST(Normal, StandardFacts) {
  const Normal n(0.0, 1.0);
  EXPECT_NEAR(n.cdf(0.0), 0.5, 1e-15);
  EXPECT_NEAR(n.quantile(0.975), 1.959963984540054, 1e-9);
  EXPECT_NEAR(n.pdf(0.0), 0.3989422804014327, 1e-14);
}

TEST(Normal, CriticalValueHelper) {
  EXPECT_NEAR(normal_critical_value(0.05), 1.959963984540054, 1e-9);
  EXPECT_NEAR(normal_critical_value(0.01), 2.5758293035489004, 1e-8);
  EXPECT_THROW(normal_critical_value(0.0), std::domain_error);
  EXPECT_THROW(normal_critical_value(1.0), std::domain_error);
}

TEST(LogNormal, LogTransformsToNormal) {
  const LogNormal ln(0.5, 0.8);
  const Normal n(0.5, 0.8);
  for (double x : {0.3, 1.0, 4.0}) {
    EXPECT_NEAR(ln.cdf(x), n.cdf(std::log(x)), 1e-14);
  }
  EXPECT_DOUBLE_EQ(ln.cdf(0.0), 0.0);
  EXPECT_DOUBLE_EQ(ln.cdf(-1.0), 0.0);
}

TEST(LogNormal, MeanFormula) {
  const LogNormal ln(0.2, 0.6);
  EXPECT_NEAR(ln.mean(), std::exp(0.2 + 0.18), 1e-12);
}

TEST(Gamma, ShapeOneIsExponential) {
  const Gamma g(1.0, 2.0);
  const Exponential e(0.5);
  for (double x : {0.5, 1.0, 3.0}) {
    EXPECT_NEAR(g.cdf(x), e.cdf(x), 1e-12);
    EXPECT_NEAR(g.pdf(x), e.pdf(x), 1e-12);
  }
}

TEST(Gamma, Moments) {
  const Gamma g(3.0, 2.0);
  EXPECT_DOUBLE_EQ(g.mean(), 6.0);
  EXPECT_DOUBLE_EQ(g.variance(), 12.0);
}

TEST(Gamma, RejectsBadParameters) {
  EXPECT_THROW(Gamma(0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(Gamma(1.0, -2.0), std::invalid_argument);
}

TEST(LogLogistic, MedianIsScale) {
  const LogLogistic ll(3.5, 2.0);
  EXPECT_NEAR(ll.cdf(3.5), 0.5, 1e-14);
  EXPECT_NEAR(ll.quantile(0.5), 3.5, 1e-12);
}

TEST(LogLogistic, MeanClosedFormAndDivergence) {
  const LogLogistic finite(2.0, 3.0);
  const double b = M_PI / 3.0;
  EXPECT_NEAR(finite.mean(), 2.0 * b / std::sin(b), 1e-12);
  EXPECT_TRUE(std::isinf(LogLogistic(2.0, 1.0).mean()));
  EXPECT_TRUE(std::isinf(LogLogistic(2.0, 2.0).variance()));
}

TEST(LogLogistic, HazardNonMonotoneForShapeAboveOne) {
  // Hazard rises then falls: h(0.2) < h(peak region) > h(50).
  const LogLogistic ll(2.0, 3.0);
  const double early = ll.hazard(0.2);
  const double mid = ll.hazard(2.0);
  const double late = ll.hazard(50.0);
  EXPECT_GT(mid, early);
  EXPECT_GT(mid, late);
}

TEST(LogLogistic, RejectsBadParameters) {
  EXPECT_THROW(LogLogistic(0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(LogLogistic(1.0, 0.0), std::invalid_argument);
}

TEST(Gompertz, HazardGrowsExponentially) {
  const Gompertz g(0.1, 0.5);
  EXPECT_NEAR(g.hazard(0.0), 0.1, 1e-14);
  EXPECT_NEAR(g.hazard(2.0) / g.hazard(1.0), std::exp(0.5), 1e-12);
}

TEST(Gompertz, QuantileInvertsCdfInTails) {
  const Gompertz g(0.05, 0.3);
  for (double p : {1e-6, 0.5, 1.0 - 1e-9}) {
    EXPECT_NEAR(g.cdf(g.quantile(p)), p, 1e-9);
  }
}

TEST(Gompertz, NumericMomentsAreSelfConsistent) {
  const Gompertz g(0.05, 0.3);
  EXPECT_GT(g.mean(), 0.0);
  EXPECT_GT(g.variance(), 0.0);
  // Mean must lie between the quartiles' midpoint neighborhood (sanity) and
  // below the 99% quantile.
  EXPECT_LT(g.mean(), g.quantile(0.99));
}

TEST(Gompertz, RejectsBadParameters) {
  EXPECT_THROW(Gompertz(0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(Gompertz(1.0, 0.0), std::invalid_argument);
}

}  // namespace
}  // namespace prm::stats
