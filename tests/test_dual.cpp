#include "numerics/dual.hpp"

#include <gtest/gtest.h>

#include "numerics/differentiate.hpp"

namespace prm::num {
namespace {

TEST(Dual, SeedHasUnitDerivative) {
  const Dual x = Dual::seed(3.0);
  EXPECT_DOUBLE_EQ(x.v, 3.0);
  EXPECT_DOUBLE_EQ(x.d, 1.0);
}

TEST(Dual, ConstantHasZeroDerivative) {
  const Dual c = 5.0;
  EXPECT_DOUBLE_EQ(c.d, 0.0);
}

TEST(Dual, ArithmeticRules) {
  const Dual x = Dual::seed(2.0);
  const Dual y = x * x + 3.0 * x - Dual(1.0);  // f = x^2+3x-1, f' = 2x+3
  EXPECT_DOUBLE_EQ(y.v, 9.0);
  EXPECT_DOUBLE_EQ(y.d, 7.0);
}

TEST(Dual, QuotientRule) {
  const Dual x = Dual::seed(2.0);
  const Dual y = (x + 1.0) / (x - 1.0);  // f' = -2/(x-1)^2 = -2
  EXPECT_DOUBLE_EQ(y.v, 3.0);
  EXPECT_DOUBLE_EQ(y.d, -2.0);
}

TEST(Dual, ChainThroughExpLog) {
  const Dual x = Dual::seed(1.5);
  const Dual y = log(exp(x) + 1.0);  // f' = e^x/(e^x+1)
  const double ex = std::exp(1.5);
  EXPECT_NEAR(y.v, std::log(ex + 1.0), 1e-15);
  EXPECT_NEAR(y.d, ex / (ex + 1.0), 1e-15);
}

TEST(Dual, SqrtAndPow) {
  const Dual x = Dual::seed(4.0);
  EXPECT_DOUBLE_EQ(sqrt(x).v, 2.0);
  EXPECT_DOUBLE_EQ(sqrt(x).d, 0.25);
  const Dual p = pow(x, 3.0);  // f' = 3x^2 = 48
  EXPECT_DOUBLE_EQ(p.v, 64.0);
  EXPECT_DOUBLE_EQ(p.d, 48.0);
}

TEST(Dual, PowDualExponent) {
  // f(x) = x^x, f'(x) = x^x (ln x + 1).
  const Dual x = Dual::seed(2.0);
  const Dual y = pow(x, x);
  EXPECT_DOUBLE_EQ(y.v, 4.0);
  EXPECT_NEAR(y.d, 4.0 * (std::log(2.0) + 1.0), 1e-14);
}

TEST(Dual, TrigRules) {
  const Dual x = Dual::seed(0.7);
  EXPECT_NEAR(sin(x).d, std::cos(0.7), 1e-15);
  EXPECT_NEAR(cos(x).d, -std::sin(0.7), 1e-15);
}

TEST(Dual, FabsAndComparisons) {
  const Dual neg(-2.0, 1.0);
  EXPECT_DOUBLE_EQ(fabs(neg).v, 2.0);
  EXPECT_DOUBLE_EQ(fabs(neg).d, -1.0);
  EXPECT_TRUE(Dual(1.0) < Dual(2.0));
  EXPECT_TRUE(Dual(3.0, 1.0) == Dual(3.0, 9.0));  // compares values only
}

TEST(Dual, MatchesFiniteDifferences) {
  // Compare autodiff against central differences on a composite function.
  const auto f = [](double x) {
    return std::exp(-x) * std::sin(x) + std::sqrt(x + 1.0);
  };
  const auto fd = [](Dual x) { return exp(-x) * sin(x) + sqrt(x + 1.0); };
  for (double x : {0.1, 0.5, 1.0, 2.0, 5.0}) {
    const double ad = fd(Dual::seed(x)).d;
    const double num = derivative_richardson(f, x);
    EXPECT_NEAR(ad, num, 1e-8) << "x = " << x;
  }
}

TEST(Dual, CompoundAssignments) {
  Dual x = Dual::seed(3.0);
  Dual acc = 1.0;
  acc += x;   // 1 + x
  acc *= x;   // x + x^2, d = 1 + 2x = 7
  acc -= 2.0; // d unchanged
  acc /= 2.0; // d = 3.5
  EXPECT_DOUBLE_EQ(acc.v, (3.0 + 9.0 - 2.0) / 2.0);
  EXPECT_DOUBLE_EQ(acc.d, 3.5);
}

}  // namespace
}  // namespace prm::num
