// Cross-module integration tests: run the paper's full experimental protocol
// and assert the QUALITATIVE results the paper reports (who fits well, who
// fails, and where). Absolute values differ from the paper because the data
// substrate is reconstructed (see DESIGN.md), but these orderings are the
// paper's actual claims.
#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "core/analysis.hpp"
#include "core/metrics.hpp"
#include "core/predictor.hpp"
#include "data/recessions.hpp"

namespace prm::core {
namespace {

const std::vector<std::string> kBathtubModels{"quadratic", "competing-risks"};
const std::vector<std::string> kMixtureModels{"mix-exp-exp-log", "mix-wei-exp-log",
                                              "mix-exp-wei-log", "mix-wei-wei-log"};

class PaperResults : public ::testing::Test {
 protected:
  // Fit everything once for the whole suite (deterministic, ~1 s).
  static void SetUpTestSuite() {
    results_ = new std::map<std::pair<std::string, std::string>, ModelDatasetResult>();
    std::vector<std::string> all = kBathtubModels;
    all.insert(all.end(), kMixtureModels.begin(), kMixtureModels.end());
    for (const auto& d : data::recession_catalog()) {
      for (const auto& m : all) {
        results_->emplace(std::make_pair(m, d.series.name()), analyze(m, d));
      }
    }
  }
  static void TearDownTestSuite() {
    delete results_;
    results_ = nullptr;
  }

  static const ModelDatasetResult& get(const std::string& model, const std::string& ds) {
    return results_->at({model, ds});
  }

  static std::map<std::pair<std::string, std::string>, ModelDatasetResult>* results_;
};

std::map<std::pair<std::string, std::string>, ModelDatasetResult>* PaperResults::results_ =
    nullptr;

// --- Table I claims -------------------------------------------------------

TEST_F(PaperResults, AllFitsConvergeWithFiniteDiagnostics) {
  for (const auto& [key, r] : *results_) {
    EXPECT_TRUE(r.fit.success()) << key.first << " on " << key.second;
    EXPECT_TRUE(std::isfinite(r.validation.sse));
    EXPECT_TRUE(std::isfinite(r.validation.pmse));
    EXPECT_TRUE(std::isfinite(r.validation.r2_adj));
    EXPECT_GE(r.validation.ec, 0.0);
    EXPECT_LE(r.validation.ec, 100.0);
  }
}

TEST_F(PaperResults, BathtubModelsFitVAndUShapesWell) {
  // Paper: "both approaches can produce accurate predictions for data sets
  // exhibiting V and U shaped curves."
  for (const char* ds : {"1974-76", "1981-83", "1990-93", "2001-05", "2007-09"}) {
    for (const auto& m : kBathtubModels) {
      EXPECT_GT(get(m, ds).validation.r2_adj, 0.85) << m << " on " << ds;
    }
  }
}

TEST_F(PaperResults, BathtubModelsFailOnWShaped1980) {
  // Paper: "Neither model performed well on the 1980 data ... low or even
  // negative r2_adj."
  for (const auto& m : kBathtubModels) {
    EXPECT_LT(get(m, "1980").validation.r2_adj, 0.6) << m;
  }
}

TEST_F(PaperResults, BathtubModelsFailOnLShaped2020) {
  // Paper: "Both models also fit the 2020-21 data poorly."
  for (const auto& m : kBathtubModels) {
    EXPECT_LT(get(m, "2020-21").validation.r2_adj, 0.5) << m;
  }
}

TEST_F(PaperResults, HardShapesAreWorstForEveryModel) {
  // 1980 and 2020-21 give each bathtub model its lowest r2_adj.
  for (const auto& m : kBathtubModels) {
    double worst_easy = 1.0;
    for (const char* ds : {"1974-76", "1981-83", "1990-93", "2001-05", "2007-09"}) {
      worst_easy = std::min(worst_easy, get(m, ds).validation.r2_adj);
    }
    EXPECT_LT(get(m, "1980").validation.r2_adj, worst_easy);
    EXPECT_LT(get(m, "2020-21").validation.r2_adj, worst_easy);
  }
}

TEST_F(PaperResults, CompetingRisksIsCompetitiveWithQuadratic) {
  // Paper: competing risks showed "greater flexibility" and was best or a
  // close second. Check it beats or ties quadratic SSE on most datasets
  // (within 25% when it loses).
  int wins = 0;
  for (const auto& d : data::recession_catalog()) {
    const double q = get("quadratic", d.series.name()).validation.sse;
    const double c = get("competing-risks", d.series.name()).validation.sse;
    if (c <= q) ++wins;
    EXPECT_LT(c, 1.6 * q) << d.series.name();
  }
  EXPECT_GE(wins, 3);
}

// --- Table III claims -----------------------------------------------------

TEST_F(PaperResults, ExpExpIsTheWorstMixtureFamilyOverall) {
  // Paper: "the simplest mixture ... performed poorly with respect to all
  // measures on all data sets." On reconstructed data we assert the
  // ordering: Exp-Exp never has the best SSE, and loses clearly on most.
  int strictly_worst = 0;
  for (const auto& d : data::recession_catalog()) {
    const double ee = get("mix-exp-exp-log", d.series.name()).validation.sse;
    double best_other = std::numeric_limits<double>::infinity();
    for (const auto& m : {"mix-wei-exp-log", "mix-exp-wei-log", "mix-wei-wei-log"}) {
      best_other = std::min(best_other, get(m, d.series.name()).validation.sse);
    }
    EXPECT_GE(ee, 0.99 * best_other) << d.series.name();
    if (ee > 1.5 * best_other) ++strictly_worst;
  }
  EXPECT_GE(strictly_worst, 4);
}

TEST_F(PaperResults, SomeWeibullMixtureExceeds09OnEasyDatasets) {
  // Paper: "At least one of the remaining three combinations ... achieved an
  // r2_adj greater than 0.9 on all data sets with the exception of the 1980
  // and 2020-21 data sets."
  for (const char* ds : {"1974-76", "1981-83", "1990-93", "2001-05", "2007-09"}) {
    double best = -1.0;
    for (const auto& m : {"mix-wei-exp-log", "mix-exp-wei-log", "mix-wei-wei-log"}) {
      best = std::max(best, get(m, ds).validation.r2_adj);
    }
    EXPECT_GT(best, 0.9) << ds;
  }
}

TEST_F(PaperResults, MixturesAlsoStruggleOn2020) {
  for (const auto& m : kMixtureModels) {
    EXPECT_LT(get(m, "2020-21").validation.r2_adj, 0.9) << m;
  }
}

// --- Table II / IV claims -------------------------------------------------

TEST_F(PaperResults, MetricsAccurateOn1990ForWellFittingModels) {
  // Paper Table II: both bathtub models err < 1% on most metrics for
  // 1990-93; the normalized-average-lost metric is the unstable one.
  for (const auto& m : kBathtubModels) {
    for (const MetricValue& v : predictive_metrics(get(m, "1990-93").fit)) {
      if (v.kind == MetricKind::kNormalizedAvgLost ||
          v.kind == MetricKind::kPreservedFromMinimum) {
        continue;
      }
      EXPECT_LT(v.relative_error, 0.02) << m << " " << to_string(v.kind);
    }
  }
}

TEST_F(PaperResults, NegativePerformanceLostMeansRecoveryAboveNominal) {
  // Paper: "Negative values in the performance loss metrics can be
  // interpreted as the system having recovered to a higher performance
  // level." 1990-93's holdout window sits above its start -> lost < 0.
  for (const auto& m : kBathtubModels) {
    const auto metrics = predictive_metrics(get(m, "1990-93").fit);
    for (const MetricValue& v : metrics) {
      if (v.kind == MetricKind::kPerformanceLost || v.kind == MetricKind::kAvgLost) {
        EXPECT_LT(v.actual, 0.0) << to_string(v.kind);
        EXPECT_LT(v.predicted, 0.0) << to_string(v.kind);
      }
    }
  }
}

TEST_F(PaperResults, MixtureMetricsMostlyWithinFivePercentOn1990) {
  for (const auto& m : {"mix-wei-exp-log", "mix-wei-wei-log"}) {
    int good = 0;
    for (const MetricValue& v : predictive_metrics(get(m, "1990-93").fit)) {
      if (v.relative_error < 0.05) ++good;
    }
    EXPECT_GE(good, 5) << m;  // paper: all but the unstable metrics
  }
}

// --- Prediction claims ----------------------------------------------------

TEST_F(PaperResults, RecoveryTimePredictionsBracketObservedRecovery) {
  // For recessions whose index regained 1.0 inside the observed window, the
  // fitted competing-risks curve must predict recovery near the observed
  // crossing month.
  struct Case {
    const char* ds;
    double observed_crossing;  // first month with index >= 1.0 after trough
  };
  for (const Case c : {Case{"1981-83", 30.0}, Case{"1990-93", 35.0}}) {
    const auto& fit = get("competing-risks", c.ds).fit;
    const auto tr = predict_recovery_time(fit, 1.0);
    ASSERT_TRUE(tr.has_value()) << c.ds;
    EXPECT_NEAR(*tr, c.observed_crossing, 6.0) << c.ds;
  }
}

TEST_F(PaperResults, TroughPredictionsNearObservedTroughs) {
  for (const char* ds : {"1981-83", "1990-93", "2001-05"}) {
    const auto& r = get("competing-risks", ds);
    const double predicted = predict_trough_time(r.fit);
    const double observed = r.fit.series().trough_time();
    EXPECT_NEAR(predicted, observed, 6.0) << ds;
  }
}

TEST_F(PaperResults, ConfidenceBandsAreConservativeOnGoodFits) {
  // Paper reports ECs of 90-100% on these datasets (slightly conservative).
  for (const char* ds : {"1974-76", "1990-93", "2001-05", "2007-09"}) {
    for (const auto& m : kBathtubModels) {
      EXPECT_GE(get(m, ds).validation.ec, 85.0) << m << " on " << ds;
    }
  }
}

}  // namespace
}  // namespace prm::core
