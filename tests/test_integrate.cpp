#include "numerics/integrate.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace prm::num {
namespace {

TEST(TrapezoidSampled, ExactForLinearData) {
  // Integral of 2t on [0, 4] = 16; trapezoid is exact for linear data.
  const std::vector<double> ts{0.0, 1.0, 2.5, 4.0};
  std::vector<double> ys(ts.size());
  for (std::size_t i = 0; i < ts.size(); ++i) ys[i] = 2.0 * ts[i];
  EXPECT_DOUBLE_EQ(trapezoid(ts, ys), 16.0);
}

TEST(TrapezoidSampled, RejectsBadInput) {
  EXPECT_THROW(trapezoid({0.0, 1.0}, {1.0}), std::invalid_argument);
  EXPECT_THROW(trapezoid({0.0, 0.0}, {1.0, 1.0}), std::invalid_argument);
  EXPECT_DOUBLE_EQ(trapezoid(std::vector<double>{1.0}, std::vector<double>{5.0}), 0.0);
}

TEST(TrapezoidFunction, ConvergesQuadratically) {
  const auto f = [](double x) { return std::sin(x); };
  const double exact = 1.0 - std::cos(1.0);
  const double e1 = std::fabs(trapezoid(f, 0.0, 1.0, 8) - exact);
  const double e2 = std::fabs(trapezoid(f, 0.0, 1.0, 16) - exact);
  EXPECT_NEAR(e1 / e2, 4.0, 0.3);  // halving h quarters the error
}

TEST(Simpson, ExactForCubics) {
  const auto f = [](double x) { return x * x * x - 2.0 * x + 1.0; };
  // Integral on [0, 2]: 4 - 4 + 2 = 2.
  EXPECT_NEAR(simpson(f, 0.0, 2.0, 2), 2.0, 1e-13);
}

TEST(Simpson, OddPanelCountRoundedUp) {
  const auto f = [](double x) { return x * x; };
  EXPECT_NEAR(simpson(f, 0.0, 3.0, 3), 9.0, 1e-12);
}

TEST(AdaptiveSimpson, HandlesSharpFeature) {
  // Narrow Gaussian bump: integral over [-1, 1] ~ sqrt(pi)/50.
  const double s = 0.02;
  const auto f = [s](double x) { return std::exp(-x * x / (s * s)); };
  const auto r = adaptive_simpson(f, -1.0, 1.0, 1e-12);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.value, s * std::sqrt(M_PI), 1e-10);
}

TEST(AdaptiveSimpson, SignFlipsForReversedBounds) {
  const auto f = [](double x) { return x; };
  const auto fwd = adaptive_simpson(f, 0.0, 2.0);
  const auto rev = adaptive_simpson(f, 2.0, 0.0);
  EXPECT_NEAR(fwd.value, 2.0, 1e-12);
  EXPECT_NEAR(rev.value, -2.0, 1e-12);
}

TEST(AdaptiveSimpson, ZeroWidthIntervalIsZero) {
  const auto r = adaptive_simpson([](double x) { return x * x; }, 1.5, 1.5);
  EXPECT_DOUBLE_EQ(r.value, 0.0);
  EXPECT_TRUE(r.converged);
}

TEST(GaussLegendre, ExactForHighDegreePolynomials) {
  // Order-n Gauss is exact for degree 2n-1; order 4 handles x^7.
  const auto f = [](double x) { return std::pow(x, 7); };
  // Integral of x^7 on [0, 1] = 1/8.
  EXPECT_NEAR(gauss_legendre(f, 0.0, 1.0, 4), 0.125, 1e-13);
}

TEST(GaussLegendre, MatchesAdaptiveOnSmoothIntegrand) {
  const auto f = [](double x) { return std::exp(-x) * std::cos(3.0 * x); };
  const double ref = adaptive_simpson(f, 0.0, 5.0, 1e-13).value;
  EXPECT_NEAR(gauss_legendre_composite(f, 0.0, 5.0, 12, 4), ref, 1e-10);
}

TEST(GaussLegendre, RejectsBadOrder) {
  EXPECT_THROW(gauss_legendre([](double) { return 1.0; }, 0.0, 1.0, 1),
               std::invalid_argument);
  EXPECT_THROW(gauss_legendre([](double) { return 1.0; }, 0.0, 1.0, 65),
               std::invalid_argument);
}

TEST(GaussLegendre, CompositeRequiresPanels) {
  EXPECT_THROW(gauss_legendre_composite([](double) { return 1.0; }, 0.0, 1.0, 4, 0),
               std::invalid_argument);
}

}  // namespace
}  // namespace prm::num
