#include "data/resample.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace prm::data {
namespace {

TEST(CubicSpline, InterpolatesKnotsExactly) {
  const std::vector<double> ts{0.0, 1.0, 2.5, 4.0};
  const std::vector<double> ys{1.0, 0.5, 0.8, 1.2};
  const CubicSpline s(ts, ys);
  for (std::size_t i = 0; i < ts.size(); ++i) {
    EXPECT_NEAR(s(ts[i]), ys[i], 1e-12);
  }
}

TEST(CubicSpline, ExactForLinearData) {
  // A natural spline through collinear points IS the line.
  std::vector<double> ts, ys;
  for (int i = 0; i <= 6; ++i) {
    ts.push_back(i * 0.7);
    ys.push_back(2.0 - 0.3 * i * 0.7);
  }
  const CubicSpline s(ts, ys);
  for (double t : {0.1, 1.3, 2.9, 4.0}) {
    EXPECT_NEAR(s(t), 2.0 - 0.3 * t, 1e-12);
    EXPECT_NEAR(s.derivative(t), -0.3, 1e-10);
  }
}

TEST(CubicSpline, ApproximatesSmoothFunctionWell) {
  std::vector<double> ts, ys;
  for (int i = 0; i <= 20; ++i) {
    const double t = i * 0.3;
    ts.push_back(t);
    ys.push_back(std::sin(t));
  }
  const CubicSpline s(ts, ys);
  // Natural-spline accuracy is O(h^4) in the interior but only O(h^2) near
  // the ends (the zero-curvature boundary condition is wrong for sin).
  for (double t = 0.05; t < 6.0; t += 0.17) {
    const bool near_edge = t < 0.6 || t > 5.4;
    EXPECT_NEAR(s(t), std::sin(t), near_edge ? 2e-3 : 5e-4) << "t = " << t;
  }
}

TEST(CubicSpline, ClampsOutsideRange) {
  const CubicSpline s({0.0, 1.0, 2.0}, {1.0, 2.0, 1.5});
  EXPECT_DOUBLE_EQ(s(-5.0), 1.0);
  EXPECT_DOUBLE_EQ(s(99.0), 1.5);
}

TEST(CubicSpline, TwoPointsDegradeToLine) {
  const CubicSpline s({0.0, 2.0}, {1.0, 3.0});
  EXPECT_NEAR(s(1.0), 2.0, 1e-12);
  EXPECT_NEAR(s.derivative(1.0), 1.0, 1e-12);
}

TEST(CubicSpline, Validation) {
  EXPECT_THROW(CubicSpline({0.0}, {1.0}), std::invalid_argument);
  EXPECT_THROW(CubicSpline({0.0, 1.0}, {1.0}), std::invalid_argument);
  EXPECT_THROW(CubicSpline({1.0, 0.0}, {1.0, 2.0}), std::invalid_argument);
  EXPECT_THROW(CubicSpline({0.0, 0.0}, {1.0, 2.0}), std::invalid_argument);
}

TEST(ResampleUniform, ProducesUniformGridWithSameEndpoints) {
  const PerformanceSeries irregular("ir", {0.0, 0.7, 2.9, 4.0, 9.5},
                                    {1.0, 0.95, 0.9, 0.93, 1.02});
  const PerformanceSeries u = resample_uniform(irregular, 20);
  ASSERT_EQ(u.size(), 20u);
  EXPECT_DOUBLE_EQ(u.time(0), 0.0);
  EXPECT_DOUBLE_EQ(u.time(19), 9.5);
  EXPECT_NEAR(u.value(0), 1.0, 1e-12);
  EXPECT_NEAR(u.value(19), 1.02, 1e-12);
  const double dt = u.time(1) - u.time(0);
  for (std::size_t i = 1; i < u.size(); ++i) {
    EXPECT_NEAR(u.time(i) - u.time(i - 1), dt, 1e-12);
  }
}

TEST(ResampleUniform, PreservesUniformSeries) {
  const PerformanceSeries s("u", {1.0, 0.98, 0.96, 0.97, 0.99, 1.01});
  const PerformanceSeries r = resample_uniform(s, 6);
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_NEAR(r.value(i), s.value(i), 1e-12);
  }
}

TEST(ResampleDt, RespectsSpacing) {
  const PerformanceSeries s("x", {0.0, 1.5, 4.2, 7.0}, {1.0, 0.9, 0.95, 1.0});
  const PerformanceSeries r = resample_dt(s, 1.0);
  ASSERT_EQ(r.size(), 8u);  // 0..7 inclusive
  EXPECT_DOUBLE_EQ(r.time(7), 7.0);
  EXPECT_THROW(resample_dt(s, 0.0), std::invalid_argument);
  EXPECT_THROW(resample_dt(s, 100.0), std::invalid_argument);
}

TEST(ResampleUniform, Validation) {
  const PerformanceSeries one("o", {1.0});
  EXPECT_THROW(resample_uniform(one, 10), std::invalid_argument);
  const PerformanceSeries ok("k", {1.0, 2.0});
  EXPECT_THROW(resample_uniform(ok, 1), std::invalid_argument);
}

}  // namespace
}  // namespace prm::data
