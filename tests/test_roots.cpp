#include "numerics/roots.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace prm::num {
namespace {

TEST(Bisect, FindsSimpleRoot) {
  const auto r = bisect([](double x) { return x * x - 2.0; }, 0.0, 2.0);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.x, std::sqrt(2.0), 1e-10);
}

TEST(Bisect, ExactEndpointRoot) {
  const auto r = bisect([](double x) { return x - 1.0; }, 1.0, 2.0);
  EXPECT_TRUE(r.converged);
  EXPECT_DOUBLE_EQ(r.x, 1.0);
}

TEST(Bisect, NoSignChangeReportsNotConverged) {
  const auto r = bisect([](double x) { return x * x + 1.0; }, -1.0, 1.0);
  EXPECT_FALSE(r.converged);
}

TEST(Brent, FindsRootFastOnSmoothFunction) {
  const auto r = brent([](double x) { return std::cos(x) - x; }, 0.0, 1.0);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.x, 0.7390851332151607, 1e-12);
  EXPECT_LT(r.iterations, 15);
}

TEST(Brent, MatchesBisectionResult) {
  const auto f = [](double x) { return std::exp(x) - 3.0; };
  const auto rb = brent(f, 0.0, 2.0);
  const auto ri = bisect(f, 0.0, 2.0);
  EXPECT_TRUE(rb.converged);
  EXPECT_NEAR(rb.x, ri.x, 1e-8);
  EXPECT_NEAR(rb.x, std::log(3.0), 1e-12);
}

TEST(Brent, HandlesSteepFunction) {
  const auto r = brent([](double x) { return std::pow(x, 9) - 0.5; }, 0.0, 1.0);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.x, std::pow(0.5, 1.0 / 9.0), 1e-10);
}

TEST(Brent, NoSignChangeReturnsBestEndpoint) {
  const auto r = brent([](double x) { return x * x + 0.5; }, -1.0, 2.0);
  EXPECT_FALSE(r.converged);
}

TEST(NewtonSafeguarded, ConvergesQuadratically) {
  const auto fdf = [](double x) {
    return std::make_pair(x * x - 2.0, 2.0 * x);
  };
  const auto r = newton_safeguarded(fdf, 1.0, 0.0, 2.0);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.x, std::sqrt(2.0), 1e-9);
}

TEST(NewtonSafeguarded, SurvivesZeroDerivative) {
  // f(x) = x^3 has f'(0) = 0; start at the stationary point.
  const auto fdf = [](double x) {
    return std::make_pair(x * x * x - 8.0, 3.0 * x * x);
  };
  const auto r = newton_safeguarded(fdf, 0.0, -1.0, 5.0);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.x, 2.0, 1e-6);
}

TEST(ExpandBracket, GrowsUntilSignChange) {
  const auto f = [](double x) { return x - 100.0; };
  const auto br = expand_bracket(f, 0.0, 1.0);
  ASSERT_TRUE(br.has_value());
  EXPECT_LT(f(br->first) * f(br->second), 0.0);
}

TEST(ExpandBracket, GivesUpWhenNoRoot) {
  const auto f = [](double) { return 1.0; };
  EXPECT_FALSE(expand_bracket(f, 0.0, 1.0, 8).has_value());
}

TEST(FirstCrossing, FindsEarliestRootOfOscillation) {
  // sin has roots at pi, 2pi, ...; earliest in (0.1, 10) is pi.
  const auto t = first_crossing([](double x) { return std::sin(x); }, 0.1, 10.0);
  ASSERT_TRUE(t.has_value());
  EXPECT_NEAR(*t, M_PI, 1e-8);
}

TEST(FirstCrossing, NoneWhenPositiveEverywhere) {
  EXPECT_FALSE(first_crossing([](double x) { return x * x + 1.0; }, -3.0, 3.0).has_value());
}

TEST(FirstCrossing, DegenerateRange) {
  EXPECT_FALSE(first_crossing([](double x) { return x; }, 1.0, 1.0).has_value());
}

}  // namespace
}  // namespace prm::num
