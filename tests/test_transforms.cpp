#include "optimize/transforms.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "numerics/differentiate.hpp"

namespace prm::opt {
namespace {

TEST(Bound, IntervalRequiresLoBelowHi) {
  EXPECT_NO_THROW(Bound::interval(0.0, 1.0));
  EXPECT_THROW(Bound::interval(1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(Bound::interval(2.0, 1.0), std::invalid_argument);
}

TEST(ScalarTransform, PositiveRoundTrip) {
  const Bound b = Bound::positive();
  for (double p : {1e-6, 0.5, 1.0, 42.0, 1e6}) {
    EXPECT_NEAR(to_external_scalar(b, to_internal_scalar(b, p)), p, 1e-12 * p);
  }
  EXPECT_THROW(to_internal_scalar(b, 0.0), std::domain_error);
  EXPECT_THROW(to_internal_scalar(b, -1.0), std::domain_error);
}

TEST(ScalarTransform, NegativeRoundTrip) {
  const Bound b = Bound::negative();
  for (double p : {-1e-6, -0.5, -42.0}) {
    EXPECT_NEAR(to_external_scalar(b, to_internal_scalar(b, p)), p, 1e-12 * std::fabs(p));
  }
  EXPECT_THROW(to_internal_scalar(b, 1.0), std::domain_error);
}

TEST(ScalarTransform, IntervalRoundTripAndRange) {
  const Bound b = Bound::interval(-2.0, 5.0);
  for (double p : {-1.999, -1.0, 0.0, 3.7, 4.999}) {
    EXPECT_NEAR(to_external_scalar(b, to_internal_scalar(b, p)), p, 1e-9);
  }
  EXPECT_THROW(to_internal_scalar(b, -2.0), std::domain_error);
  EXPECT_THROW(to_internal_scalar(b, 6.0), std::domain_error);
  // Any internal value maps inside the interval.
  for (double u : {-100.0, -1.0, 0.0, 1.0, 100.0}) {
    const double p = to_external_scalar(b, u);
    EXPECT_GT(p, -2.0);
    EXPECT_LT(p, 5.0);
  }
}

TEST(ScalarTransform, FreeIsIdentity) {
  const Bound b = Bound::free();
  EXPECT_DOUBLE_EQ(to_internal_scalar(b, -3.7), -3.7);
  EXPECT_DOUBLE_EQ(to_external_scalar(b, 2.2), 2.2);
}

TEST(ParameterTransform, VectorRoundTrip) {
  const ParameterTransform t({Bound::positive(), Bound::negative(), Bound::free(),
                              Bound::interval(0.0, 1.0)});
  const num::Vector p{2.5, -0.3, 7.0, 0.6};
  const num::Vector u = t.to_internal(p);
  const num::Vector back = t.to_external(u);
  ASSERT_EQ(back.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_NEAR(back[i], p[i], 1e-10);
}

TEST(ParameterTransform, SizeMismatchThrows) {
  const ParameterTransform t({Bound::free()});
  EXPECT_THROW(t.to_internal({1.0, 2.0}), std::invalid_argument);
  EXPECT_THROW(t.to_external({1.0, 2.0}), std::invalid_argument);
  EXPECT_THROW(t.dexternal_dinternal({1.0, 2.0}), std::invalid_argument);
}

TEST(ParameterTransform, ChainRuleDerivativeMatchesFiniteDifference) {
  const ParameterTransform t({Bound::positive(), Bound::negative(),
                              Bound::interval(-1.0, 3.0), Bound::free()});
  const num::Vector u{0.3, -0.7, 0.2, 1.5};
  const num::Vector d = t.dexternal_dinternal(u);
  for (std::size_t i = 0; i < u.size(); ++i) {
    const auto f = [&t, &u, i](double ui) {
      num::Vector uu = u;
      uu[i] = ui;
      return t.to_external(uu)[i];
    };
    EXPECT_NEAR(d[i], num::derivative_richardson(f, u[i]), 1e-7) << "coord " << i;
  }
}

TEST(ParameterTransform, ExternalAlwaysSatisfiesBounds) {
  const ParameterTransform t({Bound::positive(), Bound::negative(),
                              Bound::interval(2.0, 3.0)});
  for (double u : {-50.0, -1.0, 0.0, 1.0, 50.0}) {
    const num::Vector p = t.to_external({u, u, u});
    EXPECT_GT(p[0], 0.0);
    EXPECT_LT(p[1], 0.0);
    EXPECT_GT(p[2], 2.0);
    EXPECT_LT(p[2], 3.0);
  }
}

}  // namespace
}  // namespace prm::opt
