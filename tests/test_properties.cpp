// Property-based suites (parameterized sweeps) over invariants the system
// must hold for ALL inputs in a family, not just hand-picked cases:
//  * fitting invariance under shapes/seeds,
//  * metric identities,
//  * closed-form vs numeric agreement across random bathtub parameters,
//  * mixture evaluation invariants across all 4 x 4 family/trend combos.
#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "core/analysis.hpp"
#include "core/bathtub.hpp"
#include "core/metrics.hpp"
#include "core/mixture.hpp"
#include "core/predictor.hpp"
#include "data/generator.hpp"
#include "numerics/integrate.hpp"

namespace prm::core {
namespace {

// ---- Fit-quality property over generated scenarios ------------------------

struct ScenarioCase {
  data::RecessionShape shape;
  std::uint64_t seed;
};

class FitOverScenarios : public ::testing::TestWithParam<ScenarioCase> {};

TEST_P(FitOverScenarios, EasyShapesFitWellHardShapesDoNot) {
  const auto series = data::generate_shape(GetParam().shape, 48, GetParam().seed);
  const data::RecessionDataset ds{series, GetParam().shape, 5};
  const auto r = analyze("competing-risks", ds);
  ASSERT_TRUE(r.fit.success());
  if (GetParam().shape == data::RecessionShape::kV ||
      GetParam().shape == data::RecessionShape::kU) {
    EXPECT_GT(r.validation.r2_adj, 0.85) << "seed " << GetParam().seed;
  }
  if (GetParam().shape == data::RecessionShape::kW) {
    EXPECT_LT(r.validation.r2_adj, 0.85) << "seed " << GetParam().seed;
  }
}

TEST_P(FitOverScenarios, FitIsDeterministicPerScenario) {
  const auto series = data::generate_shape(GetParam().shape, 48, GetParam().seed);
  const data::RecessionDataset ds{series, GetParam().shape, 5};
  const auto a = analyze("quadratic", ds);
  const auto b = analyze("quadratic", ds);
  EXPECT_EQ(a.fit.parameters(), b.fit.parameters());
}

std::vector<ScenarioCase> scenario_cases() {
  std::vector<ScenarioCase> cases;
  for (auto shape : {data::RecessionShape::kV, data::RecessionShape::kU,
                     data::RecessionShape::kW}) {
    for (std::uint64_t seed : {1u, 2u, 3u, 4u}) cases.push_back({shape, seed});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(ShapesAndSeeds, FitOverScenarios,
                         ::testing::ValuesIn(scenario_cases()),
                         [](const ::testing::TestParamInfo<ScenarioCase>& info) {
                           return std::string(data::to_string(info.param.shape)) + "_seed" +
                                  std::to_string(info.param.seed);
                         });

// ---- Metric identities over all models and datasets ----------------------

class MetricIdentities : public ::testing::TestWithParam<const char*> {};

TEST_P(MetricIdentities, HoldOnEveryRecession) {
  for (const auto& ds : data::recession_catalog()) {
    const auto fit = fit_model(GetParam(), ds.series, ds.holdout);
    const auto ms = predictive_metrics(fit);
    const auto find = [&ms](MetricKind k) {
      for (const auto& m : ms) {
        if (m.kind == k) return m;
      }
      throw std::logic_error("metric missing");
    };
    const double duration =
        ds.series.times().back() - ds.series.time(ds.series.size() - ds.holdout);
    const auto preserved = find(MetricKind::kPerformancePreserved);
    const auto lost = find(MetricKind::kPerformanceLost);
    const auto avg_p = find(MetricKind::kAvgPreserved);
    const auto avg_l = find(MetricKind::kAvgLost);
    const auto norm_p = find(MetricKind::kNormalizedAvgPreserved);
    const auto norm_l = find(MetricKind::kNormalizedAvgLost);

    // avg = integral / duration, for both actual and predicted.
    EXPECT_NEAR(avg_p.actual, preserved.actual / duration, 1e-10) << ds.series.name();
    EXPECT_NEAR(avg_p.predicted, preserved.predicted / duration, 1e-10);
    EXPECT_NEAR(avg_l.actual, lost.actual / duration, 1e-10);
    // normalized preserved + normalized lost = 1.
    EXPECT_NEAR(norm_p.actual + norm_l.actual, 1.0, 1e-10);
    EXPECT_NEAR(norm_p.predicted + norm_l.predicted, 1.0, 1e-10);
    // relative error is symmetric magnitude of Eq. 22.
    for (const auto& m : ms) EXPECT_GE(m.relative_error, 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Models, MetricIdentities,
                         ::testing::Values("quadratic", "competing-risks",
                                           "mix-wei-exp-log", "mix-wei-wei-log"),
                         [](const ::testing::TestParamInfo<const char*>& info) {
                           std::string n = info.param;
                           for (char& c : n) {
                             if (c == '-') c = '_';
                           }
                           return n;
                         });

// ---- Closed forms vs numerics over random bathtub parameters -------------

class BathtubClosedForms : public ::testing::TestWithParam<int> {};

TEST_P(BathtubClosedForms, AreaMatchesQuadratureForRandomParameters) {
  std::mt19937_64 rng(GetParam());
  std::uniform_real_distribution<double> u(0.0, 1.0);
  const QuadraticBathtubModel quad;
  const CompetingRisksModel cr;
  for (int rep = 0; rep < 10; ++rep) {
    const num::Vector pq{0.5 + u(rng), -0.08 * u(rng) - 1e-4, 0.002 * u(rng) + 1e-6};
    const num::Vector pc{0.5 + u(rng), 0.5 * u(rng) + 1e-3, 0.002 * u(rng) + 1e-6};
    const double t0 = 5.0 * u(rng);
    const double t1 = t0 + 1.0 + 40.0 * u(rng);
    const double qa = *quad.area_closed_form(pq, t0, t1);
    const double qn = num::adaptive_simpson(
        [&](double t) { return quad.evaluate(t, pq); }, t0, t1, 1e-11).value;
    EXPECT_NEAR(qa, qn, 1e-7 * std::max(1.0, std::fabs(qa)));
    const double ca = *cr.area_closed_form(pc, t0, t1);
    const double cn = num::adaptive_simpson(
        [&](double t) { return cr.evaluate(t, pc); }, t0, t1, 1e-11).value;
    EXPECT_NEAR(ca, cn, 1e-7 * std::max(1.0, std::fabs(ca)));
  }
}

TEST_P(BathtubClosedForms, RecoveryTimeSolvesTheCurveForRandomParameters) {
  std::mt19937_64 rng(GetParam() + 1000);
  std::uniform_real_distribution<double> u(0.0, 1.0);
  const QuadraticBathtubModel quad;
  const CompetingRisksModel cr;
  for (int rep = 0; rep < 10; ++rep) {
    const num::Vector pq{1.0, -0.06 * u(rng) - 0.01, 0.002 * u(rng) + 2e-4};
    const double tdq = *quad.trough_closed_form(pq);
    const double level = quad.evaluate(tdq, pq) +
                         0.8 * (pq[0] - quad.evaluate(tdq, pq)) * (0.2 + 0.7 * u(rng));
    const auto trq = quad.recovery_time_closed_form(pq, level, tdq);
    ASSERT_TRUE(trq.has_value());
    EXPECT_NEAR(quad.evaluate(*trq, pq), level, 1e-8);

    const num::Vector pc{1.0, 0.4 * u(rng) + 0.05, 0.002 * u(rng) + 2e-4};
    const double tdc = *cr.trough_closed_form(pc);
    const double vmin = cr.evaluate(tdc, pc);
    const double level_c = vmin + 0.5 * (1.0 - vmin) + 1e-4;
    const auto trc = cr.recovery_time_closed_form(pc, level_c, tdc);
    ASSERT_TRUE(trc.has_value());
    EXPECT_NEAR(cr.evaluate(*trc, pc), level_c, 1e-8);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BathtubClosedForms, ::testing::Values(11, 22, 33));

// ---- Mixture evaluation invariants over all combos ------------------------

struct ComboCase {
  Family f1;
  Family f2;
  RecoveryTrend trend;
};

class MixtureCombos : public ::testing::TestWithParam<ComboCase> {};

TEST_P(MixtureCombos, NominalAtOriginAndFiniteEverywhere) {
  const MixtureModel m({GetParam().f1, GetParam().f2, GetParam().trend});
  // Plausible positive parameters for any family layout.
  num::Vector p;
  for (std::size_t i = 0; i < m.num_parameters(); ++i) p.push_back(0.5 + 0.3 * i);
  EXPECT_DOUBLE_EQ(m.evaluate(0.0, p), 1.0);
  for (double t : {0.001, 0.5, 1.0, 5.0, 20.0, 47.0}) {
    const double v = m.evaluate(t, p);
    EXPECT_TRUE(std::isfinite(v)) << m.name() << " t=" << t;
  }
}

TEST_P(MixtureCombos, RecoveryTermVanishesBeforeHazard) {
  const MixtureModel m({GetParam().f1, GetParam().f2, GetParam().trend});
  num::Vector p;
  for (std::size_t i = 0; i < m.num_parameters(); ++i) p.push_back(1.0);
  // At t <= 0 both CDFs are 0: P = 1 regardless of trend/beta.
  EXPECT_DOUBLE_EQ(m.evaluate(0.0, p), 1.0);
  EXPECT_DOUBLE_EQ(m.evaluate(-3.0, p), 1.0);
}

TEST_P(MixtureCombos, AnalyticGradientMatchesFiniteDifference) {
  const MixtureModel m({GetParam().f1, GetParam().f2, GetParam().trend});
  // Representative positive parameters; beta (last) kept moderate.
  num::Vector p;
  for (std::size_t i = 0; i + 1 < m.num_parameters(); ++i) p.push_back(0.8 + 0.4 * i);
  p.push_back(0.05);
  for (double t : {0.5, 3.0, 11.0, 30.0}) {
    const num::Vector g = m.gradient(t, p);
    for (std::size_t j = 0; j < p.size(); ++j) {
      num::Vector pp = p;
      const double h = 1e-6 * std::max(1.0, std::fabs(p[j]));
      pp[j] += h;
      const double up = m.evaluate(t, pp);
      pp[j] -= 2.0 * h;
      const double dn = m.evaluate(t, pp);
      const double fd = (up - dn) / (2.0 * h);
      EXPECT_NEAR(g[j], fd, 1e-4 * std::max(1.0, std::fabs(fd)))
          << m.name() << " t=" << t << " param " << j;
    }
  }
}

TEST_P(MixtureCombos, MetadataConsistent) {
  const MixtureModel m({GetParam().f1, GetParam().f2, GetParam().trend});
  EXPECT_EQ(m.parameter_names().size(), m.num_parameters());
  EXPECT_EQ(m.parameter_bounds().size(), m.num_parameters());
  EXPECT_EQ(m.num_parameters(),
            family_num_parameters(GetParam().f1) + family_num_parameters(GetParam().f2) + 1);
  const auto clone = m.clone();
  EXPECT_EQ(clone->name(), m.name());
}

std::vector<ComboCase> all_combos() {
  std::vector<ComboCase> out;
  for (Family f1 : {Family::kExponential, Family::kWeibull, Family::kLogNormal,
                    Family::kGamma}) {
    for (Family f2 : {Family::kExponential, Family::kWeibull}) {
      for (RecoveryTrend tr : {RecoveryTrend::kConstant, RecoveryTrend::kLinear,
                               RecoveryTrend::kExponential, RecoveryTrend::kLogarithmic}) {
        out.push_back({f1, f2, tr});
      }
    }
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(AllCombos, MixtureCombos, ::testing::ValuesIn(all_combos()),
                         [](const ::testing::TestParamInfo<ComboCase>& info) {
                           return std::string(to_string(info.param.f1)) + "_" +
                                  std::string(to_string(info.param.f2)) + "_" +
                                  std::string(to_string(info.param.trend));
                         });

// ---- Confidence-interval coverage over noise levels -----------------------

class CoverageOverNoise : public ::testing::TestWithParam<double> {};

TEST_P(CoverageOverNoise, Eq13BandCoversPlausibleFractionAtAnyNoise) {
  // Whatever the noise level, the 95% level band computed from the fit
  // residuals should cover a sane fraction of ALL samples on a fittable
  // shape. Pool several seeds to damp sampling noise.
  double total_ec = 0.0;
  int count = 0;
  for (std::uint64_t seed : {2u, 4u, 6u, 8u}) {
    data::ScenarioSpec spec;
    spec.shape = data::RecessionShape::kU;
    spec.noise = GetParam();
    spec.seed = seed;
    const auto series = data::generate_scenario(spec);
    const auto fit = fit_model("competing-risks", series, 5);
    const auto v = validate(fit);
    total_ec += v.ec;
    ++count;
  }
  const double mean_ec = total_ec / count;
  EXPECT_GE(mean_ec, 80.0) << "noise " << GetParam();
  EXPECT_LE(mean_ec, 100.0);
}

INSTANTIATE_TEST_SUITE_P(NoiseLevels, CoverageOverNoise,
                         ::testing::Values(0.0005, 0.002, 0.008),
                         [](const ::testing::TestParamInfo<double>& info) {
                           return "sigma_" +
                                  std::to_string(static_cast<int>(info.param * 1e5));
                         });

// ---- Exact-recovery sweep over every paper model --------------------------
//
// For each registered model, generate noise-free data from known parameters
// and verify the fit pipeline recovers a curve indistinguishable from the
// generator (SSE ~ 0). This is the end-to-end identifiability check.

class ExactRecovery : public ::testing::TestWithParam<const char*> {};

TEST_P(ExactRecovery, FitReproducesGeneratingCurve) {
  const ModelPtr model = ModelRegistry::instance().create(GetParam());
  // Generate from the model's own first initial guess on a template series
  // (guaranteed to satisfy the bounds and look like a resilience curve).
  const auto base = data::generate_shape(data::RecessionShape::kU, 48, 13);
  const num::Vector truth = model->initial_guesses(base).front();
  std::vector<double> v(48);
  for (std::size_t i = 0; i < 48; ++i) {
    v[i] = model->evaluate(static_cast<double>(i), truth);
  }
  const data::PerformanceSeries synthetic("from-truth", std::move(v));
  const FitResult fit = fit_model(*model, synthetic, 5);
  ASSERT_TRUE(fit.success()) << GetParam();
  EXPECT_LT(fit.sse, 1e-8) << GetParam();
  // Holdout predictions match the generating curve, not just the fit window.
  const auto tail = fit.holdout_predictions();
  for (std::size_t i = 0; i < tail.size(); ++i) {
    const double t = synthetic.time(fit.fit_count() + i);
    EXPECT_NEAR(tail[i], model->evaluate(t, truth), 1e-3) << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(AllRegisteredModels, ExactRecovery,
                         ::testing::Values("quadratic", "competing-risks",
                                           "mix-exp-exp-log", "mix-wei-exp-log",
                                           "mix-exp-wei-log", "mix-wei-wei-log"),
                         [](const ::testing::TestParamInfo<const char*>& info) {
                           std::string n = info.param;
                           for (char& c : n) {
                             if (c == '-') c = '_';
                           }
                           return n;
                         });

// ---- Failure injection: fitting must degrade gracefully ------------------

TEST(FailureInjection, OutlierInFitWindowDoesNotBreakFit) {
  auto series = data::generate_shape(data::RecessionShape::kU, 48, 9);
  std::vector<double> v(series.values().begin(), series.values().end());
  v[20] += 0.5;  // gross outlier
  const data::PerformanceSeries corrupted("outlier", std::move(v));
  const auto fit = fit_model("competing-risks", corrupted, 5);
  EXPECT_TRUE(fit.success());
  EXPECT_TRUE(std::isfinite(fit.sse));
}

TEST(FailureInjection, ConstantSeriesFitsWithoutCrashing) {
  const data::PerformanceSeries flat("flat", std::vector<double>(30, 1.0));
  const auto fit = fit_model("quadratic", flat, 3);
  EXPECT_TRUE(std::isfinite(fit.sse));
  EXPECT_LT(fit.sse, 1e-6);  // flat data is representable (beta, gamma -> 0)
}

TEST(FailureInjection, VeryShortSeriesStillFits) {
  // Minimum viable: params + 1 samples in the fit window.
  const data::PerformanceSeries tiny("tiny", {1.0, 0.97, 0.95, 0.96, 0.98});
  const auto fit = fit_model("quadratic", tiny, 1);
  EXPECT_TRUE(fit.success());
}

TEST(FailureInjection, MonotoneDecliningSeriesYieldsFiniteFit) {
  // No recovery at all (still mid-recession): models must extrapolate
  // without numerical failure.
  std::vector<double> v(30);
  for (int i = 0; i < 30; ++i) v[i] = 1.0 - 0.004 * i;
  const data::PerformanceSeries declining("declining", std::move(v));
  for (const char* m : {"quadratic", "competing-risks", "mix-wei-exp-log"}) {
    const auto fit = fit_model(m, declining, 3);
    EXPECT_TRUE(std::isfinite(fit.sse)) << m;
  }
}

}  // namespace
}  // namespace prm::core
