// Monitor-level WAL recovery tests: the durability contract is byte-exact --
// a monitor recovered from its WAL directory (snapshot + log tail) must
// serialize to EXACTLY the bytes of a reference monitor that saw the same
// acknowledged mutations and never crashed, refits included. Also covered:
// torn-tail tolerance, checkpoint/compaction, idempotent recovery, durable
// stream removal with re-creation, alert-rule replay, the constructor guard
// against forking history, and all three fsync policies.
#include <gtest/gtest.h>

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "live/monitor.hpp"
#include "wal/compact.hpp"
#include "wal/log.hpp"

namespace {

using namespace prm;
using live::StreamPhase;

/// RAII temp directory under TMPDIR; removed (recursively) on destruction.
class TempDir {
 public:
  TempDir() {
    const char* base = std::getenv("TMPDIR");
    path_ = std::string(base != nullptr ? base : "/tmp") + "/prm_rec_XXXXXX";
    if (::mkdtemp(path_.data()) == nullptr) {
      throw std::runtime_error("mkdtemp failed");
    }
  }
  ~TempDir() { remove_tree(path_); }
  const std::string& path() const { return path_; }

  static void remove_tree(const std::string& dir) {
    if (DIR* handle = ::opendir(dir.c_str())) {
      while (const dirent* entry = ::readdir(handle)) {
        const std::string name = entry->d_name;
        if (name == "." || name == "..") continue;
        const std::string child = dir + "/" + name;
        struct stat st{};
        if (::lstat(child.c_str(), &st) == 0 && S_ISDIR(st.st_mode)) {
          remove_tree(child);
        } else {
          ::unlink(child.c_str());
        }
      }
      ::closedir(handle);
    }
    ::rmdir(dir.c_str());
  }

 private:
  std::string path_;
};

double smoothstep(double x) {
  if (x <= 0.0) return 0.0;
  if (x >= 1.0) return 1.0;
  return x * x * (3.0 - 2.0 * x);
}

constexpr std::size_t kPrefix = 16;
constexpr double kDipLen = 10.0;
constexpr double kRecoveryLen = 30.0;

/// Noiseless V-shaped disruption: flat 1.0, dip to 0.90, recover to 1.02.
double v_curve(double t) {
  const double u = t - static_cast<double>(kPrefix);
  if (u <= 0.0) return 1.0;
  if (u <= kDipLen) return 1.0 - 0.10 * smoothstep(u / kDipLen);
  return 0.90 + 0.12 * smoothstep((u - kDipLen) / kRecoveryLen);
}

/// Deterministic options: batched refits drained by refit_batch(1) make the
/// fit pipeline bit-identical run to run, so snapshots can be compared as
/// raw bytes. shards = 1 keeps the WAL to one segment sequence (several
/// tests truncate "the last segment").
live::MonitorOptions wal_options(const std::string& dir) {
  live::MonitorOptions options;
  options.stream.window_capacity = 64;
  options.stream.cusum.baseline = 12;
  options.stream.confirm_samples = 3;
  options.stream.recovery_fraction = 0.98;
  options.model = "competing-risks";
  options.refit_every = 2;
  options.min_fit_samples = 8;
  options.threads = 1;
  options.shards = 1;
  options.batched_refits = true;
  options.wal.dir = dir;
  options.wal.fsync = wal::FsyncPolicy::kNever;  // tests control durability
  return options;
}

live::MonitorOptions no_wal_options() {
  live::MonitorOptions options = wal_options("unused");
  options.wal.dir.clear();
  return options;
}

std::string snapshot_bytes(live::Monitor& monitor) {
  std::ostringstream out;
  monitor.save(out);
  return out.str();
}

/// Drive the disruption through `monitor` (deterministically: one
/// refit_batch pass after every sample).
void ingest_v_curve(live::Monitor& monitor, const std::string& stream,
                    std::size_t from, std::size_t to) {
  for (std::size_t i = from; i < to; ++i) {
    const double t = static_cast<double>(i);
    monitor.ingest(stream, t, v_curve(t));
    monitor.refit_batch(1);
  }
}

constexpr std::size_t kMidRecovery =
    kPrefix + static_cast<std::size_t>(kDipLen) + 15;

// ---------------------------------------------------------------------------

TEST(WalRecovery, WalOnAndWalOffSnapshotsAreByteIdentical) {
  // The WAL must be invisible to the engine's state evolution: the same
  // ingest sequence with and without a log attached serializes identically
  // (wal_seq / incarnation counters advance either way, by design).
  TempDir dir;
  live::Monitor with_wal(wal_options(dir.path()));
  live::Monitor without_wal(no_wal_options());
  ingest_v_curve(with_wal, "svc", 0, kMidRecovery);
  ingest_v_curve(without_wal, "svc", 0, kMidRecovery);
  EXPECT_GT(with_wal.snapshot("svc").refits, 0u) << "scenario must refit";
  EXPECT_EQ(snapshot_bytes(with_wal), snapshot_bytes(without_wal));
}

TEST(WalRecovery, RecoverFromLogAloneReproducesTheReferenceExactly) {
  // Crash before any checkpoint: recovery replays the log from scratch and
  // must land on the never-crashed reference, byte for byte -- fits are
  // replayed from logged results, not refit (which could differ).
  TempDir dir;
  std::string reference;
  {
    live::Monitor monitor(wal_options(dir.path()));
    ingest_v_curve(monitor, "svc", 0, kMidRecovery);
    ASSERT_GT(monitor.snapshot("svc").refits, 0u);
    reference = snapshot_bytes(monitor);
    // Destroyed WITHOUT shutdown(): no snapshot is written, like a crash
    // whose buffered log bytes still reached the file.
  }
  ASSERT_FALSE(wal::file_exists(wal::snapshot_path(dir.path())));

  auto recovered = live::Monitor::recover(wal_options(dir.path()));
  EXPECT_EQ(snapshot_bytes(*recovered), reference);

  const wal::RecoveryStats& stats = recovered->recovery_stats();
  EXPECT_FALSE(stats.snapshot_loaded);
  EXPECT_GT(stats.records, 0u);
  EXPECT_EQ(stats.applied, stats.records);
  EXPECT_EQ(stats.skipped, 0u);
  EXPECT_EQ(stats.torn_tails, 0u);

  // The recovered monitor is fully live: it keeps ingesting and refitting.
  const std::size_t total =
      kPrefix + static_cast<std::size_t>(kDipLen + kRecoveryLen) + 8;
  ingest_v_curve(*recovered, "svc", kMidRecovery, total);
  recovered->drain();
  const auto snap = recovered->snapshot("svc");
  EXPECT_TRUE(snap.phase == StreamPhase::kRestored ||
              snap.phase == StreamPhase::kNominal);
}

TEST(WalRecovery, CheckpointFoldsTheLogIntoTheSnapshotAndCompacts) {
  TempDir dir;
  live::MonitorOptions options = wal_options(dir.path());
  options.wal.segment_bytes = 1024;  // force rotations

  std::string reference;
  {
    live::Monitor monitor(options);
    ingest_v_curve(monitor, "svc", 0, kPrefix + 5);
    monitor.checkpoint();
    ASSERT_TRUE(wal::file_exists(wal::snapshot_path(dir.path())));
    EXPECT_GE(monitor.wal_stats().compactions, 1u);

    // Mutations after the checkpoint live only in the log tail.
    ingest_v_curve(monitor, "svc", kPrefix + 5, kMidRecovery);
    ASSERT_GT(monitor.snapshot("svc").refits, 0u);
    reference = snapshot_bytes(monitor);
  }

  auto recovered = live::Monitor::recover(options);
  EXPECT_EQ(snapshot_bytes(*recovered), reference);
  const wal::RecoveryStats& stats = recovered->recovery_stats();
  EXPECT_TRUE(stats.snapshot_loaded);
  EXPECT_GT(stats.applied, 0u);
}

TEST(WalRecovery, ShutdownCheckpointLeavesNothingToReplay) {
  // A clean shutdown folds everything into the snapshot; the next boot must
  // load it and apply zero log records (covered records would be skipped by
  // the (incarnation, seq) gate anyway -- here there are none at all).
  TempDir dir;
  std::string reference;
  {
    live::Monitor monitor(wal_options(dir.path()));
    ingest_v_curve(monitor, "svc", 0, kMidRecovery);
    reference = snapshot_bytes(monitor);
    monitor.shutdown();
  }
  auto recovered = live::Monitor::recover(wal_options(dir.path()));
  EXPECT_EQ(snapshot_bytes(*recovered), reference);
  const wal::RecoveryStats& stats = recovered->recovery_stats();
  EXPECT_TRUE(stats.snapshot_loaded);
  EXPECT_EQ(stats.applied, 0u);
}

TEST(WalRecovery, RecoveryIsIdempotentAcrossRepeatedRestarts) {
  TempDir dir;
  std::string reference;
  {
    live::Monitor monitor(wal_options(dir.path()));
    ingest_v_curve(monitor, "svc", 0, kMidRecovery);
    reference = snapshot_bytes(monitor);
  }
  for (int boot = 0; boot < 3; ++boot) {
    auto recovered = live::Monitor::recover(wal_options(dir.path()));
    EXPECT_EQ(snapshot_bytes(*recovered), reference) << "boot " << boot;
  }
}

TEST(WalRecovery, TornFinalRecordIsDroppedAndTheRestSurvives) {
  // Flat data far below min_fit_samples: the log is exactly one create plus
  // N ingest records, so truncating the tail loses exactly the last sample.
  TempDir dir;
  live::MonitorOptions options = wal_options(dir.path());
  options.min_fit_samples = 1000;
  constexpr std::size_t kSamples = 12;
  {
    live::Monitor monitor(options);
    for (std::size_t i = 0; i < kSamples; ++i) {
      monitor.ingest("svc", static_cast<double>(i), 1.0);
    }
  }

  const auto segments = wal::list_segments(dir.path());
  ASSERT_FALSE(segments.empty());
  const std::string& last = segments.back().path;
  const std::uint64_t size = wal::file_size(last);
  ASSERT_GT(size, 4u);
  ASSERT_EQ(::truncate(last.c_str(), static_cast<off_t>(size - 4)), 0);

  auto recovered = live::Monitor::recover(options);
  const wal::RecoveryStats& stats = recovered->recovery_stats();
  EXPECT_EQ(stats.torn_tails, 1u);
  EXPECT_EQ(recovered->snapshot("svc").samples_seen, kSamples - 1);

  // The lost (never-acknowledged-durable) sample can simply be re-ingested.
  recovered->ingest("svc", static_cast<double>(kSamples - 1), 1.0);
  EXPECT_EQ(recovered->snapshot("svc").samples_seen, kSamples);
}

TEST(WalRecovery, BatchedIngestRecoversByteIdenticalToTheReference) {
  // The same crash-and-replay contract as per-sample ingest, but with the
  // whole disruption fed through ingest_batch (one WAL record per batch):
  // recovery must land on the never-crashed reference byte for byte.
  TempDir dir;
  std::string reference;
  std::size_t records_before = 0;
  {
    live::Monitor monitor(wal_options(dir.path()));
    std::vector<std::pair<double, double>> batch;
    for (std::size_t i = 0; i < kMidRecovery; ++i) {
      const double t = static_cast<double>(i);
      batch.emplace_back(t, v_curve(t));
      if (batch.size() == 5 || i + 1 == kMidRecovery) {
        monitor.ingest_batch("svc", batch);
        batch.clear();
        monitor.refit_batch(1);
      }
    }
    ASSERT_GT(monitor.snapshot("svc").refits, 0u);
    reference = snapshot_bytes(monitor);
    records_before = monitor.wal_stats().records;
  }
  // ~kMidRecovery/5 batch records instead of one record per sample.
  EXPECT_LT(records_before, kMidRecovery);

  auto recovered = live::Monitor::recover(wal_options(dir.path()));
  EXPECT_EQ(snapshot_bytes(*recovered), reference);
  const wal::RecoveryStats& stats = recovered->recovery_stats();
  EXPECT_EQ(stats.applied, stats.records);
  EXPECT_EQ(stats.torn_tails, 0u);
}

TEST(WalRecovery, TornBatchRecordIsFullyTornNeverPartiallyApplied) {
  // A batch is ONE log record behind ONE CRC: tearing its tail must drop the
  // whole batch on replay -- recovery may never surface a prefix of it.
  TempDir dir;
  live::MonitorOptions options = wal_options(dir.path());
  options.min_fit_samples = 1000;
  {
    live::Monitor monitor(options);
    monitor.ingest("svc", 0.0, 1.0);
    monitor.ingest_batch("svc", {{1.0, 1.0}, {2.0, 1.0}, {3.0, 1.0}, {4.0, 1.0}});
    EXPECT_EQ(monitor.snapshot("svc").samples_seen, 5u);
  }

  const auto segments = wal::list_segments(dir.path());
  ASSERT_FALSE(segments.empty());
  const std::string& last = segments.back().path;
  const std::uint64_t size = wal::file_size(last);
  ASSERT_GT(size, 4u);
  ASSERT_EQ(::truncate(last.c_str(), static_cast<off_t>(size - 4)), 0);

  auto recovered = live::Monitor::recover(options);
  EXPECT_EQ(recovered->recovery_stats().torn_tails, 1u);
  const auto snap = recovered->snapshot("svc");
  EXPECT_EQ(snap.samples_seen, 1u) << "a torn batch must be fully torn";
  EXPECT_EQ(snap.last_time, 0.0);

  // The unacknowledged batch can simply be resubmitted.
  recovered->ingest_batch("svc",
                          {{1.0, 1.0}, {2.0, 1.0}, {3.0, 1.0}, {4.0, 1.0}});
  EXPECT_EQ(recovered->snapshot("svc").samples_seen, 5u);
}

TEST(WalRecovery, RejectedBatchLeavesNoTraceInStateOrLog) {
  // Validation runs before the WAL append and before any sample applies: a
  // batch with a bad sample in the middle must change nothing, durably.
  TempDir dir;
  live::MonitorOptions options = wal_options(dir.path());
  options.min_fit_samples = 1000;
  std::string reference;
  {
    live::Monitor monitor(options);
    monitor.ingest("svc", 0.0, 1.0);
    EXPECT_THROW(
        monitor.ingest_batch(
            "svc", {{1.0, 1.0}, {2.0, std::nan("")}, {3.0, 1.0}}),
        std::invalid_argument);
    EXPECT_THROW(
        monitor.ingest_batch("svc", {{1.0, 1.0}, {1.0, 1.0}, {3.0, 1.0}}),
        std::invalid_argument);
    // Batch times must also advance past the stream's last sample.
    EXPECT_THROW(monitor.ingest_batch("svc", {{0.0, 1.0}, {1.0, 1.0}}),
                 std::invalid_argument);
    EXPECT_EQ(monitor.snapshot("svc").samples_seen, 1u);
    reference = snapshot_bytes(monitor);
  }
  auto recovered = live::Monitor::recover(options);
  EXPECT_EQ(snapshot_bytes(*recovered), reference);
  EXPECT_EQ(recovered->snapshot("svc").samples_seen, 1u);
}

TEST(WalRecovery, RemoveStreamAndRecreationAreDurable) {
  TempDir dir;
  std::string reference;
  {
    live::Monitor monitor(wal_options(dir.path()));
    live::Monitor shadow(no_wal_options());
    for (live::Monitor* m : {&monitor, &shadow}) {
      m->ingest("keep", 0.0, 1.0);
      m->ingest("doomed", 0.0, 1.0);
      m->ingest("doomed", 1.0, 0.9);
      EXPECT_TRUE(m->remove_stream("doomed"));
      EXPECT_FALSE(m->remove_stream("doomed"));
      // Re-created under the same name: a fresh incarnation whose records
      // must not be confused with the removed stream's during replay.
      m->ingest("doomed", 10.0, 0.5);
    }
    reference = snapshot_bytes(shadow);
    EXPECT_EQ(snapshot_bytes(monitor), reference);
  }
  auto recovered = live::Monitor::recover(wal_options(dir.path()));
  EXPECT_EQ(snapshot_bytes(*recovered), reference);
  EXPECT_EQ(recovered->stream_count(), 2u);
  const auto snap = recovered->snapshot("doomed");
  EXPECT_EQ(snap.samples_seen, 1u);
  EXPECT_EQ(snap.last_time, 10.0);
}

TEST(WalRecovery, AlertRulesReplayWithAllFields) {
  TempDir dir;
  {
    live::Monitor monitor(wal_options(dir.path()));
    live::AlertRule below;
    below.name = "low watermark";  // spaces: name is parsed to end-of-line
    below.kind = live::AlertKind::kValueBelow;
    below.threshold = 0.75;
    below.once_per_event = true;
    monitor.add_alert_rule(below);

    live::AlertRule transition;
    transition.name = "degrading";
    transition.kind = live::AlertKind::kPhaseTransition;
    transition.phase = StreamPhase::kDegrading;
    transition.once_per_event = false;
    monitor.add_alert_rule(transition);
  }
  auto recovered = live::Monitor::recover(wal_options(dir.path()));
  const std::vector<live::AlertRule> rules = recovered->alerts().rules();
  ASSERT_EQ(rules.size(), 2u);
  EXPECT_EQ(rules[0].name, "low watermark");
  EXPECT_EQ(rules[0].kind, live::AlertKind::kValueBelow);
  EXPECT_EQ(rules[0].threshold, 0.75);
  EXPECT_FALSE(rules[0].phase.has_value());
  EXPECT_TRUE(rules[0].once_per_event);
  EXPECT_EQ(rules[1].name, "degrading");
  EXPECT_EQ(rules[1].kind, live::AlertKind::kPhaseTransition);
  ASSERT_TRUE(rules[1].phase.has_value());
  EXPECT_EQ(*rules[1].phase, StreamPhase::kDegrading);
  EXPECT_FALSE(rules[1].once_per_event);
  EXPECT_TRUE(recovered->alerts().has_rule("low watermark"));
}

TEST(WalRecovery, ConstructorRefusesADirectoryWithExistingState) {
  // Booting plain Monitor() on a populated WAL directory would fork history
  // (new log, old state ignored); it must throw and point at recover().
  TempDir dir;
  { live::Monitor monitor(wal_options(dir.path())); }  // leaves segment files
  try {
    live::Monitor monitor(wal_options(dir.path()));
    FAIL() << "expected std::runtime_error for a dirty WAL directory";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("recover"), std::string::npos);
  }
  // recover() is the sanctioned path and works on the same directory.
  auto recovered = live::Monitor::recover(wal_options(dir.path()));
  EXPECT_EQ(recovered->stream_count(), 0u);
}

TEST(WalRecovery, RecoverOnAFreshDirectoryIsAnEmptyBoot) {
  TempDir dir;
  const std::string sub = dir.path() + "/fresh";  // does not exist yet
  auto monitor = live::Monitor::recover(wal_options(sub));
  EXPECT_EQ(monitor->stream_count(), 0u);
  EXPECT_FALSE(monitor->recovery_stats().snapshot_loaded);
  monitor->ingest("svc", 0.0, 1.0);
  EXPECT_TRUE(monitor->wal_enabled());
  EXPECT_GT(monitor->wal_stats().records, 0u);
}

TEST(WalRecovery, AllFsyncPoliciesRoundTrip) {
  for (const auto policy :
       {wal::FsyncPolicy::kAlways, wal::FsyncPolicy::kInterval,
        wal::FsyncPolicy::kNever}) {
    TempDir dir;
    live::MonitorOptions options = wal_options(dir.path());
    options.wal.fsync = policy;
    options.wal.fsync_interval_ms = 5;
    std::string reference;
    {
      live::Monitor monitor(options);
      ingest_v_curve(monitor, "svc", 0, kPrefix + 4);
      reference = snapshot_bytes(monitor);
      if (policy == wal::FsyncPolicy::kAlways) {
        EXPECT_GE(monitor.wal_stats().fsyncs, 1u);
      }
    }
    auto recovered = live::Monitor::recover(options);
    EXPECT_EQ(snapshot_bytes(*recovered), reference)
        << "policy " << wal::to_string(policy);
  }
}

TEST(WalRecovery, ShardCountChangeBetweenRunsStillRecovers) {
  // Replay ordering comes from keys inside the records, not file layout, so
  // rebooting with a different shard count must reproduce the same state.
  TempDir dir;
  live::MonitorOptions options = wal_options(dir.path());
  options.shards = 4;
  std::string reference;
  {
    live::Monitor monitor(options);
    live::Monitor shadow(no_wal_options());
    for (live::Monitor* m : {&monitor, &shadow}) {
      for (int s = 0; s < 6; ++s) {
        const std::string name = "svc-" + std::to_string(s);
        for (int i = 0; i < 5; ++i) {
          m->ingest(name, static_cast<double>(i), 1.0 - 0.01 * i);
        }
      }
    }
    reference = snapshot_bytes(shadow);
    ASSERT_EQ(snapshot_bytes(monitor), reference);
  }
  options.shards = 2;
  auto recovered = live::Monitor::recover(options);
  EXPECT_EQ(snapshot_bytes(*recovered), reference);
  EXPECT_EQ(recovered->stream_count(), 6u);
}

TEST(WalRecovery, SaveFileWritesAtomicallyViaRename) {
  // Satellite: save_file must leave either the old or the new complete
  // snapshot, never a partial write -- implemented as temp + fsync + rename.
  TempDir dir;
  const std::string path = dir.path() + "/snap.prm";
  live::Monitor monitor(no_wal_options());
  monitor.ingest("svc", 0.0, 1.0);
  monitor.save_file(path);
  const std::string first = snapshot_bytes(monitor);
  {
    std::ifstream in(path);
    const std::string bytes((std::istreambuf_iterator<char>(in)),
                            std::istreambuf_iterator<char>());
    EXPECT_EQ(bytes, first);
  }
  monitor.ingest("svc", 1.0, 0.9);
  monitor.save_file(path);  // overwrite in place
  auto reloaded = live::Monitor::load_file(path, no_wal_options());
  EXPECT_EQ(reloaded->snapshot("svc").samples_seen, 2u);
}

}  // namespace
