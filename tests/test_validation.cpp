#include "core/validation.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/bathtub.hpp"
#include "data/recessions.hpp"
#include "stats/goodness_of_fit.hpp"

namespace prm::core {
namespace {

FitResult known_fit() {
  // Hand-constructed fit: quadratic params chosen, data with known residuals.
  auto model = std::shared_ptr<const ResilienceModel>(new QuadraticBathtubModel());
  const num::Vector p{1.0, -0.1, 0.005};
  // Data = model + alternating +-0.01 on the fit window, +0.02 on holdout.
  const QuadraticBathtubModel qm;
  std::vector<double> v(12);
  for (std::size_t i = 0; i < 12; ++i) {
    v[i] = qm.evaluate(static_cast<double>(i), p);
    if (i < 10) {
      v[i] += (i % 2 == 0) ? 0.01 : -0.01;
    } else {
      v[i] += 0.02;
    }
  }
  FitResult fit(model, p, data::PerformanceSeries("known", std::move(v)), 2);
  fit.sse = 10 * 0.0001;
  fit.stop_reason = opt::StopReason::kConverged;
  return fit;
}

TEST(Validate, SseOverFitWindow) {
  const ValidationReport r = validate(known_fit());
  EXPECT_NEAR(r.sse, 10 * 0.0001, 1e-12);  // ten residuals of 0.01
}

TEST(Validate, PmseOverHoldout) {
  const ValidationReport r = validate(known_fit());
  EXPECT_NEAR(r.pmse, 0.0004, 1e-12);  // two residuals of 0.02 squared, averaged
}

TEST(Validate, R2AdjMatchesDirectComputation) {
  const FitResult fit = known_fit();
  const ValidationReport r = validate(fit);
  const auto obs = fit.series().values().subspan(0, 10);
  const auto pred_all = fit.predictions();
  const double direct = stats::adjusted_r_squared(
      obs, std::span<const double>(pred_all).subspan(0, 10), 3);
  EXPECT_DOUBLE_EQ(r.r2_adj, direct);
}

TEST(Validate, BandCoversFullGridAndEcIsComputed) {
  const ValidationReport r = validate(known_fit());
  EXPECT_EQ(r.band.center.size(), 12u);
  EXPECT_EQ(r.predictions.size(), 12u);
  // Residuals are 0.01 on the fit window; sigma = sqrt(0.001/8) ~ 0.0112,
  // band half width ~0.022 -> all 10 fit samples inside; holdout (0.02) too.
  EXPECT_NEAR(r.ec, 100.0, 1e-9);
}

TEST(Validate, TighterAlphaNarrowsBand) {
  const auto r10 = validate(known_fit(), {0.10});
  const auto r01 = validate(known_fit(), {0.01});
  EXPECT_LT(r10.band.half_width, r01.band.half_width);
}

TEST(Validate, AicBicFinite) {
  const ValidationReport r = validate(known_fit());
  EXPECT_TRUE(std::isfinite(r.aic));
  EXPECT_TRUE(std::isfinite(r.bic));
  EXPECT_GT(r.bic, r.aic - 10.0);  // sanity: same scale
}

TEST(Validate, RealDatasetProducesSaneReport) {
  const auto& ds = data::recession("1990-93");
  const FitResult fit = fit_model("competing-risks", ds.series, ds.holdout);
  const ValidationReport r = validate(fit);
  EXPECT_GT(r.r2_adj, 0.9);
  EXPECT_GT(r.ec, 80.0);
  EXPECT_LE(r.ec, 100.0);
  EXPECT_LT(r.pmse, 1e-3);
  EXPECT_GT(r.sse, 0.0);
}

TEST(Validate, TheilUSeparatesFittableFromUnfittable) {
  // Good fits must beat the naive persistence forecast (U < 1); on the
  // L-shaped 2020-21 collapse every model should LOSE to persistence
  // (U > 1) -- flat-lining beats a wrong parametric extrapolation.
  const auto good = validate(fit_model(
      "competing-risks", data::recession("1990-93").series, 5));
  EXPECT_LT(good.theil_u, 1.0);
  EXPECT_GT(good.theil_u, 0.0);
  const auto bad = validate(fit_model(
      "competing-risks", data::recession("2020-21").series, 3));
  EXPECT_GT(bad.theil_u, 1.0);
}

TEST(Validate, TheilUZeroWithoutHoldout) {
  const FitResult fit = fit_model("quadratic", data::recession("1990-93").series, 0);
  const ValidationReport r = validate(fit);
  EXPECT_DOUBLE_EQ(r.theil_u, 0.0);
}

TEST(Validate, EcCountsHoldoutSamplesToo) {
  // Make the model wildly wrong on the holdout only: EC must drop below 100%
  // even though the fit window is covered.
  FitResult fit = known_fit();
  auto series = fit.series();
  std::vector<double> v(series.values().begin(), series.values().end());
  v[10] += 1.0;
  v[11] += 1.0;
  FitResult moved(fit.model_ptr(), fit.parameters(),
                  data::PerformanceSeries("k2", std::move(v)), 2);
  const ValidationReport r = validate(moved);
  EXPECT_NEAR(r.ec, 100.0 * 10.0 / 12.0, 1e-9);
}

}  // namespace
}  // namespace prm::core
