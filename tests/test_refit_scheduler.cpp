// RefitScheduler: keyed coalescing, drain semantics, error isolation, and
// the acceptance-criterion proof that distinct streams' refits really run on
// two or more worker threads concurrently.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>

#include "live/refit_scheduler.hpp"

namespace {

using namespace std::chrono_literals;
using prm::live::RefitScheduler;

TEST(RefitScheduler, RunsEveryDistinctKeyOnce) {
  RefitScheduler scheduler(2);
  std::atomic<int> runs{0};
  for (int i = 0; i < 16; ++i) {
    std::string key = "stream-";  // two-step append: gcc 12 -Wrestrict workaround
    key += std::to_string(i);
    scheduler.schedule(key, [&runs] { ++runs; });
  }
  scheduler.drain();
  EXPECT_EQ(runs.load(), 16);
  EXPECT_EQ(scheduler.executed(), 16u);
  EXPECT_EQ(scheduler.coalesced(), 0u);
  EXPECT_EQ(scheduler.failed(), 0u);
}

TEST(RefitScheduler, DrainOnIdlePoolReturnsImmediately) {
  RefitScheduler scheduler(2);
  scheduler.drain();
  EXPECT_EQ(scheduler.executed(), 0u);
}

TEST(RefitScheduler, ClampsThreadCountToAtLeastOne) {
  RefitScheduler scheduler(0);
  EXPECT_EQ(scheduler.num_threads(), 1u);
  std::atomic<int> runs{0};
  scheduler.schedule("a", [&runs] { ++runs; });
  scheduler.drain();
  EXPECT_EQ(runs.load(), 1);
}

// A burst of schedules for one key while its job is running collapses to a
// single follow-up run: the first re-schedule parks, later ones replace the
// parked job and are counted as coalesced.
TEST(RefitScheduler, CoalescesBurstsPerKey) {
  RefitScheduler scheduler(2);
  std::mutex m;
  std::condition_variable cv;
  bool release = false;
  bool first_started = false;

  std::atomic<int> runs{0};
  scheduler.schedule("hot", [&] {
    {
      std::lock_guard<std::mutex> lock(m);
      first_started = true;
    }
    cv.notify_all();
    std::unique_lock<std::mutex> lock(m);
    cv.wait(lock, [&] { return release; });
    ++runs;
  });
  {
    std::unique_lock<std::mutex> lock(m);
    ASSERT_TRUE(cv.wait_for(lock, 5s, [&] { return first_started; }));
  }
  for (int i = 0; i < 5; ++i) {
    scheduler.schedule("hot", [&runs] { ++runs; });
  }
  {
    std::lock_guard<std::mutex> lock(m);
    release = true;
  }
  cv.notify_all();
  scheduler.drain();

  EXPECT_EQ(runs.load(), 2);  // the gated job + ONE surviving follow-up
  EXPECT_EQ(scheduler.executed(), 2u);
  EXPECT_EQ(scheduler.coalesced(), 4u);
}

// While a key's job is still queued (not yet picked up), scheduling again
// replaces it in place -- the stale job never runs.
TEST(RefitScheduler, ReplacesQueuedJobBeforeItRuns) {
  RefitScheduler scheduler(1);
  std::mutex m;
  std::condition_variable cv;
  bool release = false;
  bool started = false;

  scheduler.schedule("blocker", [&] {
    {
      std::lock_guard<std::mutex> lock(m);
      started = true;
    }
    cv.notify_all();
    std::unique_lock<std::mutex> lock(m);
    cv.wait(lock, [&] { return release; });
  });
  {
    std::unique_lock<std::mutex> lock(m);
    ASSERT_TRUE(cv.wait_for(lock, 5s, [&] { return started; }));
  }
  // The single worker is busy, so these sit in the queue for key "b".
  std::atomic<int> stale{0};
  std::atomic<int> fresh{0};
  scheduler.schedule("b", [&stale] { ++stale; });
  scheduler.schedule("b", [&fresh] { ++fresh; });
  {
    std::lock_guard<std::mutex> lock(m);
    release = true;
  }
  cv.notify_all();
  scheduler.drain();

  EXPECT_EQ(stale.load(), 0);
  EXPECT_EQ(fresh.load(), 1);
  EXPECT_EQ(scheduler.coalesced(), 1u);
}

// Acceptance criterion: refits for distinct streams execute on >= 2 worker
// threads. Each job blocks until BOTH jobs have started, so the test can
// only pass (within the timeout) if two workers run them concurrently; the
// recorded thread ids then prove they were distinct threads.
TEST(RefitScheduler, DistinctStreamsRunOnDistinctThreadsConcurrently) {
  RefitScheduler scheduler(2);
  ASSERT_GE(scheduler.num_threads(), 2u);

  std::mutex m;
  std::condition_variable cv;
  int started = 0;
  bool timed_out = false;
  std::set<std::thread::id> ids;

  auto job = [&] {
    std::unique_lock<std::mutex> lock(m);
    ids.insert(std::this_thread::get_id());
    ++started;
    cv.notify_all();
    if (!cv.wait_for(lock, 10s, [&] { return started >= 2; })) timed_out = true;
  };
  scheduler.schedule("stream-a", job);
  scheduler.schedule("stream-b", job);
  scheduler.drain();

  EXPECT_FALSE(timed_out) << "jobs never overlapped: pool is not concurrent";
  EXPECT_EQ(started, 2);
  EXPECT_EQ(ids.size(), 2u) << "both jobs ran on the same worker thread";
}

TEST(RefitScheduler, SameKeyNeverRunsConcurrently) {
  RefitScheduler scheduler(4);
  std::atomic<int> in_flight{0};
  std::atomic<int> max_in_flight{0};
  std::atomic<int> runs{0};
  for (int round = 0; round < 50; ++round) {
    scheduler.schedule("serial", [&] {
      const int now = ++in_flight;
      int prev = max_in_flight.load();
      while (now > prev && !max_in_flight.compare_exchange_weak(prev, now)) {
      }
      std::this_thread::sleep_for(1ms);
      ++runs;
      --in_flight;
    });
    if (round % 10 == 9) scheduler.drain();
  }
  scheduler.drain();
  EXPECT_EQ(max_in_flight.load(), 1);
  EXPECT_GE(runs.load(), 5);  // at least one run per drain point
}

TEST(RefitScheduler, JobExceptionsAreSwallowedAndCounted) {
  RefitScheduler scheduler(2);
  std::atomic<int> runs{0};
  scheduler.schedule("bad", [] { throw std::runtime_error("fit blew up"); });
  scheduler.schedule("good", [&runs] { ++runs; });
  scheduler.drain();
  EXPECT_EQ(runs.load(), 1);
  EXPECT_EQ(scheduler.failed(), 1u);
  EXPECT_EQ(scheduler.executed(), 2u);  // failures still count as executed

  // The pool survives the throw and keeps serving work.
  scheduler.schedule("bad", [&runs] { ++runs; });
  scheduler.drain();
  EXPECT_EQ(runs.load(), 2);
}

TEST(RefitScheduler, JobsMayScheduleMoreWorkAndDrainWaitsForIt) {
  RefitScheduler scheduler(2);
  std::atomic<int> runs{0};
  scheduler.schedule("parent", [&] {
    ++runs;
    scheduler.schedule("child", [&] {
      ++runs;
      scheduler.schedule("grandchild", [&runs] { ++runs; });
    });
  });
  scheduler.drain();
  EXPECT_EQ(runs.load(), 3);
}

TEST(RefitScheduler, DeferredModeAccumulatesUntilClaimed) {
  RefitScheduler scheduler(4, /*deferred=*/true);
  EXPECT_TRUE(scheduler.deferred());
  EXPECT_EQ(scheduler.num_threads(), 0u);  // no workers spawned

  std::atomic<int> runs{0};
  scheduler.schedule("a", [&runs] { ++runs; });
  scheduler.schedule("b", [&runs] { ++runs; });
  scheduler.schedule("a", [&runs] { runs += 100; });  // replaces queued "a"
  EXPECT_EQ(runs.load(), 0) << "deferred jobs must not run before claim_ready";
  EXPECT_EQ(scheduler.ready_count(), 2u);
  EXPECT_EQ(scheduler.coalesced(), 1u);

  auto batch = scheduler.claim_ready();
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(scheduler.ready_count(), 0u);
  for (const auto& claimed : batch) claimed.job();
  scheduler.finish_claimed(batch);
  EXPECT_EQ(runs.load(), 101);  // coalesced replacement ran, original did not
  EXPECT_EQ(scheduler.executed(), 2u);
  EXPECT_EQ(scheduler.claim_ready().size(), 0u);
}

TEST(RefitScheduler, RescheduleDuringClaimedBatchParksAndReenqueues) {
  RefitScheduler scheduler(1, /*deferred=*/true);
  std::atomic<int> runs{0};
  scheduler.schedule("k", [&runs] { ++runs; });
  auto batch = scheduler.claim_ready();
  ASSERT_EQ(batch.size(), 1u);

  // The key counts as running while claimed: a reschedule must park, not
  // double-run or re-enter the ready queue.
  scheduler.schedule("k", [&runs] { runs += 10; });
  EXPECT_EQ(scheduler.ready_count(), 0u);

  batch[0].job();
  scheduler.finish_claimed(batch);
  EXPECT_EQ(scheduler.ready_count(), 1u) << "parked job must re-enqueue on finish";

  auto second = scheduler.claim_ready();
  ASSERT_EQ(second.size(), 1u);
  second[0].job();
  scheduler.finish_claimed(second, /*failures=*/0);
  EXPECT_EQ(runs.load(), 11);
  EXPECT_EQ(scheduler.executed(), 2u);
  EXPECT_EQ(scheduler.failed(), 0u);
}

TEST(RefitScheduler, FinishClaimedCountsReportedFailures) {
  RefitScheduler scheduler(1, /*deferred=*/true);
  scheduler.schedule("x", [] { throw std::runtime_error("boom"); });
  auto batch = scheduler.claim_ready();
  ASSERT_EQ(batch.size(), 1u);
  std::uint64_t failures = 0;
  for (const auto& claimed : batch) {
    try {
      claimed.job();
    } catch (...) {
      ++failures;
    }
  }
  scheduler.finish_claimed(batch, failures);
  EXPECT_EQ(scheduler.failed(), 1u);
  EXPECT_EQ(scheduler.executed(), 1u);
}

TEST(RefitScheduler, DestructorDrainsOutstandingWork) {
  std::atomic<int> runs{0};
  {
    RefitScheduler scheduler(2);
    for (int i = 0; i < 8; ++i) {
      std::string key = "k";
      key += std::to_string(i);
      scheduler.schedule(key, [&runs] {
        std::this_thread::sleep_for(2ms);
        ++runs;
      });
    }
  }  // ~RefitScheduler drains, then joins
  EXPECT_EQ(runs.load(), 8);
}

}  // namespace
