// FitWorkspace: the per-thread scratch arena behind the allocation-free
// Levenberg-Marquardt hot path. What matters: resize() reshapes correctly in
// both directions (a workspace warmed on a long series must serve a short
// one, and vice versa), solver results are unaffected by whatever a previous
// solve left behind, and FitWorkspace::local() hands distinct storage to
// distinct task-pool threads.
#include "optimize/workspace.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/fitting.hpp"
#include "data/recessions.hpp"
#include "optimize/levenberg_marquardt.hpp"
#include "par/parallel.hpp"

namespace prm {
namespace {

TEST(FitWorkspace, ResizeShapesEveryBuffer) {
  opt::FitWorkspace ws;
  ws.resize(7, 3);
  EXPECT_EQ(ws.j.rows(), 7u);
  EXPECT_EQ(ws.j.cols(), 3u);
  EXPECT_EQ(ws.jtj.rows(), 3u);
  EXPECT_EQ(ws.jtj.cols(), 3u);
  EXPECT_EQ(ws.a.rows(), 3u);
  EXPECT_EQ(ws.chol.rows(), 3u);
  EXPECT_EQ(ws.r.size(), 7u);
  EXPECT_EQ(ws.r_trial.size(), 7u);
  EXPECT_EQ(ws.whiten.size(), 7u);
  EXPECT_EQ(ws.g.size(), 3u);
  EXPECT_EQ(ws.dp.size(), 3u);
  EXPECT_EQ(ws.solve_y.size(), 3u);
  EXPECT_EQ(ws.p.size(), 3u);
  EXPECT_EQ(ws.p_trial.size(), 3u);
}

TEST(FitWorkspace, ResizeShrinksAndGrows) {
  opt::FitWorkspace ws;
  ws.resize(100, 6);
  const double* big_data = ws.j.data();
  ws.resize(5, 2);  // shrink: storage may be reused, shape must be exact
  EXPECT_EQ(ws.j.rows(), 5u);
  EXPECT_EQ(ws.j.cols(), 2u);
  EXPECT_EQ(ws.r.size(), 5u);
  EXPECT_EQ(ws.j.data(), big_data);  // shrinking reuses the old block
  ws.resize(200, 6);  // grow past the original
  EXPECT_EQ(ws.j.rows(), 200u);
  EXPECT_EQ(ws.r.size(), 200u);
}

// A small well-conditioned least-squares problem: y = a e^{-b t} sampled
// exactly, so LM must recover (a, b) regardless of workspace history.
opt::ResidualProblem exp_decay_problem(std::size_t m) {
  opt::ResidualProblem problem;
  problem.num_parameters = 2;
  problem.residuals = [m](const num::Vector& p) {
    num::Vector r(m);
    for (std::size_t i = 0; i < m; ++i) {
      const double t = 0.1 * static_cast<double>(i);
      r[i] = 2.0 * std::exp(-0.7 * t) - p[0] * std::exp(-p[1] * t);
    }
    return r;
  };
  return problem;
}

TEST(FitWorkspace, SolverUnaffectedByStaleWorkspaceContents) {
  const num::Vector start{1.0, 1.0};
  // Reference solve on a cold workspace (whatever state the thread is in).
  const opt::OptimizeResult ref =
      opt::levenberg_marquardt(exp_decay_problem(40), start);
  ASSERT_TRUE(ref.usable());

  // Poison the thread's workspace with a much larger problem, then with a
  // much smaller one, and re-solve: bit-identical parameters both times.
  opt::levenberg_marquardt(exp_decay_problem(500), start);
  opt::OptimizeResult again = opt::levenberg_marquardt(exp_decay_problem(40), start);
  EXPECT_EQ(ref.parameters[0], again.parameters[0]);
  EXPECT_EQ(ref.parameters[1], again.parameters[1]);

  opt::levenberg_marquardt(exp_decay_problem(3), start);
  again = opt::levenberg_marquardt(exp_decay_problem(40), start);
  EXPECT_EQ(ref.parameters[0], again.parameters[0]);
  EXPECT_EQ(ref.parameters[1], again.parameters[1]);
  EXPECT_NEAR(again.parameters[0], 2.0, 1e-6);
  EXPECT_NEAR(again.parameters[1], 0.7, 1e-6);
}

TEST(FitWorkspace, FitResultsIdenticalAcrossSeriesLengthSequence) {
  // Drive the real fit path through series of very different lengths on ONE
  // thread, interleaved, and check each fit against a fresh-process-style
  // reference (the first fit of that series in this test). Any cross-series
  // contamination through the shared workspace would break the repeats.
  const auto& long_ds = data::recession("2007-09");
  const auto& short_ds = data::recession("1990-93");
  core::FitOptions opts;
  opts.multistart.threads = 1;
  const core::FitResult ref_long =
      core::fit_model("competing-risks", long_ds.series, long_ds.holdout, opts);
  const core::FitResult ref_short =
      core::fit_model("competing-risks", short_ds.series, short_ds.holdout, opts);
  for (int round = 0; round < 3; ++round) {
    const core::FitResult again_short =
        core::fit_model("competing-risks", short_ds.series, short_ds.holdout, opts);
    const core::FitResult again_long =
        core::fit_model("competing-risks", long_ds.series, long_ds.holdout, opts);
    for (std::size_t i = 0; i < ref_long.parameters().size(); ++i) {
      EXPECT_EQ(ref_long.parameters()[i], again_long.parameters()[i]);
    }
    for (std::size_t i = 0; i < ref_short.parameters().size(); ++i) {
      EXPECT_EQ(ref_short.parameters()[i], again_short.parameters()[i]);
    }
  }
}

TEST(FitWorkspace, LocalIsPerThread) {
  // Every pool thread must see its own workspace: collect &local() from many
  // concurrent tasks and check (a) the calling thread's address is stable and
  // (b) two different OS threads never share one.
  std::mutex mu;
  std::map<std::thread::id, std::set<const opt::FitWorkspace*>> seen;
  par::parallel_for(
      64,
      [&](std::size_t) {
        opt::FitWorkspace* ws = &opt::FitWorkspace::local();
        ws->resize(16, 4);  // touch it so a shared arena would collide
        std::lock_guard<std::mutex> lock(mu);
        seen[std::this_thread::get_id()].insert(ws);
      },
      4);
  std::set<const opt::FitWorkspace*> all;
  for (const auto& [tid, set] : seen) {
    EXPECT_EQ(set.size(), 1u) << "one thread saw two workspaces";
    all.insert(set.begin(), set.end());
  }
  EXPECT_EQ(all.size(), seen.size()) << "two threads shared a workspace";
}

TEST(FitWorkspace, ParallelFitsMatchSerialFits) {
  // Thread-local isolation, observed from the outside: a batch of fits run
  // on the pool must equal the same fits run serially.
  const auto& ds = data::recession("2001-05");
  std::vector<std::string> models = {"quadratic", "competing-risks",
                                     "mix-wei-wei-log", "quadratic",
                                     "competing-risks", "mix-wei-wei-log"};
  const auto fit_one = [&](std::size_t i) {
    core::FitOptions opts;
    opts.multistart.threads = 1;  // inner fits serial; outer map parallel
    return core::fit_model(models[i], ds.series, ds.holdout, opts).parameters();
  };
  std::vector<num::Vector> serial;
  for (std::size_t i = 0; i < models.size(); ++i) serial.push_back(fit_one(i));
  const std::vector<num::Vector> parallel =
      par::parallel_map<num::Vector>(models.size(), fit_one, 4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    ASSERT_EQ(serial[i].size(), parallel[i].size());
    for (std::size_t c = 0; c < serial[i].size(); ++c) {
      EXPECT_EQ(serial[i][c], parallel[i][c]) << models[i] << " p" << c;
    }
  }
}

}  // namespace
}  // namespace prm
