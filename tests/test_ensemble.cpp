#include "core/ensemble.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "data/recessions.hpp"

namespace prm::core {
namespace {

const std::vector<std::string> kModels{"quadratic", "competing-risks", "mix-wei-exp-log",
                                       "mix-wei-wei-log"};

TEST(InformationWeights, NormalizedAndOrdered) {
  const auto w = information_weights({100.0, 102.0, 110.0});
  ASSERT_EQ(w.size(), 3u);
  EXPECT_NEAR(w[0] + w[1] + w[2], 1.0, 1e-12);
  EXPECT_GT(w[0], w[1]);
  EXPECT_GT(w[1], w[2]);
  // Delta of 2 AIC units -> weight ratio e^{-1}.
  EXPECT_NEAR(w[1] / w[0], std::exp(-1.0), 1e-12);
}

TEST(InformationWeights, ClearWinnerTakesNearlyAll) {
  const auto w = information_weights({-500.0, -400.0});
  EXPECT_GT(w[0], 0.999999);
}

TEST(InformationWeights, NonFiniteCriteriaGetZero) {
  const auto w = information_weights(
      {10.0, std::numeric_limits<double>::infinity(),
       std::numeric_limits<double>::quiet_NaN()});
  EXPECT_NEAR(w[0], 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(w[1], 0.0);
  EXPECT_DOUBLE_EQ(w[2], 0.0);
  // All failed -> all zero.
  const auto none = information_weights({std::numeric_limits<double>::infinity()});
  EXPECT_DOUBLE_EQ(none[0], 0.0);
}

TEST(FitEnsemble, WeightsSumToOne) {
  const auto& ds = data::recession("1990-93");
  const EnsembleFit e = fit_ensemble(kModels, ds.series, ds.holdout);
  double sum = 0.0;
  for (const EnsembleMember& m : e.members()) {
    EXPECT_GE(m.weight, 0.0);
    sum += m.weight;
  }
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(FitEnsemble, SingleModelEnsembleEqualsThatModel) {
  const auto& ds = data::recession("2001-05");
  const EnsembleFit e = fit_ensemble({"quadratic"}, ds.series, ds.holdout);
  const FitResult solo = fit_model("quadratic", ds.series, ds.holdout);
  for (double t : {0.0, 10.0, 30.0, 47.0}) {
    EXPECT_NEAR(e.evaluate(t), solo.evaluate(t), 1e-12);
  }
  EXPECT_NEAR(e.members().front().weight, 1.0, 1e-12);
}

TEST(FitEnsemble, EnsembleSseNoWorseThanWorstMember) {
  const auto& ds = data::recession("1990-93");
  const EnsembleFit e = fit_ensemble(kModels, ds.series, ds.holdout);
  const auto v = e.validate();
  double worst = 0.0;
  for (const EnsembleMember& m : e.members()) {
    worst = std::max(worst, m.validation.sse);
  }
  EXPECT_LE(v.sse, worst);
}

TEST(FitEnsemble, AicWeightsFavorTheDominantModel) {
  // On 1990-93 the Wei-Wei mixture dominates by AIC; its weight should lead.
  const auto& ds = data::recession("1990-93");
  const EnsembleFit e = fit_ensemble(kModels, ds.series, ds.holdout);
  double best_weight = 0.0;
  std::string best_name;
  double best_aic = std::numeric_limits<double>::infinity();
  std::string best_aic_name;
  for (const EnsembleMember& m : e.members()) {
    if (m.weight > best_weight) {
      best_weight = m.weight;
      best_name = m.fit.model().name();
    }
    if (m.validation.aic < best_aic) {
      best_aic = m.validation.aic;
      best_aic_name = m.fit.model().name();
    }
  }
  EXPECT_EQ(best_name, best_aic_name);
}

TEST(FitEnsemble, InversePmseWeightingDiffersFromAic) {
  const auto& ds = data::recession("1981-83");
  EnsembleOptions aic;
  EnsembleOptions pmse;
  pmse.weighting = EnsembleWeighting::kInversePmse;
  const EnsembleFit ea = fit_ensemble(kModels, ds.series, ds.holdout, aic);
  const EnsembleFit ep = fit_ensemble(kModels, ds.series, ds.holdout, pmse);
  bool any_diff = false;
  for (std::size_t i = 0; i < ea.members().size(); ++i) {
    if (std::fabs(ea.members()[i].weight - ep.members()[i].weight) > 1e-6) {
      any_diff = true;
    }
  }
  EXPECT_TRUE(any_diff);
}

TEST(FitEnsemble, ValidationIsCompleteAndSane) {
  const auto& ds = data::recession("1974-76");
  const EnsembleFit e = fit_ensemble(kModels, ds.series, ds.holdout);
  const auto v = e.validate();
  EXPECT_GT(v.r2_adj, 0.85);
  EXPECT_GT(v.ec, 80.0);
  EXPECT_LE(v.ec, 100.0);
  EXPECT_EQ(v.predictions.size(), ds.series.size());
  EXPECT_GT(v.theil_u, 0.0);
}

TEST(FitEnsemble, RecoveryAndTroughQueries) {
  const auto& ds = data::recession("1981-83");
  const EnsembleFit e = fit_ensemble(kModels, ds.series, ds.holdout);
  const double td = e.trough_time();
  EXPECT_NEAR(td, 16.0, 6.0);  // observed trough month 16
  const auto tr = e.recovery_time(1.0, td);
  ASSERT_TRUE(tr.has_value());
  EXPECT_GT(*tr, td);
  EXPECT_NEAR(e.evaluate(*tr), 1.0, 1e-6);
}

TEST(EnsembleFit, ConstructorValidation) {
  EXPECT_THROW(EnsembleFit({}), std::invalid_argument);

  const auto& ds = data::recession("1990-93");
  EnsembleMember a;
  a.fit = fit_model("quadratic", ds.series, ds.holdout);
  a.weight = -1.0;
  std::vector<EnsembleMember> bad;
  bad.push_back(std::move(a));
  EXPECT_THROW(EnsembleFit(std::move(bad)), std::invalid_argument);

  EnsembleMember z;
  z.fit = fit_model("quadratic", ds.series, ds.holdout);
  z.weight = 0.0;
  std::vector<EnsembleMember> zeros;
  zeros.push_back(std::move(z));
  EXPECT_THROW(EnsembleFit(std::move(zeros)), std::invalid_argument);
}

TEST(FitEnsemble, InputValidation) {
  const auto& ds = data::recession("1990-93");
  EXPECT_THROW(fit_ensemble({}, ds.series, ds.holdout), std::invalid_argument);
  EXPECT_THROW(fit_ensemble({"no-such-model"}, ds.series, ds.holdout), std::out_of_range);
}

}  // namespace
}  // namespace prm::core
