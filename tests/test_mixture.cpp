#include "core/mixture.hpp"

#include "core/fitting.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "data/generator.hpp"
#include "data/recessions.hpp"
#include "stats/exponential.hpp"
#include "stats/gamma.hpp"
#include "stats/lognormal.hpp"
#include "stats/weibull.hpp"

namespace prm::core {
namespace {

TEST(FamilyCdf, MatchesDistributionClasses) {
  const double t = 2.3;
  EXPECT_NEAR(family_cdf(Family::kExponential, std::vector<double>{0.4}, t),
              stats::Exponential(0.4).cdf(t), 1e-14);
  EXPECT_NEAR(family_cdf(Family::kWeibull, std::vector<double>{3.0, 2.0}, t),
              stats::Weibull(3.0, 2.0).cdf(t), 1e-14);
  EXPECT_NEAR(family_cdf(Family::kLogNormal, std::vector<double>{0.5, 0.8}, t),
              stats::LogNormal(0.5, 0.8).cdf(t), 1e-14);
  EXPECT_NEAR(family_cdf(Family::kGamma, std::vector<double>{2.0, 1.5}, t),
              stats::Gamma(2.0, 1.5).cdf(t), 1e-12);
}

TEST(FamilyCdf, ZeroAtOrigin) {
  EXPECT_DOUBLE_EQ(family_cdf(Family::kWeibull, std::vector<double>{1.0, 2.0}, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(family_cdf(Family::kExponential, std::vector<double>{1.0}, -1.0), 0.0);
}

TEST(FamilyCdf, WrongParameterCountThrows) {
  EXPECT_THROW(family_cdf(Family::kWeibull, std::vector<double>{1.0}, 1.0),
               std::invalid_argument);
  EXPECT_THROW(family_cdf(Family::kExponential, std::vector<double>{1.0, 2.0}, 1.0),
               std::invalid_argument);
}

TEST(FamilyMeta, ParameterCounts) {
  EXPECT_EQ(family_num_parameters(Family::kExponential), 1u);
  EXPECT_EQ(family_num_parameters(Family::kWeibull), 2u);
  EXPECT_EQ(family_num_parameters(Family::kLogNormal), 2u);
  EXPECT_EQ(family_num_parameters(Family::kGamma), 2u);
}

TEST(MixtureModel, ParameterLayoutAndNames) {
  const MixtureModel m({Family::kWeibull, Family::kExponential, RecoveryTrend::kLogarithmic});
  EXPECT_EQ(m.num_parameters(), 4u);  // 2 + 1 + beta
  const auto names = m.parameter_names();
  ASSERT_EQ(names.size(), 4u);
  EXPECT_EQ(names[0], "F1.scale");
  EXPECT_EQ(names[1], "F1.shape");
  EXPECT_EQ(names[2], "F2.rate");
  EXPECT_EQ(names[3], "beta");
  EXPECT_EQ(m.parameter_bounds().size(), 4u);
}

TEST(MixtureModel, PaperLabelsAndNames) {
  EXPECT_EQ(MixtureModel({Family::kExponential, Family::kExponential,
                          RecoveryTrend::kLogarithmic}).paper_label(), "Exp-Exp");
  EXPECT_EQ(MixtureModel({Family::kWeibull, Family::kWeibull,
                          RecoveryTrend::kLogarithmic}).paper_label(), "Wei-Wei");
  EXPECT_EQ(MixtureModel({Family::kWeibull, Family::kExponential,
                          RecoveryTrend::kLogarithmic}).name(), "mix-wei-exp-log");
  EXPECT_EQ(MixtureModel({Family::kExponential, Family::kWeibull,
                          RecoveryTrend::kLinear}).name(), "mix-exp-wei-linear");
}

TEST(MixtureModel, EvaluateAtOriginIsExactlyNominal) {
  // P(0) = (1 - F1(0)) + a2(0) F2(0) = 1 for every family/trend combo.
  for (Family f1 : {Family::kExponential, Family::kWeibull, Family::kGamma}) {
    for (Family f2 : {Family::kExponential, Family::kWeibull}) {
      for (RecoveryTrend tr : {RecoveryTrend::kConstant, RecoveryTrend::kLinear,
                               RecoveryTrend::kExponential, RecoveryTrend::kLogarithmic}) {
        const MixtureModel m({f1, f2, tr});
        num::Vector p(m.num_parameters(), 1.0);
        EXPECT_DOUBLE_EQ(m.evaluate(0.0, p), 1.0);
      }
    }
  }
}

TEST(MixtureModel, EvaluateMatchesHandFormulaExpExpLog) {
  const MixtureModel m({Family::kExponential, Family::kExponential,
                        RecoveryTrend::kLogarithmic});
  const num::Vector p{0.05, 0.08, 0.3};  // lambda1, lambda2, beta
  const double t = 12.0;
  const double expected =
      std::exp(-0.05 * t) + 0.3 * std::log(t) * (1.0 - std::exp(-0.08 * t));
  EXPECT_NEAR(m.evaluate(t, p), expected, 1e-14);
}

TEST(MixtureModel, EvaluateMatchesHandFormulaWeiWeiLinear) {
  const MixtureModel m({Family::kWeibull, Family::kWeibull, RecoveryTrend::kLinear});
  const num::Vector p{10.0, 2.0, 20.0, 3.0, 0.01};
  const double t = 15.0;
  const double s1 = std::exp(-std::pow(t / 10.0, 2.0));
  const double f2 = 1.0 - std::exp(-std::pow(t / 20.0, 3.0));
  EXPECT_NEAR(m.evaluate(t, p), s1 + 0.01 * t * f2, 1e-14);
}

TEST(MixtureModel, ExponentialTrendUsesExpOfBetaT) {
  const MixtureModel m({Family::kExponential, Family::kExponential,
                        RecoveryTrend::kExponential});
  const num::Vector p{0.05, 0.08, 0.01};
  const double t = 10.0;
  const double expected =
      std::exp(-0.05 * t) + std::exp(0.01 * t) * (1.0 - std::exp(-0.08 * t));
  EXPECT_NEAR(m.evaluate(t, p), expected, 1e-14);
}

TEST(MixtureModel, TrendBasisValues) {
  EXPECT_DOUBLE_EQ(MixtureModel::trend_basis(RecoveryTrend::kConstant, 7.0), 1.0);
  EXPECT_DOUBLE_EQ(MixtureModel::trend_basis(RecoveryTrend::kLinear, 7.0), 7.0);
  EXPECT_DOUBLE_EQ(MixtureModel::trend_basis(RecoveryTrend::kLogarithmic, std::exp(1.0)), 1.0);
  EXPECT_DOUBLE_EQ(MixtureModel::trend_basis(RecoveryTrend::kLogarithmic, 0.0), 0.0);
  EXPECT_THROW(MixtureModel::trend_basis(RecoveryTrend::kExponential, 1.0), std::logic_error);
}

TEST(MixtureModel, WrongParameterCountThrows) {
  const MixtureModel m({Family::kExponential, Family::kExponential,
                        RecoveryTrend::kLogarithmic});
  EXPECT_THROW(m.evaluate(1.0, {0.1, 0.2}), std::invalid_argument);
}

TEST(MixtureModel, InitialGuessesSatisfyBoundsForAllPaperCombos) {
  const auto series = data::generate_shape(data::RecessionShape::kU, 48, 11);
  for (Family f1 : {Family::kExponential, Family::kWeibull}) {
    for (Family f2 : {Family::kExponential, Family::kWeibull}) {
      const MixtureModel m({f1, f2, RecoveryTrend::kLogarithmic});
      const auto guesses = m.initial_guesses(series);
      EXPECT_GE(guesses.size(), 1u);
      const auto bounds = m.parameter_bounds();
      for (const auto& g : guesses) {
        ASSERT_EQ(g.size(), m.num_parameters());
        for (std::size_t i = 0; i < g.size(); ++i) {
          if (bounds[i].kind == opt::BoundKind::kPositive) {
            EXPECT_GT(g[i], 0.0) << m.name() << " param " << i;
          }
        }
      }
    }
  }
}

TEST(MixtureModel, SearchBoxOrderedAndPositive) {
  const auto series = data::generate_shape(data::RecessionShape::kV, 48, 11);
  for (RecoveryTrend tr : {RecoveryTrend::kConstant, RecoveryTrend::kLinear,
                           RecoveryTrend::kExponential, RecoveryTrend::kLogarithmic}) {
    const MixtureModel m({Family::kWeibull, Family::kWeibull, tr});
    const auto [lo, hi] = m.search_box(series);
    ASSERT_EQ(lo.size(), m.num_parameters());
    for (std::size_t i = 0; i < lo.size(); ++i) {
      EXPECT_LT(lo[i], hi[i]);
      EXPECT_GT(lo[i], 0.0);
    }
  }
}

TEST(MixtureModel, GradientDefaultMatchesFiniteDifferenceOfEvaluate) {
  const MixtureModel m({Family::kWeibull, Family::kExponential, RecoveryTrend::kLogarithmic});
  const num::Vector p{12.0, 2.0, 0.07, 0.25};
  const double t = 9.0;
  const num::Vector g = m.gradient(t, p);
  for (std::size_t i = 0; i < p.size(); ++i) {
    num::Vector pp = p;
    const double h = 1e-6 * std::max(1.0, std::fabs(p[i]));
    pp[i] += h;
    const double up = m.evaluate(t, pp);
    pp[i] -= 2 * h;
    const double dn = m.evaluate(t, pp);
    EXPECT_NEAR(g[i], (up - dn) / (2 * h), 1e-5);
  }
}

TEST(MixtureModel, A1DecayAddsThetaParameter) {
  const MixtureModel base({Family::kWeibull, Family::kExponential,
                           RecoveryTrend::kLogarithmic, DegradationTrend::kConstant});
  const MixtureModel decay({Family::kWeibull, Family::kExponential,
                            RecoveryTrend::kLogarithmic, DegradationTrend::kExpDecay});
  EXPECT_EQ(decay.num_parameters(), base.num_parameters() + 1);
  EXPECT_EQ(decay.parameter_names().back(), "theta");
  EXPECT_EQ(decay.parameter_bounds().size(), decay.num_parameters());
  EXPECT_NE(decay.name(), base.name());
}

TEST(MixtureModel, A1DecayEvaluateMatchesHandFormula) {
  const MixtureModel m({Family::kExponential, Family::kExponential,
                        RecoveryTrend::kLogarithmic, DegradationTrend::kExpDecay});
  const num::Vector p{0.05, 0.08, 0.3, 0.02};  // lambda1, lambda2, beta, theta
  const double t = 12.0;
  const double expected = std::exp(-0.02 * t) * std::exp(-0.05 * t) +
                          0.3 * std::log(t) * (1.0 - std::exp(-0.08 * t));
  EXPECT_NEAR(m.evaluate(t, p), expected, 1e-14);
  // Eq. 7's limits: a1(0) (1 - F1(0)) = 1.
  EXPECT_DOUBLE_EQ(m.evaluate(0.0, p), 1.0);
}

TEST(MixtureModel, A1DecayVanishesAtInfinityUnlikeConstant) {
  // With beta ~ 0 (no recovery), the kExpDecay curve must head to 0 while
  // the kConstant one plateaus at S1 -- the Eq. 7 limit the paper waived.
  const num::Vector pc{40.0, 0.4, 0.01, 1e-9};        // Weibull k<1: slow S1 decay
  const num::Vector pd{40.0, 0.4, 0.01, 1e-9, 0.05};  // + theta
  const MixtureModel constant({Family::kWeibull, Family::kExponential,
                               RecoveryTrend::kConstant, DegradationTrend::kConstant});
  const MixtureModel decay({Family::kWeibull, Family::kExponential,
                            RecoveryTrend::kConstant, DegradationTrend::kExpDecay});
  EXPECT_GT(constant.evaluate(300.0, pc), 0.05);
  EXPECT_LT(decay.evaluate(300.0, pd), 0.01);
}

TEST(MixtureModel, A1DecayGradientMatchesFiniteDifference) {
  const MixtureModel m({Family::kWeibull, Family::kExponential,
                        RecoveryTrend::kLogarithmic, DegradationTrend::kExpDecay});
  const num::Vector p{12.0, 2.0, 0.07, 0.25, 0.015};
  for (double t : {0.5, 9.0, 30.0}) {
    const num::Vector g = m.gradient(t, p);
    for (std::size_t i = 0; i < p.size(); ++i) {
      num::Vector pp = p;
      const double h = 1e-6 * std::max(1.0, std::fabs(p[i]));
      pp[i] += h;
      const double up = m.evaluate(t, pp);
      pp[i] -= 2 * h;
      const double dn = m.evaluate(t, pp);
      EXPECT_NEAR(g[i], (up - dn) / (2 * h), 1e-5) << "t=" << t << " param " << i;
    }
  }
}

TEST(MixtureModel, A1DecayFitsRecessionsAtLeastAsWellInSample) {
  // One extra free parameter can only help (or tie) the in-sample SSE when
  // the optimizer does its job; theta ~ 0 recovers the constant model.
  const auto& ds = data::recession("1990-93");
  const MixtureModel base({Family::kWeibull, Family::kExponential,
                           RecoveryTrend::kLogarithmic, DegradationTrend::kConstant});
  const MixtureModel decay({Family::kWeibull, Family::kExponential,
                            RecoveryTrend::kLogarithmic, DegradationTrend::kExpDecay});
  const FitResult fb = fit_model(base, ds.series, ds.holdout);
  const FitResult fd = fit_model(decay, ds.series, ds.holdout);
  EXPECT_LE(fd.sse, fb.sse * 1.05);
}

TEST(MixtureModel, DescriptionMentionsFamilies) {
  const MixtureModel m({Family::kWeibull, Family::kExponential, RecoveryTrend::kLogarithmic});
  const std::string d = m.description();
  EXPECT_NE(d.find("wei"), std::string::npos);
  EXPECT_NE(d.find("exp"), std::string::npos);
}

TEST(MixtureModel, GammaFamilyGradientMatchesCentralDifference) {
  // The Gamma CDF reaches the dual-number overload of gamma_p, whose
  // x-derivative is the analytic gamma density -- cross-check the whole
  // chain against central differences of evaluate().
  const MixtureModel m({Family::kGamma, Family::kGamma, RecoveryTrend::kLinear});
  const num::Vector p{2.5, 6.0, 1.8, 14.0, 0.004};
  for (double t : {1.0, 8.0, 25.0}) {
    const num::Vector g = m.gradient(t, p);
    for (std::size_t i = 0; i < p.size(); ++i) {
      num::Vector pp = p;
      const double h = 1e-6 * std::max(1.0, std::fabs(p[i]));
      pp[i] += h;
      const double up = m.evaluate(t, pp);
      pp[i] -= 2 * h;
      const double dn = m.evaluate(t, pp);
      EXPECT_NEAR(g[i], (up - dn) / (2 * h), 1e-4) << "t=" << t << " param " << i;
    }
  }
}

TEST(MixtureModel, LogNormalFamilyGradientMatchesCentralDifference) {
  // Same cross-check through the normal_cdf dual overload (derivative phi).
  const MixtureModel m({Family::kLogNormal, Family::kWeibull,
                        RecoveryTrend::kExponential});
  const num::Vector p{2.0, 0.6, 20.0, 2.2, 0.01};
  for (double t : {0.5, 6.0, 18.0}) {
    const num::Vector g = m.gradient(t, p);
    for (std::size_t i = 0; i < p.size(); ++i) {
      num::Vector pp = p;
      const double h = 1e-6 * std::max(1.0, std::fabs(p[i]));
      pp[i] += h;
      const double up = m.evaluate(t, pp);
      pp[i] -= 2 * h;
      const double dn = m.evaluate(t, pp);
      EXPECT_NEAR(g[i], (up - dn) / (2 * h), 1e-5) << "t=" << t << " param " << i;
    }
  }
}

}  // namespace
}  // namespace prm::core
