// Crash-injection harness for the WAL: a forked child ingests with fsync =
// always and is SIGKILLed mid-ingest -- no destructors, no flush, exactly
// like a power cut. The parent then rebuilds the acknowledged-durable state
// two independent ways and requires them to be byte-identical:
//
//   1. live::Monitor::recover() on the crashed directory, and
//   2. a never-crashed reference monitor (no WAL) that re-executes the
//      mutations the log proves were acknowledged: every clean kIngest
//      record is re-ingested, and every kRefit/kRefitFail marker triggers
//      the same deterministic refit_batch(1) pass the victim ran.
//
// Because the victim appends each record durably BEFORE applying it, the
// clean prefix of the log is exactly the acknowledged history; the only
// permitted loss is a torn final frame. Refit jobs that were queued but had
// not produced a logged result when the kill landed are re-queued by
// recover() (the log's unconsumed want-refit edges), mirroring the queue the
// reference accumulates by re-ingesting the same samples -- both sides then
// drain identically inside save(). A second cycle re-crashes a monitor that
// itself booted via recover(), proving recovery chains across crashes.
#include <gtest/gtest.h>

#include <dirent.h>
#include <signal.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "live/monitor.hpp"
#include "wal/log.hpp"
#include "wal/record.hpp"
#include "wal/recovery.hpp"

namespace {

using namespace prm;

/// RAII temp directory under TMPDIR; removed (recursively) on destruction.
class TempDir {
 public:
  TempDir() {
    const char* base = std::getenv("TMPDIR");
    path_ = std::string(base != nullptr ? base : "/tmp") + "/prm_crash_XXXXXX";
    if (::mkdtemp(path_.data()) == nullptr) {
      throw std::runtime_error("mkdtemp failed");
    }
  }
  ~TempDir() { remove_tree(path_); }
  const std::string& path() const { return path_; }

  static void remove_tree(const std::string& dir) {
    if (DIR* handle = ::opendir(dir.c_str())) {
      while (const dirent* entry = ::readdir(handle)) {
        const std::string name = entry->d_name;
        if (name == "." || name == "..") continue;
        const std::string child = dir + "/" + name;
        struct stat st{};
        if (::lstat(child.c_str(), &st) == 0 && S_ISDIR(st.st_mode)) {
          remove_tree(child);
        } else {
          ::unlink(child.c_str());
        }
      }
      ::closedir(handle);
    }
    ::rmdir(dir.c_str());
  }

 private:
  std::string path_;
};

double smoothstep(double x) {
  if (x <= 0.0) return 0.0;
  if (x >= 1.0) return 1.0;
  return x * x * (3.0 - 2.0 * x);
}

/// V-shaped disruption per stream, phase-shifted so streams refit at
/// different times: flat 1.0 for 16 samples, dip to 0.90 over 10, recover
/// to 1.02 over 30, flat after.
double victim_value(int stream, double t) {
  const double u = t - 16.0 - 3.0 * stream;
  if (u <= 0.0) return 1.0;
  if (u <= 10.0) return 1.0 - 0.10 * smoothstep(u / 10.0);
  if (u <= 40.0) return 0.90 + 0.12 * smoothstep((u - 10.0) / 30.0);
  return 1.02;
}

constexpr int kStreams = 3;

/// Deterministic single-shard, single-thread, batched-refit options with a
/// durable-on-acknowledge log: every record is fsynced before it is applied.
live::MonitorOptions victim_options(const std::string& dir) {
  live::MonitorOptions options;
  options.stream.window_capacity = 64;
  options.stream.cusum.baseline = 12;
  options.stream.confirm_samples = 3;
  options.stream.recovery_fraction = 0.98;
  options.model = "competing-risks";
  options.refit_every = 2;
  options.min_fit_samples = 8;
  options.threads = 1;
  options.shards = 1;
  options.batched_refits = true;
  options.wal.dir = dir;
  options.wal.fsync = wal::FsyncPolicy::kAlways;
  return options;
}

std::string stream_name(int s) { return "svc-" + std::to_string(s); }

std::string snapshot_bytes(live::Monitor& monitor) {
  std::ostringstream out;
  monitor.save(out);
  return out.str();
}

bool monitor_has_stream(live::Monitor& monitor, const std::string& name) {
  for (const std::string& existing : monitor.stream_names()) {
    if (existing == name) return true;
  }
  return false;
}

/// Child body: boot (fresh or via recover), then ingest forever, one
/// refit_batch pass per sample, until SIGKILL arrives. Never returns.
[[noreturn]] void victim_main(const std::string& dir, bool resume) {
  try {
    std::unique_ptr<live::Monitor> monitor;
    if (resume) {
      monitor = live::Monitor::recover(victim_options(dir));
    } else {
      monitor = std::make_unique<live::Monitor>(victim_options(dir));
    }
    // Resume each stream one past its recovered clock (fresh streams at 0).
    std::vector<double> next_t(kStreams, 0.0);
    for (int s = 0; s < kStreams; ++s) {
      const std::string name = stream_name(s);
      if (monitor_has_stream(*monitor, name)) {
        next_t[static_cast<std::size_t>(s)] =
            monitor->snapshot(name).last_time + 1.0;
      }
    }
    for (;;) {
      for (int s = 0; s < kStreams; ++s) {
        double& t = next_t[static_cast<std::size_t>(s)];
        monitor->ingest(stream_name(s), t, victim_value(s, t));
        monitor->refit_batch(1);
        t += 1.0;
      }
    }
  } catch (...) {
    ::_exit(2);  // surfaces as "victim died before SIGKILL" in the parent
  }
}

/// Fork a victim on `dir`, wait until the log shows enough acknowledged
/// progress (records and at least two refits), then SIGKILL it.
void crash_one_victim(const std::string& dir, bool resume,
                      std::uint64_t min_new_records) {
  wal::RecoveryStats before_stats;
  const std::size_t before = wal::read_all_records(dir, before_stats).size();

  const pid_t pid = ::fork();
  ASSERT_NE(pid, -1) << "fork failed";
  if (pid == 0) victim_main(dir, resume);  // never returns

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  bool progressed = false;
  while (std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, WNOHANG), 0)
        << "victim died on its own (status " << status << ")";
    wal::RecoveryStats stats;
    const auto records = wal::read_all_records(dir, stats);
    std::uint64_t refits = 0;
    for (const auto& r : records) {
      if (r.record.type == wal::RecordType::kRefit) ++refits;
    }
    if (records.size() >= before + min_new_records && refits >= 2) {
      progressed = true;
      break;
    }
  }
  if (!progressed) ::kill(pid, SIGKILL);
  ASSERT_TRUE(progressed) << "victim made no loggable progress in 30s";

  ASSERT_EQ(::kill(pid, SIGKILL), 0);
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status));
  ASSERT_EQ(WTERMSIG(status), SIGKILL);
}

/// Re-execute the acknowledged history recorded in `dir` on a fresh WAL-less
/// monitor: the never-crashed reference.
std::unique_ptr<live::Monitor> build_reference(const std::string& dir) {
  live::MonitorOptions options = victim_options(dir);
  options.wal.dir.clear();
  auto reference = std::make_unique<live::Monitor>(options);

  wal::RecoveryStats stats;
  for (const wal::ReplayRecord& r : wal::read_all_records(dir, stats)) {
    switch (r.record.type) {
      case wal::RecordType::kIngest: {
        std::istringstream in(r.record.payload);
        std::uint64_t incarnation = 0, seq = 0;
        std::string name;
        double t = 0.0, value = 0.0;
        in >> incarnation >> seq >> name >> t >> value;
        reference->ingest(name, t, value);
        break;
      }
      case wal::RecordType::kRefit:
      case wal::RecordType::kRefitFail:
        // The victim ran refit_batch(1) here; the pipeline is deterministic,
        // so the same pass reproduces the logged fit bit for bit.
        reference->refit_batch(1);
        break;
      default:
        break;  // creates are implicit; no removes/rules in this scenario
    }
  }
  return reference;
}

// ---------------------------------------------------------------------------

TEST(WalCrash, SigkillMidIngestRecoversTheAcknowledgedStateExactly) {
  TempDir dir;
  crash_one_victim(dir.path(), /*resume=*/false, /*min_new_records=*/60);

  auto reference = build_reference(dir.path());
  auto recovered = live::Monitor::recover(victim_options(dir.path()));

  const wal::RecoveryStats& stats = recovered->recovery_stats();
  EXPECT_FALSE(stats.snapshot_loaded);
  EXPECT_GT(stats.applied, 0u);
  EXPECT_LE(stats.torn_tails, 1u);  // only the active segment may be torn

  EXPECT_EQ(snapshot_bytes(*recovered), snapshot_bytes(*reference));
  EXPECT_EQ(recovered->stream_count(), static_cast<std::size_t>(kStreams));
}

TEST(WalCrash, RecoveryChainsAcrossRepeatedCrashes) {
  // Crash a fresh victim, then crash a victim that itself booted via
  // recover(): the log now spans two incarnations of the process, and
  // recovery must still reproduce the full acknowledged history.
  TempDir dir;
  crash_one_victim(dir.path(), /*resume=*/false, /*min_new_records=*/60);
  crash_one_victim(dir.path(), /*resume=*/true, /*min_new_records=*/30);

  auto reference = build_reference(dir.path());
  auto recovered = live::Monitor::recover(victim_options(dir.path()));
  EXPECT_EQ(snapshot_bytes(*recovered), snapshot_bytes(*reference));

  // And the twice-recovered monitor still works.
  const std::string name = stream_name(0);
  const double t = recovered->snapshot(name).last_time + 1.0;
  recovered->ingest(name, t, victim_value(0, t));
  recovered->drain();
  EXPECT_EQ(recovered->snapshot(name).last_time, t);
}

}  // namespace
