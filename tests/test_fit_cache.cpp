// serve::FitCache: key construction (what participates, what is ignored),
// LRU eviction order with MRU promotion, hit/miss counters, the capacity-0
// kill switch, cacheability rules, and a concurrency smoke test.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "core/fitting.hpp"
#include "serve/fit_cache.hpp"

namespace {

using namespace prm;
using serve::FitCache;
using serve::FitCacheKey;

data::PerformanceSeries series_of(std::vector<double> values) {
  std::vector<double> times(values.size());
  for (std::size_t i = 0; i < times.size(); ++i) times[i] = static_cast<double>(i);
  return data::PerformanceSeries("s", std::move(times), std::move(values));
}

std::shared_ptr<const core::FitResult> fake_fit(double marker) {
  auto fit = std::make_shared<core::FitResult>();
  fit->sse = marker;
  return fit;
}

TEST(FitCacheKey, IgnoresSeriesNameButNotData) {
  const core::FitOptions options;
  std::vector<double> times = {0, 1, 2, 3};
  const data::PerformanceSeries a("first upload", times, {1.0, 0.8, 0.7, 0.9});
  const data::PerformanceSeries b("second upload", times, {1.0, 0.8, 0.7, 0.9});
  const data::PerformanceSeries c("first upload", times, {1.0, 0.8, 0.7, 0.91});
  EXPECT_EQ(serve::make_fit_cache_key(a, "m", 1, options),
            serve::make_fit_cache_key(b, "m", 1, options));
  EXPECT_NE(serve::make_fit_cache_key(a, "m", 1, options),
            serve::make_fit_cache_key(c, "m", 1, options));
}

TEST(FitCacheKey, TimesMatterIndependentlyOfValues) {
  // Same concatenated byte streams, different time/value split: the hash
  // separates the two arrays, so these must not collide as full keys.
  const data::PerformanceSeries a("a", {0, 1, 2}, {3, 4, 5});
  const data::PerformanceSeries b("b", {0, 1, 3}, {2, 4, 5});
  const core::FitOptions options;
  EXPECT_NE(serve::make_fit_cache_key(a, "m", 1, options),
            serve::make_fit_cache_key(b, "m", 1, options));
}

TEST(FitCacheKey, EveryScalarFieldParticipates) {
  const auto series = series_of({1.0, 0.9, 0.8, 0.85, 0.95});
  core::FitOptions options;
  const FitCacheKey base = serve::make_fit_cache_key(series, "model-a", 1, options);

  EXPECT_NE(base, serve::make_fit_cache_key(series, "model-b", 1, options));
  EXPECT_NE(base, serve::make_fit_cache_key(series, "model-a", 2, options));

  core::FitOptions robust = options;
  robust.loss = opt::LossKind::kHuber;
  EXPECT_NE(base, serve::make_fit_cache_key(series, "model-a", 1, robust));

  core::FitOptions rescaled = robust;
  rescaled.loss_scale = robust.loss_scale * 2.0;
  EXPECT_NE(serve::make_fit_cache_key(series, "model-a", 1, robust),
            serve::make_fit_cache_key(series, "model-a", 1, rescaled));
}

TEST(FitCacheKey, CacheabilityRules) {
  core::FitOptions plain;
  EXPECT_TRUE(serve::cacheable(plain));

  core::FitOptions weighted = plain;
  weighted.weights = {1.0, 2.0, 1.0};
  EXPECT_FALSE(serve::cacheable(weighted));

  core::FitOptions warm = plain;
  warm.warm_start = num::Vector{0.5, 0.5};
  EXPECT_FALSE(serve::cacheable(warm));
}

FitCacheKey key_n(int n) {
  // Aggregate init (not member-wise assignment): GCC 12 raises a spurious
  // -Wrestrict on std::string::operator=(const char*) at -O2.
  return FitCacheKey{static_cast<std::uint64_t>(n), 16, std::string("m"), 0, 0, 0.0};
}

TEST(FitCache, LookupInsertAndCounters) {
  FitCache cache(4);
  EXPECT_EQ(cache.lookup(key_n(1)), nullptr);
  EXPECT_EQ(cache.misses(), 1u);

  cache.insert(key_n(1), fake_fit(11.0));
  const auto hit = cache.lookup(key_n(1));
  ASSERT_NE(hit, nullptr);
  EXPECT_DOUBLE_EQ(hit->sse, 11.0);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(FitCache, EvictsLeastRecentlyUsed) {
  FitCache cache(3);
  cache.insert(key_n(1), fake_fit(1));
  cache.insert(key_n(2), fake_fit(2));
  cache.insert(key_n(3), fake_fit(3));

  // Touch 1 so it becomes MRU; inserting 4 must now evict 2, not 1.
  ASSERT_NE(cache.lookup(key_n(1)), nullptr);
  cache.insert(key_n(4), fake_fit(4));

  EXPECT_EQ(cache.size(), 3u);
  EXPECT_NE(cache.lookup(key_n(1)), nullptr);
  EXPECT_EQ(cache.lookup(key_n(2)), nullptr);  // evicted
  EXPECT_NE(cache.lookup(key_n(3)), nullptr);
  EXPECT_NE(cache.lookup(key_n(4)), nullptr);
}

TEST(FitCache, EvictionDoesNotInvalidateHandedOutResults) {
  FitCache cache(1);
  cache.insert(key_n(1), fake_fit(1.5));
  const auto held = cache.lookup(key_n(1));
  cache.insert(key_n(2), fake_fit(2.5));  // evicts key 1
  EXPECT_EQ(cache.lookup(key_n(1)), nullptr);
  ASSERT_NE(held, nullptr);  // our reference is still alive and intact
  EXPECT_DOUBLE_EQ(held->sse, 1.5);
}

TEST(FitCache, ReinsertSameKeyKeepsNewestValue) {
  FitCache cache(4);
  cache.insert(key_n(1), fake_fit(1.0));
  cache.insert(key_n(1), fake_fit(9.0));
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_DOUBLE_EQ(cache.lookup(key_n(1))->sse, 9.0);
}

TEST(FitCache, CapacityZeroDisablesCaching) {
  FitCache cache(0);
  cache.insert(key_n(1), fake_fit(1.0));
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.lookup(key_n(1)), nullptr);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(FitCache, ClearEmptiesEntriesButCountersPersist) {
  FitCache cache(4);
  cache.insert(key_n(1), fake_fit(1.0));
  ASSERT_NE(cache.lookup(key_n(1)), nullptr);
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.lookup(key_n(1)), nullptr);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(FitCache, ShardCountClampsAndCapacitySplits) {
  FitCache cache(10, 4);
  EXPECT_EQ(cache.shards(), 4u);
  EXPECT_EQ(cache.capacity(), 10u);

  // Never more shards than entries: a zero-capacity shard would be a
  // permanent miss for its slice of the key space.
  FitCache tiny(2, 8);
  EXPECT_EQ(tiny.shards(), 2u);

  // shards == 0 resolves to the pool default, always >= 1.
  FitCache auto_sharded(64, 0);
  EXPECT_GE(auto_sharded.shards(), 1u);
  EXPECT_LE(auto_sharded.shards(), 64u);
}

TEST(FitCache, EvictionCounterTracksLruDrops) {
  FitCache cache(2, 1);
  cache.insert(key_n(1), fake_fit(1));
  cache.insert(key_n(2), fake_fit(2));
  EXPECT_EQ(cache.evictions(), 0u);
  cache.insert(key_n(3), fake_fit(3));  // drops key 1 (LRU)
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_EQ(cache.lookup(key_n(1)), nullptr);

  const serve::FitCacheStats stats = cache.stats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.size, 2u);
}

/// First `count` generated keys landing in shard `target` of a
/// `shard_count`-way cache, via the exposed shard_index mapping.
std::vector<FitCacheKey> aliased_keys(std::size_t shard_count, std::size_t target,
                                      std::size_t count) {
  std::vector<FitCacheKey> keys;
  for (int n = 0; keys.size() < count; ++n) {
    FitCacheKey key = key_n(n);
    if (FitCache::shard_index(key, shard_count) == target) keys.push_back(key);
  }
  return keys;
}

TEST(FitCache, ShardAliasedConcurrentHammerHasNoLostUpdates) {
  // Every key aliases into shard 0 of a 4-way cache, so all 8 threads fight
  // over ONE shard mutex. Per-shard capacity (128/4 = 32) exceeds the 24-key
  // working set: nothing may ever be evicted, so after the storm every key
  // must be resident with the value its slot always receives.
  constexpr std::size_t kShards = 4;
  constexpr std::size_t kKeys = 24;
  FitCache cache(128, kShards);
  ASSERT_EQ(cache.shards(), kShards);
  const std::vector<FitCacheKey> keys = aliased_keys(kShards, 0, kKeys);

  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 2000;
  std::atomic<bool> wrong_value{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, &keys, &wrong_value, t] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        const std::size_t slot = static_cast<std::size_t>(t * 13 + i) % keys.size();
        if (i % 2 == 0) {
          cache.insert(keys[slot], fake_fit(static_cast<double>(slot)));
        } else if (const auto fit = cache.lookup(keys[slot])) {
          if (fit->sse != static_cast<double>(slot)) wrong_value = true;
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  EXPECT_FALSE(wrong_value.load());
  EXPECT_EQ(cache.evictions(), 0u);
  for (std::size_t slot = 0; slot < keys.size(); ++slot) {
    const auto fit = cache.lookup(keys[slot]);
    ASSERT_NE(fit, nullptr) << "lost update on aliased key " << slot;
    EXPECT_DOUBLE_EQ(fit->sse, static_cast<double>(slot));
  }
  // Counter math is exact: every op is either a hit or a miss, and the
  // verification pass above added kKeys hits.
  EXPECT_EQ(cache.hits() + cache.misses(),
            static_cast<std::uint64_t>(kThreads) * kOpsPerThread / 2 + kKeys);
}

TEST(FitCache, LruEvictionOrderIsPerShardUnderInterleavedGetPut) {
  // 4 slots over 2 shards = 2 per shard. Churn three keys through shard 0
  // while shard 1 holds a single untouched resident: eviction order within
  // shard 0 must follow LRU-with-promotion exactly, and the churn must never
  // disturb shard 1.
  constexpr std::size_t kShards = 2;
  FitCache cache(4, kShards);
  const std::vector<FitCacheKey> s0 = aliased_keys(kShards, 0, 3);
  const std::vector<FitCacheKey> s1 = aliased_keys(kShards, 1, 1);

  cache.insert(s1[0], fake_fit(100.0));

  cache.insert(s0[0], fake_fit(0.0));
  cache.insert(s0[1], fake_fit(1.0));
  ASSERT_NE(cache.lookup(s0[0]), nullptr);  // promote 0 -> MRU
  cache.insert(s0[2], fake_fit(2.0));       // shard 0 full: evicts 1, not 0

  EXPECT_EQ(cache.lookup(s0[1]), nullptr);
  EXPECT_NE(cache.lookup(s0[0]), nullptr);
  EXPECT_NE(cache.lookup(s0[2]), nullptr);
  EXPECT_EQ(cache.evictions(), 1u);

  const auto other = cache.lookup(s1[0]);
  ASSERT_NE(other, nullptr) << "churn in shard 0 must never evict shard 1";
  EXPECT_DOUBLE_EQ(other->sse, 100.0);
}

TEST(FitCache, ConcurrentMixedOperationsAreSafe) {
  FitCache cache(8);  // smaller than the working set: constant eviction churn
  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 1998;  // divisible by 3: exact counter math below
  std::atomic<bool> failed{false};

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, &failed, t] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        const int slot = (t * 7 + i) % 16;
        if (i % 3 == 0) {
          cache.insert(key_n(slot), fake_fit(static_cast<double>(slot)));
        } else if (const auto fit = cache.lookup(key_n(slot))) {
          // A hit must always carry the value inserted under that key.
          if (fit->sse != static_cast<double>(slot)) failed = true;
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  EXPECT_FALSE(failed.load());
  EXPECT_LE(cache.size(), 8u);
  EXPECT_EQ(cache.hits() + cache.misses(),
            static_cast<std::uint64_t>(kThreads) * kOpsPerThread * 2 / 3);
}

}  // namespace
