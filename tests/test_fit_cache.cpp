// serve::FitCache: key construction (what participates, what is ignored),
// LRU eviction order with MRU promotion, hit/miss counters, the capacity-0
// kill switch, cacheability rules, and a concurrency smoke test.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "core/fitting.hpp"
#include "serve/fit_cache.hpp"

namespace {

using namespace prm;
using serve::FitCache;
using serve::FitCacheKey;

data::PerformanceSeries series_of(std::vector<double> values) {
  std::vector<double> times(values.size());
  for (std::size_t i = 0; i < times.size(); ++i) times[i] = static_cast<double>(i);
  return data::PerformanceSeries("s", std::move(times), std::move(values));
}

std::shared_ptr<const core::FitResult> fake_fit(double marker) {
  auto fit = std::make_shared<core::FitResult>();
  fit->sse = marker;
  return fit;
}

TEST(FitCacheKey, IgnoresSeriesNameButNotData) {
  const core::FitOptions options;
  std::vector<double> times = {0, 1, 2, 3};
  const data::PerformanceSeries a("first upload", times, {1.0, 0.8, 0.7, 0.9});
  const data::PerformanceSeries b("second upload", times, {1.0, 0.8, 0.7, 0.9});
  const data::PerformanceSeries c("first upload", times, {1.0, 0.8, 0.7, 0.91});
  EXPECT_EQ(serve::make_fit_cache_key(a, "m", 1, options),
            serve::make_fit_cache_key(b, "m", 1, options));
  EXPECT_NE(serve::make_fit_cache_key(a, "m", 1, options),
            serve::make_fit_cache_key(c, "m", 1, options));
}

TEST(FitCacheKey, TimesMatterIndependentlyOfValues) {
  // Same concatenated byte streams, different time/value split: the hash
  // separates the two arrays, so these must not collide as full keys.
  const data::PerformanceSeries a("a", {0, 1, 2}, {3, 4, 5});
  const data::PerformanceSeries b("b", {0, 1, 3}, {2, 4, 5});
  const core::FitOptions options;
  EXPECT_NE(serve::make_fit_cache_key(a, "m", 1, options),
            serve::make_fit_cache_key(b, "m", 1, options));
}

TEST(FitCacheKey, EveryScalarFieldParticipates) {
  const auto series = series_of({1.0, 0.9, 0.8, 0.85, 0.95});
  core::FitOptions options;
  const FitCacheKey base = serve::make_fit_cache_key(series, "model-a", 1, options);

  EXPECT_NE(base, serve::make_fit_cache_key(series, "model-b", 1, options));
  EXPECT_NE(base, serve::make_fit_cache_key(series, "model-a", 2, options));

  core::FitOptions robust = options;
  robust.loss = opt::LossKind::kHuber;
  EXPECT_NE(base, serve::make_fit_cache_key(series, "model-a", 1, robust));

  core::FitOptions rescaled = robust;
  rescaled.loss_scale = robust.loss_scale * 2.0;
  EXPECT_NE(serve::make_fit_cache_key(series, "model-a", 1, robust),
            serve::make_fit_cache_key(series, "model-a", 1, rescaled));
}

TEST(FitCacheKey, CacheabilityRules) {
  core::FitOptions plain;
  EXPECT_TRUE(serve::cacheable(plain));

  core::FitOptions weighted = plain;
  weighted.weights = {1.0, 2.0, 1.0};
  EXPECT_FALSE(serve::cacheable(weighted));

  core::FitOptions warm = plain;
  warm.warm_start = num::Vector{0.5, 0.5};
  EXPECT_FALSE(serve::cacheable(warm));
}

FitCacheKey key_n(int n) {
  // Aggregate init (not member-wise assignment): GCC 12 raises a spurious
  // -Wrestrict on std::string::operator=(const char*) at -O2.
  return FitCacheKey{static_cast<std::uint64_t>(n), 16, std::string("m"), 0, 0, 0.0};
}

TEST(FitCache, LookupInsertAndCounters) {
  FitCache cache(4);
  EXPECT_EQ(cache.lookup(key_n(1)), nullptr);
  EXPECT_EQ(cache.misses(), 1u);

  cache.insert(key_n(1), fake_fit(11.0));
  const auto hit = cache.lookup(key_n(1));
  ASSERT_NE(hit, nullptr);
  EXPECT_DOUBLE_EQ(hit->sse, 11.0);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(FitCache, EvictsLeastRecentlyUsed) {
  FitCache cache(3);
  cache.insert(key_n(1), fake_fit(1));
  cache.insert(key_n(2), fake_fit(2));
  cache.insert(key_n(3), fake_fit(3));

  // Touch 1 so it becomes MRU; inserting 4 must now evict 2, not 1.
  ASSERT_NE(cache.lookup(key_n(1)), nullptr);
  cache.insert(key_n(4), fake_fit(4));

  EXPECT_EQ(cache.size(), 3u);
  EXPECT_NE(cache.lookup(key_n(1)), nullptr);
  EXPECT_EQ(cache.lookup(key_n(2)), nullptr);  // evicted
  EXPECT_NE(cache.lookup(key_n(3)), nullptr);
  EXPECT_NE(cache.lookup(key_n(4)), nullptr);
}

TEST(FitCache, EvictionDoesNotInvalidateHandedOutResults) {
  FitCache cache(1);
  cache.insert(key_n(1), fake_fit(1.5));
  const auto held = cache.lookup(key_n(1));
  cache.insert(key_n(2), fake_fit(2.5));  // evicts key 1
  EXPECT_EQ(cache.lookup(key_n(1)), nullptr);
  ASSERT_NE(held, nullptr);  // our reference is still alive and intact
  EXPECT_DOUBLE_EQ(held->sse, 1.5);
}

TEST(FitCache, ReinsertSameKeyKeepsNewestValue) {
  FitCache cache(4);
  cache.insert(key_n(1), fake_fit(1.0));
  cache.insert(key_n(1), fake_fit(9.0));
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_DOUBLE_EQ(cache.lookup(key_n(1))->sse, 9.0);
}

TEST(FitCache, CapacityZeroDisablesCaching) {
  FitCache cache(0);
  cache.insert(key_n(1), fake_fit(1.0));
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.lookup(key_n(1)), nullptr);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(FitCache, ClearEmptiesEntriesButCountersPersist) {
  FitCache cache(4);
  cache.insert(key_n(1), fake_fit(1.0));
  ASSERT_NE(cache.lookup(key_n(1)), nullptr);
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.lookup(key_n(1)), nullptr);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(FitCache, ConcurrentMixedOperationsAreSafe) {
  FitCache cache(8);  // smaller than the working set: constant eviction churn
  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 1998;  // divisible by 3: exact counter math below
  std::atomic<bool> failed{false};

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, &failed, t] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        const int slot = (t * 7 + i) % 16;
        if (i % 3 == 0) {
          cache.insert(key_n(slot), fake_fit(static_cast<double>(slot)));
        } else if (const auto fit = cache.lookup(key_n(slot))) {
          // A hit must always carry the value inserted under that key.
          if (fit->sse != static_cast<double>(slot)) failed = true;
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  EXPECT_FALSE(failed.load());
  EXPECT_LE(cache.size(), 8u);
  EXPECT_EQ(cache.hits() + cache.misses(),
            static_cast<std::uint64_t>(kThreads) * kOpsPerThread * 2 / 3);
}

}  // namespace
