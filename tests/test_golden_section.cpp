#include "optimize/golden_section.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace prm::opt {
namespace {

TEST(GoldenSection, FindsParabolaMinimum) {
  const auto f = [](double x) { return (x - 1.7) * (x - 1.7) + 0.5; };
  const GoldenResult r = golden_section(f, 0.0, 5.0);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.x, 1.7, 1e-7);
  EXPECT_NEAR(r.fx, 0.5, 1e-12);
}

TEST(GoldenSection, HandlesReversedBounds) {
  const auto f = [](double x) { return std::fabs(x + 2.0); };
  const GoldenResult r = golden_section(f, 3.0, -5.0);
  EXPECT_NEAR(r.x, -2.0, 1e-6);
}

TEST(GoldenSection, MinimumAtBoundary) {
  const auto f = [](double x) { return x; };
  const GoldenResult r = golden_section(f, 0.0, 1.0);
  EXPECT_NEAR(r.x, 0.0, 1e-6);
}

TEST(GoldenSection, NonSmoothUnimodal) {
  const auto f = [](double x) { return std::fabs(x - 0.3) + 1.0; };
  const GoldenResult r = golden_section(f, -1.0, 1.0);
  EXPECT_NEAR(r.x, 0.3, 1e-6);
}

TEST(ScanThenGolden, FindsGlobalMinimumAmongSeveral) {
  // Two basins: local at x ~ 2 (depth 1), global at x ~ -1.5 (depth 2).
  const auto f = [](double x) {
    return -2.0 * std::exp(-(x + 1.5) * (x + 1.5)) -
           1.0 * std::exp(-(x - 2.0) * (x - 2.0) / 0.25);
  };
  const GoldenResult r = scan_then_golden(f, -5.0, 5.0, 256);
  EXPECT_NEAR(r.x, -1.5, 1e-3);
}

TEST(ScanThenGolden, WShapedCurveGlobalTrough) {
  // Mimics a W-shaped resilience curve: second dip is deeper.
  const auto f = [](double x) {
    return 1.0 - 0.4 * std::exp(-(x - 1.0) * (x - 1.0) * 4.0) -
           0.6 * std::exp(-(x - 3.0) * (x - 3.0) * 4.0);
  };
  const GoldenResult r = scan_then_golden(f, 0.0, 5.0, 512);
  EXPECT_NEAR(r.x, 3.0, 1e-2);
}

TEST(ScanThenGolden, RejectsTooFewSamples) {
  EXPECT_THROW(scan_then_golden([](double x) { return x * x; }, 0.0, 1.0, 2),
               std::invalid_argument);
}

}  // namespace
}  // namespace prm::opt
