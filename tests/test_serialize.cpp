#include "core/serialize.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <sstream>

#include "core/bathtub.hpp"
#include "core/model.hpp"
#include "core/validation.hpp"
#include "data/recessions.hpp"
#include "live/monitor.hpp"

namespace prm::core {
namespace {

FitResult sample_fit() {
  const auto& ds = data::recession("1990-93");
  return fit_model("competing-risks", ds.series, ds.holdout);
}

TEST(Serialize, RoundTripPreservesEverything) {
  const FitResult original = sample_fit();
  std::stringstream ss;
  save_fit(ss, original);
  const FitResult loaded = load_fit(ss);

  EXPECT_EQ(loaded.model().name(), original.model().name());
  EXPECT_EQ(loaded.holdout(), original.holdout());
  EXPECT_EQ(loaded.parameters(), original.parameters());
  EXPECT_EQ(loaded.series().name(), original.series().name());
  ASSERT_EQ(loaded.series().size(), original.series().size());
  for (std::size_t i = 0; i < loaded.series().size(); ++i) {
    EXPECT_DOUBLE_EQ(loaded.series().value(i), original.series().value(i));
    EXPECT_DOUBLE_EQ(loaded.series().time(i), original.series().time(i));
  }
  EXPECT_DOUBLE_EQ(loaded.sse, original.sse);
  EXPECT_EQ(loaded.stop_reason, original.stop_reason);
  // The loaded fit must evaluate identically.
  for (double t : {0.0, 10.5, 47.0}) {
    EXPECT_DOUBLE_EQ(loaded.evaluate(t), original.evaluate(t));
  }
}

TEST(Serialize, FileRoundTrip) {
  const std::string path = std::filesystem::temp_directory_path() / "prm_fit_test.txt";
  const FitResult original = sample_fit();
  save_fit_file(path, original);
  const FitResult loaded = load_fit_file(path);
  EXPECT_EQ(loaded.parameters(), original.parameters());
  std::remove(path.c_str());
}

TEST(Serialize, ParametersSurviveAtFullPrecision) {
  const FitResult original = sample_fit();
  std::stringstream ss;
  save_fit(ss, original);
  const FitResult loaded = load_fit(ss);
  for (std::size_t i = 0; i < original.parameters().size(); ++i) {
    EXPECT_EQ(loaded.parameters()[i], original.parameters()[i]) << "bit-exact expected";
  }
}

TEST(Serialize, RejectsUnknownModelOnLoad) {
  const FitResult original = sample_fit();
  std::stringstream ss;
  save_fit(ss, original);
  std::string text = ss.str();
  const auto pos = text.find("competing-risks");
  text.replace(pos, std::string("competing-risks").size(), "not-registered1");
  std::stringstream bad(text);
  EXPECT_THROW(load_fit(bad), std::runtime_error);
}

TEST(Serialize, RejectsMalformedInput) {
  std::stringstream empty;
  EXPECT_THROW(load_fit(empty), std::runtime_error);

  std::stringstream wrong_magic("not-a-fit 1\n");
  EXPECT_THROW(load_fit(wrong_magic), std::runtime_error);

  std::stringstream bad_version("prm-fit 99\nmodel quadratic\n");
  EXPECT_THROW(load_fit(bad_version), std::runtime_error);

  const FitResult original = sample_fit();
  std::stringstream ss;
  save_fit(ss, original);
  std::string text = ss.str();
  std::stringstream truncated(text.substr(0, text.size() / 2));
  EXPECT_THROW(load_fit(truncated), std::runtime_error);
}

TEST(Serialize, RejectsParameterCountMismatch) {
  const FitResult original = sample_fit();
  std::stringstream ss;
  save_fit(ss, original);
  std::string text = ss.str();
  // competing-risks has 3 params; claim 2 and drop one value.
  const auto pos = text.find("parameters 3 ");
  ASSERT_NE(pos, std::string::npos);
  // Replace the count and remove the last parameter on that line.
  const auto line_end = text.find('\n', pos);
  std::string line = text.substr(pos, line_end - pos);
  const auto last_space = line.find_last_of(' ');
  line = line.substr(0, last_space);
  line.replace(line.find("parameters 3"), 12, "parameters 2");
  text.replace(pos, line_end - pos, line);
  std::stringstream bad(text);
  EXPECT_THROW(load_fit(bad), std::runtime_error);
}

TEST(Serialize, UnregisteredModelCannotBeSaved) {
  // A model object whose name is not in the registry must be rejected at
  // save time (loading could never reconstruct it).
  class Anonymous final : public ResilienceModel {
   public:
    std::string name() const override { return "anonymous-model"; }
    std::string description() const override { return inner_.description(); }
    std::size_t num_parameters() const override { return inner_.num_parameters(); }
    std::vector<std::string> parameter_names() const override {
      return inner_.parameter_names();
    }
    std::vector<opt::Bound> parameter_bounds() const override {
      return inner_.parameter_bounds();
    }
    double evaluate(double t, const num::Vector& p) const override {
      return inner_.evaluate(t, p);
    }
    std::vector<num::Vector> initial_guesses(
        const data::PerformanceSeries& fit) const override {
      return inner_.initial_guesses(fit);
    }
    std::pair<num::Vector, num::Vector> search_box(
        const data::PerformanceSeries& fit) const override {
      return inner_.search_box(fit);
    }
    std::unique_ptr<ResilienceModel> clone() const override {
      return std::make_unique<Anonymous>(*this);
    }

   private:
    QuadraticBathtubModel inner_;
  };
  const data::PerformanceSeries s("x", {1.0, 0.98, 0.97, 0.98, 1.0, 1.01});
  FitResult fit(std::make_shared<Anonymous>(), {1.0, -0.01, 0.001}, s, 1);
  std::stringstream ss;
  EXPECT_THROW(save_fit(ss, fit), std::invalid_argument);
}

/// A synthetic but bound-respecting parameter vector for any model: each
/// component is placed strictly inside its bound with an index-dependent
/// offset so no two components collide and full %.17g precision is needed.
num::Vector synthetic_params(const ResilienceModel& model) {
  const auto bounds = model.parameter_bounds();
  num::Vector p(bounds.size());
  for (std::size_t i = 0; i < bounds.size(); ++i) {
    const double wiggle = 0.01 * static_cast<double>(i) + 1.0 / 3.0;
    switch (bounds[i].kind) {
      case opt::BoundKind::kFree:
        p[i] = wiggle - 0.5;
        break;
      case opt::BoundKind::kPositive:
        p[i] = wiggle;
        break;
      case opt::BoundKind::kNegative:
        p[i] = -wiggle;
        break;
      case opt::BoundKind::kInterval:
        p[i] = bounds[i].lo + (bounds[i].hi - bounds[i].lo) * (0.25 + 0.01 * i);
        break;
    }
  }
  return p;
}

TEST(Serialize, EveryRegisteredModelRoundTripsBitExact) {
  // Satellite of the nn PR: every family in the registry -- bathtub,
  // segmented, mixture, neural -- must survive save_fit/load_fit with
  // bit-identical parameters and evaluations.
  const data::PerformanceSeries series(
      "synthetic", {0.0, 1.0, 2.0, 3.0, 4.0, 5.0},
      {1.0, 0.97, 0.95, 0.96, 0.99, 1.01});
  for (const std::string& name : ModelRegistry::instance().names()) {
    SCOPED_TRACE(name);
    std::shared_ptr<const ResilienceModel> model =
        ModelRegistry::instance().create(name);
    const num::Vector params = synthetic_params(*model);
    FitResult original(model, params, series, 1);
    // The direct constructor leaves sse at +inf (never fitted); the text
    // format round-trips finite doubles, so stamp the real residual.
    original.sse = 0.0;
    for (std::size_t i = 0; i + 1 < series.size(); ++i) {
      const double r = original.evaluate(series.time(i)) - series.value(i);
      original.sse += r * r;
    }
    original.stop_reason = opt::StopReason::kConverged;

    std::stringstream ss;
    save_fit(ss, original);
    const FitResult loaded = load_fit(ss);

    EXPECT_EQ(loaded.model().name(), name);
    ASSERT_EQ(loaded.parameters().size(), params.size());
    for (std::size_t i = 0; i < params.size(); ++i) {
      EXPECT_EQ(loaded.parameters()[i], params[i]) << "param " << i;
    }
    for (double t : {0.0, 2.5, 5.0}) {
      EXPECT_EQ(loaded.evaluate(t), original.evaluate(t)) << "t=" << t;
    }
  }
}

TEST(Serialize, MonitorSnapshotsAreByteStableForEveryModelFamily) {
  // Monitor::save -> load -> save must be byte-identical for one
  // representative model of every registered family, including the neural
  // ones whose parameters are raw trained weights.
  auto v_curve = [](double t) {
    auto smoothstep = [](double x) {
      if (x <= 0.0) return 0.0;
      if (x >= 1.0) return 1.0;
      return x * x * (3.0 - 2.0 * x);
    };
    const double u = t - 16.0;
    if (u <= 0.0) return 1.0;
    if (u <= 10.0) return 1.0 - 0.10 * smoothstep(u / 10.0);
    return 0.90 + 0.12 * smoothstep((u - 10.0) / 30.0);
  };

  // First registered representative of each family.
  std::vector<std::string> representatives;
  std::vector<std::string> seen_families;
  for (const std::string& name : ModelRegistry::instance().names()) {
    const std::string family = model_family(name);
    bool seen = false;
    for (const std::string& f : seen_families) seen = seen || f == family;
    if (seen) continue;
    seen_families.push_back(family);
    representatives.push_back(name);
  }
  ASSERT_GE(representatives.size(), 4u);  // bathtub, segmented, mixture, neural

  for (const std::string& name : representatives) {
    SCOPED_TRACE(name);
    live::MonitorOptions options;
    options.model = name;
    options.refit_every = 8;
    options.threads = 1;
    options.stream.window_capacity = 64;
    options.stream.cusum.baseline = 12;
    options.stream.confirm_samples = 3;

    live::Monitor original(options);
    for (std::size_t i = 0; i < 60; ++i) {
      const double t = static_cast<double>(i);
      original.ingest("svc", t, v_curve(t));
      original.drain();
    }
    EXPECT_TRUE(original.snapshot("svc").has_fit) << name;

    std::stringstream first;
    original.save(first);
    std::istringstream in(first.str());
    const auto loaded = live::Monitor::load(in, options);
    ASSERT_NE(loaded, nullptr);
    std::ostringstream second;
    loaded->save(second);
    EXPECT_EQ(second.str(), first.str());
  }
}

TEST(Serialize, LoadedFitSupportsDownstreamAnalysis) {
  const FitResult original = sample_fit();
  std::stringstream ss;
  save_fit(ss, original);
  const FitResult loaded = load_fit(ss);
  // Full downstream pipeline runs on the loaded object.
  const auto v = validate(loaded);
  EXPECT_NEAR(v.sse, loaded.sse, 1e-9);
  EXPECT_EQ(v.predictions.size(), loaded.series().size());
}

}  // namespace
}  // namespace prm::core
