#include "core/serialize.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <sstream>

#include "core/bathtub.hpp"
#include "core/validation.hpp"
#include "data/recessions.hpp"

namespace prm::core {
namespace {

FitResult sample_fit() {
  const auto& ds = data::recession("1990-93");
  return fit_model("competing-risks", ds.series, ds.holdout);
}

TEST(Serialize, RoundTripPreservesEverything) {
  const FitResult original = sample_fit();
  std::stringstream ss;
  save_fit(ss, original);
  const FitResult loaded = load_fit(ss);

  EXPECT_EQ(loaded.model().name(), original.model().name());
  EXPECT_EQ(loaded.holdout(), original.holdout());
  EXPECT_EQ(loaded.parameters(), original.parameters());
  EXPECT_EQ(loaded.series().name(), original.series().name());
  ASSERT_EQ(loaded.series().size(), original.series().size());
  for (std::size_t i = 0; i < loaded.series().size(); ++i) {
    EXPECT_DOUBLE_EQ(loaded.series().value(i), original.series().value(i));
    EXPECT_DOUBLE_EQ(loaded.series().time(i), original.series().time(i));
  }
  EXPECT_DOUBLE_EQ(loaded.sse, original.sse);
  EXPECT_EQ(loaded.stop_reason, original.stop_reason);
  // The loaded fit must evaluate identically.
  for (double t : {0.0, 10.5, 47.0}) {
    EXPECT_DOUBLE_EQ(loaded.evaluate(t), original.evaluate(t));
  }
}

TEST(Serialize, FileRoundTrip) {
  const std::string path = std::filesystem::temp_directory_path() / "prm_fit_test.txt";
  const FitResult original = sample_fit();
  save_fit_file(path, original);
  const FitResult loaded = load_fit_file(path);
  EXPECT_EQ(loaded.parameters(), original.parameters());
  std::remove(path.c_str());
}

TEST(Serialize, ParametersSurviveAtFullPrecision) {
  const FitResult original = sample_fit();
  std::stringstream ss;
  save_fit(ss, original);
  const FitResult loaded = load_fit(ss);
  for (std::size_t i = 0; i < original.parameters().size(); ++i) {
    EXPECT_EQ(loaded.parameters()[i], original.parameters()[i]) << "bit-exact expected";
  }
}

TEST(Serialize, RejectsUnknownModelOnLoad) {
  const FitResult original = sample_fit();
  std::stringstream ss;
  save_fit(ss, original);
  std::string text = ss.str();
  const auto pos = text.find("competing-risks");
  text.replace(pos, std::string("competing-risks").size(), "not-registered1");
  std::stringstream bad(text);
  EXPECT_THROW(load_fit(bad), std::runtime_error);
}

TEST(Serialize, RejectsMalformedInput) {
  std::stringstream empty;
  EXPECT_THROW(load_fit(empty), std::runtime_error);

  std::stringstream wrong_magic("not-a-fit 1\n");
  EXPECT_THROW(load_fit(wrong_magic), std::runtime_error);

  std::stringstream bad_version("prm-fit 99\nmodel quadratic\n");
  EXPECT_THROW(load_fit(bad_version), std::runtime_error);

  const FitResult original = sample_fit();
  std::stringstream ss;
  save_fit(ss, original);
  std::string text = ss.str();
  std::stringstream truncated(text.substr(0, text.size() / 2));
  EXPECT_THROW(load_fit(truncated), std::runtime_error);
}

TEST(Serialize, RejectsParameterCountMismatch) {
  const FitResult original = sample_fit();
  std::stringstream ss;
  save_fit(ss, original);
  std::string text = ss.str();
  // competing-risks has 3 params; claim 2 and drop one value.
  const auto pos = text.find("parameters 3 ");
  ASSERT_NE(pos, std::string::npos);
  // Replace the count and remove the last parameter on that line.
  const auto line_end = text.find('\n', pos);
  std::string line = text.substr(pos, line_end - pos);
  const auto last_space = line.find_last_of(' ');
  line = line.substr(0, last_space);
  line.replace(line.find("parameters 3"), 12, "parameters 2");
  text.replace(pos, line_end - pos, line);
  std::stringstream bad(text);
  EXPECT_THROW(load_fit(bad), std::runtime_error);
}

TEST(Serialize, UnregisteredModelCannotBeSaved) {
  // A model object whose name is not in the registry must be rejected at
  // save time (loading could never reconstruct it).
  class Anonymous final : public ResilienceModel {
   public:
    std::string name() const override { return "anonymous-model"; }
    std::string description() const override { return inner_.description(); }
    std::size_t num_parameters() const override { return inner_.num_parameters(); }
    std::vector<std::string> parameter_names() const override {
      return inner_.parameter_names();
    }
    std::vector<opt::Bound> parameter_bounds() const override {
      return inner_.parameter_bounds();
    }
    double evaluate(double t, const num::Vector& p) const override {
      return inner_.evaluate(t, p);
    }
    std::vector<num::Vector> initial_guesses(
        const data::PerformanceSeries& fit) const override {
      return inner_.initial_guesses(fit);
    }
    std::pair<num::Vector, num::Vector> search_box(
        const data::PerformanceSeries& fit) const override {
      return inner_.search_box(fit);
    }
    std::unique_ptr<ResilienceModel> clone() const override {
      return std::make_unique<Anonymous>(*this);
    }

   private:
    QuadraticBathtubModel inner_;
  };
  const data::PerformanceSeries s("x", {1.0, 0.98, 0.97, 0.98, 1.0, 1.01});
  FitResult fit(std::make_shared<Anonymous>(), {1.0, -0.01, 0.001}, s, 1);
  std::stringstream ss;
  EXPECT_THROW(save_fit(ss, fit), std::invalid_argument);
}

TEST(Serialize, LoadedFitSupportsDownstreamAnalysis) {
  const FitResult original = sample_fit();
  std::stringstream ss;
  save_fit(ss, original);
  const FitResult loaded = load_fit(ss);
  // Full downstream pipeline runs on the loaded object.
  const auto v = validate(loaded);
  EXPECT_NEAR(v.sse, loaded.sse, 1e-9);
  EXPECT_EQ(v.predictions.size(), loaded.series().size());
}

}  // namespace
}  // namespace prm::core
