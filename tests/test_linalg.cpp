#include "numerics/linalg.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace prm::num {
namespace {

Matrix spd3() {
  // A = B^T B + I for B full rank -> SPD.
  return Matrix{{4.0, 1.0, 0.5}, {1.0, 3.0, 0.25}, {0.5, 0.25, 2.0}};
}

TEST(Cholesky, FactorsAndSolvesSpdSystem) {
  const Matrix a = spd3();
  const Vector x_true{1.0, -2.0, 3.0};
  const Vector b = a * x_true;
  const auto x = solve_spd(a, b);
  ASSERT_TRUE(x.has_value());
  for (std::size_t i = 0; i < 3; ++i) EXPECT_NEAR((*x)[i], x_true[i], 1e-12);
}

TEST(Cholesky, FactorReconstructsMatrix) {
  const Matrix a = spd3();
  const CholeskyResult f = cholesky(a);
  ASSERT_TRUE(f.ok);
  const Matrix recon = f.l * f.l.transposed();
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 3; ++c) EXPECT_NEAR(recon(r, c), a(r, c), 1e-12);
  }
}

TEST(Cholesky, RejectsIndefiniteMatrix) {
  const Matrix a{{1.0, 2.0}, {2.0, 1.0}};  // eigenvalues 3, -1
  EXPECT_FALSE(cholesky(a).ok);
  EXPECT_FALSE(solve_spd(a, {1.0, 1.0}).has_value());
}

TEST(Cholesky, RejectsNonSquare) {
  EXPECT_THROW(cholesky(Matrix(2, 3)), std::invalid_argument);
}

TEST(Qr, SolvesOverdeterminedLeastSquaresExactly) {
  // Fit y = 2 + 3t on an exact line: residual zero, coefficients exact.
  Matrix a(5, 2);
  Vector b(5);
  for (int i = 0; i < 5; ++i) {
    a(i, 0) = 1.0;
    a(i, 1) = i;
    b[i] = 2.0 + 3.0 * i;
  }
  const auto x = qr_solve(a, b);
  ASSERT_TRUE(x.has_value());
  EXPECT_NEAR((*x)[0], 2.0, 1e-12);
  EXPECT_NEAR((*x)[1], 3.0, 1e-12);
}

TEST(Qr, MatchesNormalEquationsOnNoisyData) {
  Matrix a(6, 2);
  Vector b{1.1, 1.9, 3.2, 3.8, 5.1, 5.9};
  for (int i = 0; i < 6; ++i) {
    a(i, 0) = 1.0;
    a(i, 1) = i;
  }
  const auto x_qr = qr_solve(a, b);
  const auto x_ne = solve_spd(gram(a), at_times(a, b));
  ASSERT_TRUE(x_qr.has_value());
  ASSERT_TRUE(x_ne.has_value());
  EXPECT_NEAR((*x_qr)[0], (*x_ne)[0], 1e-10);
  EXPECT_NEAR((*x_qr)[1], (*x_ne)[1], 1e-10);
}

TEST(Qr, DetectsRankDeficiency) {
  Matrix a(4, 2);
  for (int i = 0; i < 4; ++i) {
    a(i, 0) = 1.0;
    a(i, 1) = 2.0;  // second column is a multiple of the first
  }
  EXPECT_FALSE(qr_solve(a, {1.0, 2.0, 3.0, 4.0}).has_value());
}

TEST(Qr, RejectsUnderdetermined) {
  EXPECT_THROW(qr_decompose(Matrix(2, 3)), std::invalid_argument);
}

TEST(Lu, SolvesGeneralSquareSystem) {
  const Matrix a{{0.0, 2.0, 1.0}, {1.0, -2.0, -3.0}, {-1.0, 1.0, 2.0}};
  const Vector x_true{2.0, -1.0, 3.0};
  const auto x = solve(a, a * x_true);
  ASSERT_TRUE(x.has_value());
  for (std::size_t i = 0; i < 3; ++i) EXPECT_NEAR((*x)[i], x_true[i], 1e-12);
}

TEST(Lu, DetectsSingular) {
  const Matrix a{{1.0, 2.0}, {2.0, 4.0}};
  EXPECT_FALSE(solve(a, {1.0, 1.0}).has_value());
  EXPECT_FALSE(inverse(a).has_value());
  EXPECT_DOUBLE_EQ(determinant(a), 0.0);
}

TEST(Lu, Determinant) {
  const Matrix a{{2.0, 0.0}, {1.0, 3.0}};
  EXPECT_NEAR(determinant(a), 6.0, 1e-14);
  // Pivoting flips sign consistently.
  const Matrix b{{0.0, 1.0}, {1.0, 0.0}};
  EXPECT_NEAR(determinant(b), -1.0, 1e-14);
}

TEST(Lu, InverseRoundTrip) {
  const Matrix a{{3.0, 1.0}, {2.0, 5.0}};
  const auto inv = inverse(a);
  ASSERT_TRUE(inv.has_value());
  const Matrix prod = a * *inv;
  EXPECT_NEAR(prod(0, 0), 1.0, 1e-13);
  EXPECT_NEAR(prod(0, 1), 0.0, 1e-13);
  EXPECT_NEAR(prod(1, 0), 0.0, 1e-13);
  EXPECT_NEAR(prod(1, 1), 1.0, 1e-13);
}

TEST(Condition, IdentityIsOne) {
  EXPECT_NEAR(condition_1norm(Matrix::identity(4)), 1.0, 1e-12);
}

TEST(Condition, SingularIsInfinite) {
  const Matrix a{{1.0, 2.0}, {2.0, 4.0}};
  EXPECT_TRUE(std::isinf(condition_1norm(a)));
}

TEST(Condition, IllConditionedIsLarge) {
  const Matrix a{{1.0, 1.0}, {1.0, 1.0 + 1e-10}};
  EXPECT_GT(condition_1norm(a), 1e9);
}

}  // namespace
}  // namespace prm::num
