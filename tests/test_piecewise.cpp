#include "core/piecewise.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/bathtub.hpp"

namespace prm::core {
namespace {

PiecewiseResilienceCurve make_curve(double nominal = 0.8, double t_h = 10.0,
                                    double t_r = 62.0) {
  auto model = std::make_shared<QuadraticBathtubModel>();
  // Inner model: P(0) = 1, trough at 20, recovery beyond.
  return PiecewiseResilienceCurve(model, {1.0, -0.04, 0.001}, t_h, t_r, nominal);
}

TEST(Piecewise, NominalBeforeHazard) {
  const auto c = make_curve();
  EXPECT_DOUBLE_EQ(c.evaluate(0.0), 0.8);
  EXPECT_DOUBLE_EQ(c.evaluate(9.999), 0.8);
}

TEST(Piecewise, ContinuousAtHazardTime) {
  const auto c = make_curve();
  EXPECT_NEAR(c.evaluate(10.0), 0.8, 1e-12);  // c * model(0) = nominal
  EXPECT_NEAR(c.evaluate(10.0 + 1e-9), 0.8, 1e-6);
}

TEST(Piecewise, ContinuityConstantScalesModel) {
  const auto c = make_curve(0.8);
  EXPECT_NEAR(c.continuity_constant(), 0.8, 1e-12);  // model(0) = 1
  // Transient value = c * model(t - t_h).
  const QuadraticBathtubModel m;
  const num::Vector p{1.0, -0.04, 0.001};
  EXPECT_NEAR(c.evaluate(25.0), 0.8 * m.evaluate(15.0, p), 1e-12);
}

TEST(Piecewise, SteadyStateAfterRecovery) {
  const auto c = make_curve(0.8, 10.0, 62.0);
  const double ss = c.steady_state();
  EXPECT_DOUBLE_EQ(c.evaluate(62.0), ss);
  EXPECT_DOUBLE_EQ(c.evaluate(500.0), ss);
  // This parameterization recovers ABOVE nominal (improved performance,
  // the dashed outcome of the paper's Figure 1).
  EXPECT_GT(ss, 0.8);
}

TEST(Piecewise, DegradedOutcomePossible) {
  auto model = std::make_shared<QuadraticBathtubModel>();
  // Stop recovery early: t_r at the trough -> steady state below nominal.
  const PiecewiseResilienceCurve c(model, {1.0, -0.04, 0.001}, 0.0, 20.0, 1.0);
  EXPECT_LT(c.steady_state(), 1.0);
}

TEST(Piecewise, SampleProducesUniformGrid) {
  const auto c = make_curve();
  const auto s = c.sample(0.0, 60.0, 61, "curve");
  ASSERT_EQ(s.size(), 61u);
  EXPECT_DOUBLE_EQ(s.time(0), 0.0);
  EXPECT_DOUBLE_EQ(s.time(60), 60.0);
  EXPECT_DOUBLE_EQ(s.value(0), 0.8);
  EXPECT_EQ(s.name(), "curve");
  EXPECT_THROW(c.sample(0.0, 1.0, 1), std::invalid_argument);
  EXPECT_THROW(c.sample(5.0, 5.0, 10), std::invalid_argument);
}

TEST(Piecewise, ConstructorValidation) {
  auto model = std::make_shared<QuadraticBathtubModel>();
  const num::Vector p{1.0, -0.04, 0.001};
  EXPECT_THROW(PiecewiseResilienceCurve(nullptr, p, 0.0, 1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(PiecewiseResilienceCurve(model, p, 5.0, 5.0, 1.0), std::invalid_argument);
  EXPECT_THROW(PiecewiseResilienceCurve(model, p, 0.0, 1.0, 0.0), std::invalid_argument);
  // Model value 0 at t = 0 makes the continuity constant undefined.
  EXPECT_THROW(PiecewiseResilienceCurve(model, {0.0, -0.04, 0.001}, 0.0, 1.0, 1.0),
               std::domain_error);
}

TEST(Piecewise, TroughOfTransientVisibleInSamples) {
  const auto c = make_curve(1.0, 0.0, 60.0);
  const auto s = c.sample(0.0, 60.0, 121);
  // Inner trough at t = 20.
  EXPECT_NEAR(s.trough_time(), 20.0, 1.0);
}

}  // namespace
}  // namespace prm::core
