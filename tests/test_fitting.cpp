#include "core/fitting.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "core/bathtub.hpp"
#include "core/mixture.hpp"
#include "data/recessions.hpp"

namespace prm::core {
namespace {

// Synthetic data generated exactly from a model must be recovered with
// near-zero SSE.
data::PerformanceSeries exact_quadratic_series(std::size_t n) {
  const QuadraticBathtubModel m;
  const num::Vector truth{1.0, -0.03, 0.0006};
  std::vector<double> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = m.evaluate(static_cast<double>(i), truth);
  return data::PerformanceSeries("exact-quad", std::move(v));
}

TEST(FitModel, RecoversExactQuadraticData) {
  const QuadraticBathtubModel m;
  const FitResult fit = fit_model(m, exact_quadratic_series(40), 4);
  EXPECT_TRUE(fit.success());
  EXPECT_LT(fit.sse, 1e-12);
  EXPECT_NEAR(fit.parameters()[0], 1.0, 1e-4);
  EXPECT_NEAR(fit.parameters()[1], -0.03, 1e-4);
  EXPECT_NEAR(fit.parameters()[2], 0.0006, 1e-5);
}

TEST(FitModel, RecoversExactCompetingRisksData) {
  const CompetingRisksModel m;
  const num::Vector truth{1.0, 0.2, 0.0008};
  std::vector<double> v(40);
  for (std::size_t i = 0; i < 40; ++i) v[i] = m.evaluate(static_cast<double>(i), truth);
  const FitResult fit = fit_model(m, data::PerformanceSeries("exact-cr", std::move(v)), 4);
  EXPECT_TRUE(fit.success());
  EXPECT_LT(fit.sse, 1e-10);
  EXPECT_NEAR(fit.parameters()[0], truth[0], 1e-3);
  EXPECT_NEAR(fit.parameters()[1], truth[1], 1e-2);
  EXPECT_NEAR(fit.parameters()[2], truth[2], 1e-4);
}

TEST(FitModel, RecoversExactMixtureData) {
  const MixtureModel m({Family::kWeibull, Family::kExponential, RecoveryTrend::kLogarithmic});
  const num::Vector truth{14.0, 2.2, 0.05, 0.28};
  std::vector<double> v(48);
  for (std::size_t i = 0; i < 48; ++i) v[i] = m.evaluate(static_cast<double>(i), truth);
  const FitResult fit = fit_model(m, data::PerformanceSeries("exact-mix", std::move(v)), 5);
  EXPECT_TRUE(fit.success());
  EXPECT_LT(fit.sse, 1e-8);
}

TEST(FitModel, ParametersRespectBounds) {
  // Fit all registry models to a real dataset; every parameter must satisfy
  // its declared bound.
  const auto& ds = data::recession("1990-93");
  for (const std::string& name : ModelRegistry::instance().names()) {
    const ModelPtr model = ModelRegistry::instance().create(name);
    const FitResult fit = fit_model(*model, ds.series, ds.holdout);
    const auto bounds = model->parameter_bounds();
    for (std::size_t i = 0; i < bounds.size(); ++i) {
      switch (bounds[i].kind) {
        case opt::BoundKind::kPositive:
          EXPECT_GT(fit.parameters()[i], 0.0) << name << " param " << i;
          break;
        case opt::BoundKind::kNegative:
          EXPECT_LT(fit.parameters()[i], 0.0) << name << " param " << i;
          break;
        default:
          break;
      }
    }
  }
}

TEST(FitModel, HoldoutWindowExcludedFromFit) {
  // Corrupt the holdout window: the fitted parameters must not change.
  const auto base = exact_quadratic_series(40);
  std::vector<double> corrupted(base.values().begin(), base.values().end());
  for (std::size_t i = 36; i < 40; ++i) corrupted[i] += 10.0;
  const QuadraticBathtubModel m;
  const FitResult clean = fit_model(m, base, 4);
  const FitResult dirty =
      fit_model(m, data::PerformanceSeries("corrupt", std::move(corrupted)), 4);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(clean.parameters()[i], dirty.parameters()[i], 1e-6);
  }
}

TEST(FitModel, ByNameMatchesByInstance) {
  const auto& ds = data::recession("1981-83");
  const FitResult by_name = fit_model("quadratic", ds.series, ds.holdout);
  const QuadraticBathtubModel m;
  const FitResult by_inst = fit_model(m, ds.series, ds.holdout);
  EXPECT_NEAR(by_name.sse, by_inst.sse, 1e-12);
}

TEST(FitModel, DeterministicAcrossRuns) {
  const auto& ds = data::recession("2001-05");
  const FitResult a = fit_model("mix-wei-wei-log", ds.series, ds.holdout);
  const FitResult b = fit_model("mix-wei-wei-log", ds.series, ds.holdout);
  EXPECT_EQ(a.parameters(), b.parameters());
  EXPECT_DOUBLE_EQ(a.sse, b.sse);
}

TEST(FitModel, RejectsOversizedHoldout) {
  const auto s = exact_quadratic_series(10);
  const QuadraticBathtubModel m;
  EXPECT_THROW(fit_model(m, s, 10), std::invalid_argument);
  EXPECT_THROW(fit_model(m, s, 8), std::invalid_argument);  // 2 < 3 params + 1
}

TEST(FitResult, WindowsAndPredictions) {
  const auto s = exact_quadratic_series(20);
  const QuadraticBathtubModel m;
  const FitResult fit = fit_model(m, s, 5);
  EXPECT_EQ(fit.fit_count(), 15u);
  EXPECT_EQ(fit.fit_window().size(), 15u);
  EXPECT_EQ(fit.holdout_window().size(), 5u);
  EXPECT_EQ(fit.predictions().size(), 20u);
  EXPECT_EQ(fit.fit_predictions().size(), 15u);
  EXPECT_EQ(fit.holdout_predictions().size(), 5u);
  // Consistency: predictions() splits into the two windows.
  const auto all = fit.predictions();
  const auto tail = fit.holdout_predictions();
  for (std::size_t i = 0; i < 5; ++i) EXPECT_DOUBLE_EQ(all[15 + i], tail[i]);
}

TEST(FitResult, ConstructorValidation) {
  const auto s = exact_quadratic_series(10);
  auto model = std::shared_ptr<const ResilienceModel>(new QuadraticBathtubModel());
  EXPECT_THROW(FitResult(nullptr, {1.0, -0.1, 0.1}, s, 2), std::invalid_argument);
  EXPECT_THROW(FitResult(model, {1.0}, s, 2), std::invalid_argument);
  EXPECT_THROW(FitResult(model, {1.0, -0.1, 0.1}, s, 10), std::invalid_argument);
}

TEST(FitModel, WeightsDownweightCorruptedSamples) {
  // Exact quadratic data with one gross outlier; zero-weighting that sample
  // must recover the clean parameters.
  const QuadraticBathtubModel m;
  const num::Vector truth{1.0, -0.03, 0.0006};
  std::vector<double> v(30);
  for (std::size_t i = 0; i < 30; ++i) v[i] = m.evaluate(static_cast<double>(i), truth);
  v[12] += 0.5;
  const data::PerformanceSeries corrupted("w", std::move(v));

  FitOptions weighted;
  weighted.weights.assign(27, 1.0);  // fit window = 30 - 3
  weighted.weights[12] = 0.0;
  const FitResult clean_fit = fit_model(m, corrupted, 3, weighted);
  EXPECT_NEAR(clean_fit.parameters()[0], truth[0], 1e-6);
  EXPECT_NEAR(clean_fit.parameters()[1], truth[1], 1e-6);
  EXPECT_NEAR(clean_fit.parameters()[2], truth[2], 1e-7);

  // Unweighted fit is pulled by the outlier.
  const FitResult pulled = fit_model(m, corrupted, 3);
  EXPECT_GT(std::fabs(pulled.parameters()[0] - truth[0]), 1e-3);
}

TEST(FitModel, UniformWeightsMatchUnweighted) {
  const auto& ds = data::recession("1990-93");
  FitOptions uniform;
  uniform.weights.assign(ds.series.size() - ds.holdout, 2.5);  // any constant
  const FitResult a = fit_model("quadratic", ds.series, ds.holdout, uniform);
  const FitResult b = fit_model("quadratic", ds.series, ds.holdout);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(a.parameters()[i], b.parameters()[i], 1e-6 * std::fabs(b.parameters()[i]));
  }
}

TEST(FitModel, WeightValidation) {
  const auto& ds = data::recession("1990-93");
  FitOptions wrong_size;
  wrong_size.weights.assign(10, 1.0);
  EXPECT_THROW(fit_model("quadratic", ds.series, ds.holdout, wrong_size),
               std::invalid_argument);
  FitOptions negative;
  negative.weights.assign(ds.series.size() - ds.holdout, 1.0);
  negative.weights[0] = -1.0;
  EXPECT_THROW(fit_model("quadratic", ds.series, ds.holdout, negative),
               std::invalid_argument);
}

TEST(FitModel, WarmStartRefitMatchesColdFitAtAFractionOfTheWork) {
  // Cold fit on the first 30 samples, then a warm refit on the full series
  // seeded from the cold parameters: the incremental path live::Monitor uses.
  const data::PerformanceSeries series = exact_quadratic_series(40);
  const FitResult cold = fit_model("quadratic", series.head(30), 0);
  ASSERT_TRUE(cold.success());

  FitOptions warm_opts;
  warm_opts.warm_start = cold.parameters();
  const FitResult warm = fit_model("quadratic", series, 0, warm_opts);
  EXPECT_TRUE(warm.success());
  EXPECT_LT(warm.sse, 1e-10);
  EXPECT_NEAR(warm.parameters()[0], 1.0, 1e-3);

  const FitResult cold_full = fit_model("quadratic", series, 0);
  EXPECT_LT(warm.starts_tried, cold_full.starts_tried);
  EXPECT_NEAR(warm.sse, cold_full.sse, 1e-8);
}

TEST(FitModel, WarmStartDimensionMismatchThrows) {
  FitOptions opts;
  opts.warm_start = num::Vector{1.0};  // quadratic has three parameters
  EXPECT_THROW(fit_model("quadratic", exact_quadratic_series(30), 0, opts),
               std::invalid_argument);
}

TEST(FitModel, WarmStartOutsideBoundsIsClippedNotFatal) {
  const data::PerformanceSeries series = exact_quadratic_series(30);
  const FitResult reference = fit_model("quadratic", series, 0);
  FitOptions opts;
  // Violate the declared bounds on purpose (e.g. a non-positive component
  // where the model demands positive): the fit must clip and proceed.
  opts.warm_start = reference.parameters();
  (*opts.warm_start)[0] = -5.0;
  opts.multistart.warm_sampled_starts = 4;  // safety net for the bad seed
  const FitResult fit = fit_model("quadratic", series, 0, opts);
  EXPECT_TRUE(fit.success());
}

TEST(FitModel, FuzzedSeriesNeverCrash) {
  // Random-walk garbage in, finite diagnostics (or clean failure) out.
  std::mt19937_64 rng(31337);
  std::uniform_real_distribution<double> step(-0.05, 0.05);
  for (int rep = 0; rep < 10; ++rep) {
    std::vector<double> v(20);
    v[0] = 1.0;
    for (std::size_t i = 1; i < 20; ++i) {
      v[i] = std::max(0.01, v[i - 1] + step(rng));
    }
    const data::PerformanceSeries garbage("fuzz", std::move(v));
    for (const char* name : {"quadratic", "competing-risks", "mix-wei-exp-log"}) {
      const FitResult fit = fit_model(name, garbage, 2);
      EXPECT_TRUE(std::isfinite(fit.sse) ||
                  fit.stop_reason == opt::StopReason::kNumericalFailure)
          << name << " rep " << rep;
    }
  }
}

TEST(FitModel, SseMatchesResidualsOfReturnedParameters) {
  const auto& ds = data::recession("1974-76");
  const FitResult fit = fit_model("competing-risks", ds.series, ds.holdout);
  const auto obs = fit.fit_window();
  double sse = 0.0;
  for (std::size_t i = 0; i < obs.size(); ++i) {
    const double e = obs.value(i) - fit.evaluate(obs.time(i));
    sse += e * e;
  }
  EXPECT_NEAR(fit.sse, sse, 1e-10 * std::max(1.0, sse));
}

}  // namespace
}  // namespace prm::core
