#include "stats/descriptive.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace prm::stats {
namespace {

const std::vector<double> kSample{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};

TEST(Descriptive, Mean) {
  EXPECT_DOUBLE_EQ(mean(kSample), 5.0);
  EXPECT_THROW(mean(std::vector<double>{}), std::invalid_argument);
}

TEST(Descriptive, VarianceUnbiased) {
  // Sum of squared deviations = 32; n-1 = 7.
  EXPECT_NEAR(variance(kSample), 32.0 / 7.0, 1e-14);
  EXPECT_THROW(variance(std::vector<double>{1.0}), std::invalid_argument);
}

TEST(Descriptive, Stddev) {
  EXPECT_NEAR(stddev(kSample), std::sqrt(32.0 / 7.0), 1e-14);
}

TEST(Descriptive, MinMaxArg) {
  EXPECT_DOUBLE_EQ(min(kSample), 2.0);
  EXPECT_DOUBLE_EQ(max(kSample), 9.0);
  EXPECT_EQ(argmin(kSample), 0u);
  EXPECT_EQ(argmax(kSample), 7u);
  // First occurrence on ties.
  const std::vector<double> ties{3.0, 1.0, 1.0, 5.0, 5.0};
  EXPECT_EQ(argmin(ties), 1u);
  EXPECT_EQ(argmax(ties), 3u);
}

TEST(Descriptive, MedianOddEven) {
  EXPECT_DOUBLE_EQ(median(std::vector<double>{3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(median(std::vector<double>{4.0, 1.0, 3.0, 2.0}), 2.5);
  EXPECT_DOUBLE_EQ(median(std::vector<double>{7.0}), 7.0);
}

TEST(Descriptive, CorrelationPerfectAndSign) {
  const std::vector<double> x{1.0, 2.0, 3.0, 4.0};
  const std::vector<double> y{2.0, 4.0, 6.0, 8.0};
  EXPECT_NEAR(correlation(x, y), 1.0, 1e-14);
  const std::vector<double> z{8.0, 6.0, 4.0, 2.0};
  EXPECT_NEAR(correlation(x, z), -1.0, 1e-14);
}

TEST(Descriptive, CorrelationErrors) {
  const std::vector<double> x{1.0, 2.0};
  EXPECT_THROW(correlation(x, std::vector<double>{1.0}), std::invalid_argument);
  EXPECT_THROW(correlation(std::vector<double>{1.0, 1.0}, x), std::domain_error);
}

TEST(Descriptive, TotalSumOfSquares) {
  EXPECT_NEAR(total_sum_of_squares(kSample), 32.0, 1e-14);
  EXPECT_DOUBLE_EQ(total_sum_of_squares(std::vector<double>{5.0}), 0.0);
}

}  // namespace
}  // namespace prm::stats
