#include "core/metrics.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/bathtub.hpp"
#include "core/mixture.hpp"
#include "data/recessions.hpp"

namespace prm::core {
namespace {

// A fit whose model reproduces the data EXACTLY, so actual == predicted for
// every metric and the hand-computed values are easy to verify.
FitResult exact_fit() {
  auto model = std::shared_ptr<const ResilienceModel>(new QuadraticBathtubModel());
  const num::Vector p{1.0, -0.2, 0.02};  // trough at t = 5, value 0.5
  const QuadraticBathtubModel qm;
  std::vector<double> v(13);
  for (std::size_t i = 0; i < 13; ++i) v[i] = qm.evaluate(static_cast<double>(i), p);
  FitResult fit(model, p, data::PerformanceSeries("exact", std::move(v)), 3);
  fit.sse = 0.0;
  fit.stop_reason = opt::StopReason::kConverged;
  return fit;
}

TEST(PredictiveMetrics, ExactModelHasZeroRelativeErrorEverywhere) {
  const auto metrics = predictive_metrics(exact_fit());
  ASSERT_EQ(metrics.size(), 8u);
  for (const MetricValue& m : metrics) {
    EXPECT_NEAR(m.actual, m.predicted, 1e-12) << to_string(m.kind);
    EXPECT_NEAR(m.relative_error, 0.0, 1e-10) << to_string(m.kind);
  }
}

TEST(PredictiveMetrics, PerformancePreservedIsWindowSum) {
  // Window = samples 10, 11, 12 of P(t) = 1 - 0.2t + 0.02t^2.
  const auto m = predictive_metric(exact_fit(), MetricKind::kPerformancePreserved);
  const auto p = [](double t) { return 1.0 - 0.2 * t + 0.02 * t * t; };
  EXPECT_NEAR(m.actual, p(10) + p(11) + p(12), 1e-12);
}

TEST(PredictiveMetrics, LostPlusPreservedEqualsNominalTimesDuration) {
  // Identity from Eqs. 14/16: lost = nominal * duration - preserved.
  const FitResult fit = exact_fit();
  const auto preserved = predictive_metric(fit, MetricKind::kPerformancePreserved);
  const auto lost = predictive_metric(fit, MetricKind::kPerformanceLost);
  const double nominal = fit.series().value(10);
  const double duration = fit.series().time(12) - fit.series().time(10);
  EXPECT_NEAR(lost.actual, nominal * duration - preserved.actual, 1e-12);
}

TEST(PredictiveMetrics, AveragesAreScaledSums) {
  const FitResult fit = exact_fit();
  const double duration = 2.0;
  const auto preserved = predictive_metric(fit, MetricKind::kPerformancePreserved);
  const auto avg = predictive_metric(fit, MetricKind::kAvgPreserved);
  EXPECT_NEAR(avg.actual, preserved.actual / duration, 1e-12);
  const auto lost = predictive_metric(fit, MetricKind::kPerformanceLost);
  const auto avg_lost = predictive_metric(fit, MetricKind::kAvgLost);
  EXPECT_NEAR(avg_lost.actual, lost.actual / duration, 1e-12);
}

TEST(PredictiveMetrics, NormalizedFormsDivideByNominal) {
  const FitResult fit = exact_fit();
  const double nominal = fit.series().value(10);
  const auto avg = predictive_metric(fit, MetricKind::kAvgPreserved);
  const auto norm = predictive_metric(fit, MetricKind::kNormalizedAvgPreserved);
  EXPECT_NEAR(norm.actual, avg.actual / nominal, 1e-12);
  // Identity: normalized preserved + normalized lost = 1 (Eqs. 15 + 17).
  const auto norm_lost = predictive_metric(fit, MetricKind::kNormalizedAvgLost);
  EXPECT_NEAR(norm.actual + norm_lost.actual, 1.0, 1e-12);
}

TEST(PredictiveMetrics, PreservedFromMinimumUsesTroughWindow) {
  // Trough at t = 5 (inside the fit window). Eq. 18 over [5, 12]:
  // sum P(t_i) dt - P(5) * (12 - 5).
  const FitResult fit = exact_fit();
  const auto m = predictive_metric(fit, MetricKind::kPreservedFromMinimum);
  const auto p = [](double t) { return 1.0 - 0.2 * t + 0.02 * t * t; };
  double sum = 0.0;
  for (int t = 5; t <= 12; ++t) sum += p(t);
  EXPECT_NEAR(m.actual, sum - p(5) * 7.0, 1e-12);
}

TEST(PredictiveMetrics, WeightedAverageInterpolatesBetweenPhases) {
  const FitResult fit = exact_fit();
  MetricOptions opts;
  opts.alpha_weight = 1.0 - 1e-9;  // all weight on the pre-trough phase
  const auto before = predictive_metric(fit, MetricKind::kWeightedAvgPreserved, opts);
  opts.alpha_weight = 1e-9;  // all weight on the post-trough phase
  const auto after = predictive_metric(fit, MetricKind::kWeightedAvgPreserved, opts);
  opts.alpha_weight = 0.5;
  const auto mid = predictive_metric(fit, MetricKind::kWeightedAvgPreserved, opts);
  EXPECT_NEAR(mid.actual, 0.5 * (before.actual + after.actual), 1e-6);
  // Pre-trough average of a declining curve is below nominal; post-trough
  // average of the recovering curve exceeds the trough value.
  EXPECT_LT(before.actual, 1.0);
  EXPECT_GT(after.actual, 0.5);
}

TEST(PredictiveMetrics, RequiresHoldout) {
  auto model = std::shared_ptr<const ResilienceModel>(new QuadraticBathtubModel());
  const num::Vector p{1.0, -0.2, 0.02};
  FitResult no_holdout(model, p, data::PerformanceSeries("x", {1.0, 0.9, 0.8, 0.9}), 0);
  EXPECT_THROW(predictive_metrics(no_holdout), std::invalid_argument);
}

TEST(PredictiveMetrics, ImperfectModelHasNonzeroError) {
  const auto& ds = data::recession("1990-93");
  const FitResult fit = fit_model("quadratic", ds.series, ds.holdout);
  const auto metrics = predictive_metrics(fit);
  // Well-fitting dataset: headline metrics within ~5%.
  for (const MetricValue& m : metrics) {
    if (m.kind == MetricKind::kNormalizedAvgLost ||
        m.kind == MetricKind::kPreservedFromMinimum) {
      continue;  // near-zero denominators / trough-sensitive
    }
    EXPECT_LT(m.relative_error, 0.05) << to_string(m.kind);
    EXPECT_GT(m.relative_error, 0.0) << to_string(m.kind);
  }
}

TEST(PredictiveMetrics, AllEightKindsPresentOnce) {
  const auto metrics = predictive_metrics(exact_fit());
  ASSERT_EQ(metrics.size(), kAllMetrics.size());
  for (std::size_t i = 0; i < metrics.size(); ++i) {
    EXPECT_EQ(metrics[i].kind, kAllMetrics[i]);
  }
}

TEST(RetrospectiveMetric, MatchesManualComputationOnRawData) {
  const data::PerformanceSeries s("raw", {1.0, 0.9, 0.8, 0.9, 1.0, 1.1});
  // Preserved over [1, 4]: (0.9 + 0.8 + 0.9 + 1.0) * 1 = 3.6.
  EXPECT_NEAR(retrospective_metric(s, MetricKind::kPerformancePreserved, 1, 4), 3.6, 1e-12);
  // Lost: nominal 0.9 * duration 3 - 3.6 = -0.9.
  EXPECT_NEAR(retrospective_metric(s, MetricKind::kPerformanceLost, 1, 4), -0.9, 1e-12);
  // Avg preserved: 3.6 / 3.
  EXPECT_NEAR(retrospective_metric(s, MetricKind::kAvgPreserved, 1, 4), 1.2, 1e-12);
  EXPECT_THROW(retrospective_metric(s, MetricKind::kAvgPreserved, 4, 1),
               std::invalid_argument);
  EXPECT_THROW(retrospective_metric(s, MetricKind::kAvgPreserved, 0, 9),
               std::invalid_argument);
}

TEST(ContinuousMetric, UsesClosedFormAreaExactly) {
  // Quadratic model: Eq. 14 over [a, b] must equal the Eq. 3 antiderivative.
  const QuadraticBathtubModel m;
  const num::Vector p{1.0, -0.2, 0.02};
  const double direct = *m.area_closed_form(p, 3.0, 11.0);
  EXPECT_NEAR(continuous_metric(m, p, MetricKind::kPerformancePreserved, 3.0, 11.0, 5.0,
                                11.0),
              direct, 1e-12);
}

TEST(ContinuousMetric, IdentitiesHold) {
  const QuadraticBathtubModel m;
  const num::Vector p{1.0, -0.2, 0.02};
  const double t_h = 2.0;
  const double t_r = 12.0;
  const double preserved =
      continuous_metric(m, p, MetricKind::kPerformancePreserved, t_h, t_r, 5.0, t_r);
  const double lost =
      continuous_metric(m, p, MetricKind::kPerformanceLost, t_h, t_r, 5.0, t_r);
  const double nominal = m.evaluate(t_h, p);
  EXPECT_NEAR(preserved + lost, nominal * (t_r - t_h), 1e-12);
  const double norm_p =
      continuous_metric(m, p, MetricKind::kNormalizedAvgPreserved, t_h, t_r, 5.0, t_r);
  const double norm_l =
      continuous_metric(m, p, MetricKind::kNormalizedAvgLost, t_h, t_r, 5.0, t_r);
  EXPECT_NEAR(norm_p + norm_l, 1.0, 1e-12);
  const double avg = continuous_metric(m, p, MetricKind::kAvgPreserved, t_h, t_r, 5.0, t_r);
  EXPECT_NEAR(avg, preserved / (t_r - t_h), 1e-12);
}

TEST(ContinuousMetric, DiscreteSumsConvergeToContinuousValues) {
  // Refine the sampling grid: the discrete predictive-metric convention must
  // approach the continuous integral.
  const QuadraticBathtubModel qm;
  auto model = std::make_shared<QuadraticBathtubModel>();
  const num::Vector p{1.0, -0.2, 0.02};
  const double t_h = 10.0;
  const double t_r = 12.0;
  const double continuous =
      continuous_metric(qm, p, MetricKind::kAvgPreserved, t_h, t_r, 5.0, t_r);

  // Note: the paper's Riemann-sum convention (sum over count samples, dt =
  // span/(count-1)) carries a count/(count-1) inflation, so convergence is
  // O(1/count) -- slow but monotone.
  double prev_err = std::numeric_limits<double>::infinity();
  for (int density : {1, 8, 64}) {
    // Grid over [0, 12] with `density` samples per month; holdout covers
    // [10, 12].
    const std::size_t n = static_cast<std::size_t>(12 * density) + 1;
    std::vector<double> times(n);
    std::vector<double> values(n);
    for (std::size_t i = 0; i < n; ++i) {
      times[i] = static_cast<double>(i) / density;
      values[i] = qm.evaluate(times[i], p);
    }
    const std::size_t holdout = static_cast<std::size_t>(2 * density);
    FitResult fit(model, p, data::PerformanceSeries("grid", times, values), holdout);
    const auto mv = predictive_metric(fit, MetricKind::kAvgPreserved);
    const double err = std::fabs(mv.predicted - continuous);
    EXPECT_LT(err, prev_err + 1e-12) << "density " << density;
    prev_err = err;
  }
  EXPECT_LT(prev_err, 0.015);
}

TEST(ContinuousMetric, MixtureFallsBackToQuadrature) {
  const MixtureModel mix(
      {Family::kWeibull, Family::kExponential, RecoveryTrend::kLogarithmic});
  const num::Vector p{12.0, 2.0, 0.06, 0.30};
  const double v =
      continuous_metric(mix, p, MetricKind::kPerformancePreserved, 2.0, 20.0, 9.0, 20.0);
  // Cross-check against dense trapezoid.
  double acc = 0.0;
  const int steps = 20000;
  for (int i = 0; i < steps; ++i) {
    const double a = 2.0 + 18.0 * i / steps;
    const double b = 2.0 + 18.0 * (i + 1) / steps;
    acc += 0.5 * (mix.evaluate(a, p) + mix.evaluate(b, p)) * (b - a);
  }
  EXPECT_NEAR(v, acc, 1e-6);
}

TEST(ContinuousMetric, DegenerateWindowThrows) {
  const QuadraticBathtubModel m;
  const num::Vector p{1.0, -0.2, 0.02};
  EXPECT_THROW(
      continuous_metric(m, p, MetricKind::kAvgPreserved, 5.0, 5.0, 2.0, 5.0),
      std::invalid_argument);
}

TEST(MetricNames, AllKindsHaveLabels) {
  for (MetricKind k : kAllMetrics) {
    EXPECT_NE(to_string(k), "?");
    EXPECT_FALSE(std::string(to_string(k)).empty());
  }
}

TEST(PredictiveMetrics, RelativeErrorIsEq22Magnitude) {
  const auto& ds = data::recession("1981-83");
  const FitResult fit = fit_model("competing-risks", ds.series, ds.holdout);
  for (const MetricValue& m : predictive_metrics(fit)) {
    if (std::fabs(m.actual) > 1e-12) {
      EXPECT_NEAR(m.relative_error, std::fabs((m.actual - m.predicted) / m.actual), 1e-12);
    }
  }
}

}  // namespace
}  // namespace prm::core
