// prm::nn unit tests: MlpSpec naming/geometry, activation kernels against
// scalar references, forward/backward correctness versus hand computation
// and central differences, Adam progress, the deterministic init contract,
// and NeuralModel's ResilienceModel surface (scalar/batch bit parity across
// the generic and native SIMD paths).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <random>
#include <vector>

#include "core/model.hpp"
#include "data/recessions.hpp"
#include "nn/activation.hpp"
#include "nn/adam.hpp"
#include "nn/mlp.hpp"
#include "nn/neural_model.hpp"
#include "nn/train.hpp"
#include "numerics/simd.hpp"
#include "optimize/multistart.hpp"

namespace {

using namespace prm;
using nn::Activation;
using nn::MlpSpec;

MlpSpec spec_6_tanh() { return MlpSpec{{6}, Activation::kTanh}; }

/// Small deterministic weight vector with non-trivial values.
num::Vector test_weights(const MlpSpec& spec, std::uint64_t seed = 42) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> dist(-0.9, 0.9);
  num::Vector w(spec.num_weights());
  for (std::size_t i = 0; i < w.size(); ++i) w[i] = dist(rng);
  return w;
}

// ---------------------------------------------------------------------------
// MlpSpec: names and geometry.

TEST(NnSpec, NameRoundTrip) {
  for (const char* name : {"nn-6-tanh", "nn-6-softplus", "nn-4x4-tanh",
                           "nn-16-relu", "nn-8x4x2-softplus"}) {
    const auto spec = MlpSpec::from_name(name);
    ASSERT_TRUE(spec.has_value()) << name;
    EXPECT_EQ(spec->to_name(), name);
  }
}

TEST(NnSpec, RejectsMalformedNames) {
  for (const char* name :
       {"", "nn-", "nn-6", "nn-6-", "nn--tanh", "nn-6-sigmoid", "quadratic",
        "nn-0-tanh", "nn-17-tanh", "nn-4x4x4x4-tanh", "nn-123-tanh",
        "nn-6x-tanh", "nn-x6-tanh"}) {
    EXPECT_FALSE(MlpSpec::from_name(name).has_value()) << name;
  }
}

TEST(NnSpec, WeightCounts) {
  // 1-6-1 tanh: (1*6 + 6) hidden + (6 + 1) output = 19.
  EXPECT_EQ(MlpSpec::from_name("nn-6-tanh")->num_weights(), 19u);
  // 1-4-4-1: (4 + 4) + (16 + 4) + (4 + 1) = 33.
  EXPECT_EQ(MlpSpec::from_name("nn-4x4-tanh")->num_weights(), 33u);
}

TEST(NnSpec, WeightNamesMatchCountAndAreUnique) {
  const MlpSpec spec = *MlpSpec::from_name("nn-4x4-tanh");
  const std::vector<std::string> names = nn::weight_names(spec);
  ASSERT_EQ(names.size(), spec.num_weights());
  for (std::size_t i = 0; i < names.size(); ++i) {
    for (std::size_t j = i + 1; j < names.size(); ++j) {
      EXPECT_NE(names[i], names[j]);
    }
  }
}

TEST(NnSpec, ValidateRejectsOutOfRangeArchitectures) {
  EXPECT_THROW((MlpSpec{{}, Activation::kTanh}).validate(), std::invalid_argument);
  EXPECT_THROW((MlpSpec{{0}, Activation::kTanh}).validate(), std::invalid_argument);
  EXPECT_THROW((MlpSpec{{17}, Activation::kTanh}).validate(), std::invalid_argument);
  EXPECT_THROW((MlpSpec{{4, 4, 4, 4}, Activation::kTanh}).validate(),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Activations: kernel output versus the libm scalar references.

TEST(NnActivation, MatchesScalarReferences) {
  using G = num::f64x4_generic;
  for (double x : {-20.0, -3.0, -1.0, -0.25, 0.0, 0.25, 1.0, 3.0, 20.0}) {
    const G in = G::broadcast(x);
    EXPECT_NEAR(nn::activation_apply(Activation::kTanh, in).lane(0), std::tanh(x),
                1e-14)
        << x;
    EXPECT_EQ(nn::activation_apply(Activation::kRelu, in).lane(0),
              std::max(x, 0.0))
        << x;
    EXPECT_NEAR(nn::activation_apply(Activation::kSoftplus, in).lane(0),
                std::log1p(std::exp(-std::abs(x))) + std::max(x, 0.0), 1e-14)
        << x;
  }
}

TEST(NnActivation, DerivativeMatchesFiniteDifference) {
  using G = num::f64x4_generic;
  const double h = 1e-6;
  for (const Activation act :
       {Activation::kTanh, Activation::kRelu, Activation::kSoftplus}) {
    for (double x : {-2.0, -0.5, 0.4, 1.5, 3.0}) {
      const double a = nn::activation_apply(act, G::broadcast(x)).lane(0);
      const double got = nn::activation_derivative(act, G::broadcast(a)).lane(0);
      const double fp = nn::activation_apply(act, G::broadcast(x + h)).lane(0);
      const double fm = nn::activation_apply(act, G::broadcast(x - h)).lane(0);
      EXPECT_NEAR(got, (fp - fm) / (2.0 * h), 1e-6)
          << "act=" << nn::to_string(act) << " x=" << x;
    }
  }
}

// ---------------------------------------------------------------------------
// Forward pass.

TEST(NnForward, MatchesHandComputationOnSingleHiddenUnit) {
  // 1-1-1 tanh net: y = b2 + w2 * tanh(b1 + w1 * x).
  const MlpSpec spec{{1}, Activation::kTanh};
  ASSERT_EQ(spec.num_weights(), 4u);
  const double w1 = 0.7, b1 = -0.2, w2 = 1.3, b2 = 0.05;
  const double w[4] = {w1, b1, w2, b2};
  for (double x : {-1.5, 0.0, 0.8, 2.5}) {
    const double got =
        nn::forward(spec, w, num::f64x4_generic::broadcast(x)).lane(0);
    EXPECT_NEAR(got, b2 + w2 * std::tanh(b1 + w1 * x), 1e-14) << x;
  }
}

TEST(NnForward, PackLanesAreIndependent) {
  const MlpSpec spec = spec_6_tanh();
  const num::Vector w = test_weights(spec);
  const double xs[4] = {-1.0, 0.0, 0.5, 2.0};
  double ys[4];
  nn::forward(spec, w.data(), num::f64x4_generic::load(xs)).store(ys);
  for (std::size_t lane = 0; lane < 4; ++lane) {
    const double solo =
        nn::forward(spec, w.data(), num::f64x4_generic::broadcast(xs[lane]))
            .lane(0);
    EXPECT_EQ(ys[lane], solo) << "lane " << lane;
  }
}

TEST(NnForward, NativePackMatchesGenericBitwise) {
  // The bit-parity contract: the best available native pack must produce
  // exactly the generic reference's bits, lane by lane.
  const double xs[4] = {-2.5, -0.1, 0.7, 3.3};
  for (const char* name : {"nn-6-tanh", "nn-6-softplus", "nn-4x4-relu"}) {
    const MlpSpec spec = *MlpSpec::from_name(name);
    const num::Vector w = test_weights(spec);
    double want[4], got[4];
    nn::forward(spec, w.data(), num::f64x4_generic::load(xs)).store(want);
    nn::forward(spec, w.data(), num::f64x4::load(xs)).store(got);
    for (std::size_t lane = 0; lane < 4; ++lane) {
      EXPECT_EQ(got[lane], want[lane]) << name << " lane " << lane;
    }
  }
}

// ---------------------------------------------------------------------------
// Backward pass.

TEST(NnBackward, GradientMatchesCentralDifferences) {
  for (const char* name : {"nn-6-tanh", "nn-6-softplus", "nn-4x4-tanh"}) {
    const MlpSpec spec = *MlpSpec::from_name(name);
    num::Vector w = test_weights(spec);
    const double x = 0.9;
    using G = num::f64x4_generic;
    G acts[nn::kMaxActivations];
    (void)nn::forward_store(spec, w.data(), G::broadcast(x), acts);
    G gw[nn::kMaxWeights];
    nn::backward(spec, w.data(), acts, G::broadcast(1.0), gw);

    const double h = 1e-6;
    for (std::size_t i = 0; i < spec.num_weights(); ++i) {
      const double saved = w[i];
      w[i] = saved + h;
      const double fp = nn::forward(spec, w.data(), G::broadcast(x)).lane(0);
      w[i] = saved - h;
      const double fm = nn::forward(spec, w.data(), G::broadcast(x)).lane(0);
      w[i] = saved;
      EXPECT_NEAR(gw[i].lane(0), (fp - fm) / (2.0 * h), 1e-6)
          << name << " weight " << i;
    }
  }
}

// ---------------------------------------------------------------------------
// Adam.

TEST(NnAdam, ReducesLossOnASmoothTarget) {
  const MlpSpec spec = spec_6_tanh();
  std::vector<double> x, y;
  for (int i = 0; i <= 40; ++i) {
    const double t = 0.1 * i;
    x.push_back(t);
    y.push_back(1.0 - 0.3 * std::exp(-t) * std::sin(2.0 * t));
  }
  num::Vector w = nn::init_weights(spec, 7);
  const double before = nn::mse_loss(spec, x, y, w);
  nn::AdamOptions adam;
  adam.epochs = 300;
  const double after = nn::adam_train(spec, x, y, w, adam);
  EXPECT_LT(after, before * 0.25);
  EXPECT_NEAR(after, nn::mse_loss(spec, x, y, w), 1e-15);
}

TEST(NnAdam, MiniBatchAlsoConverges) {
  const MlpSpec spec = spec_6_tanh();
  std::vector<double> x, y;
  for (int i = 0; i <= 40; ++i) {
    const double t = 0.1 * i;
    x.push_back(t);
    y.push_back(0.9 + 0.1 * std::tanh(t - 2.0));
  }
  num::Vector w = nn::init_weights(spec, 11);
  const double before = nn::mse_loss(spec, x, y, w);
  nn::AdamOptions adam;
  adam.epochs = 300;
  adam.batch_size = 8;
  adam.shuffle_seed = 123;
  const double after = nn::adam_train(spec, x, y, w, adam);
  EXPECT_LT(after, before * 0.5);
}

// ---------------------------------------------------------------------------
// Deterministic init + training.

TEST(NnInit, SeedFullyDeterminesWeights) {
  const MlpSpec spec = *MlpSpec::from_name("nn-4x4-tanh");
  const num::Vector a = nn::init_weights(spec, 99);
  const num::Vector b = nn::init_weights(spec, 99);
  const num::Vector c = nn::init_weights(spec, 100);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_TRUE(std::isfinite(a[i]));
    EXPECT_LT(std::abs(a[i]), 3.0);  // Glorot radius for these fan sizes
  }
}

TEST(NnTrain, PicksTheBestRestartDeterministically) {
  const MlpSpec spec = spec_6_tanh();
  std::vector<double> x, y;
  for (int i = 0; i <= 30; ++i) {
    x.push_back(0.1 * i);
    y.push_back(1.0 - 0.2 * std::exp(-0.1 * i));
  }
  nn::TrainOptions options;
  options.restarts = 3;
  options.adam.epochs = 150;
  const nn::TrainResult a = nn::train_multistart(spec, x, y, options);
  const nn::TrainResult b = nn::train_multistart(spec, x, y, options);
  EXPECT_EQ(a.weights, b.weights);
  EXPECT_EQ(a.loss, b.loss);
  EXPECT_EQ(a.best_restart, b.best_restart);
  EXPECT_EQ(a.restarts, 3);
  // The winner's loss is <= every single-restart retraining.
  for (int r = 0; r < 3; ++r) {
    nn::TrainOptions solo = options;
    solo.restarts = 1;
    solo.seed = options.seed ^ static_cast<std::uint64_t>(r);
    const nn::TrainResult run = nn::train_multistart(spec, x, y, solo);
    EXPECT_LE(a.loss, run.loss) << "restart " << r;
  }
}

// ---------------------------------------------------------------------------
// NeuralModel: the ResilienceModel surface.

TEST(NnModel, RegistryExposesNeuralFamilies) {
  auto& registry = core::ModelRegistry::instance();
  for (const char* name : {"nn-6-tanh", "nn-6-softplus", "nn-4x4-tanh"}) {
    ASSERT_TRUE(registry.contains(name)) << name;
    const core::ModelPtr model = registry.create(name);
    EXPECT_EQ(model->name(), name);
    EXPECT_EQ(core::model_family(name), "neural");
    EXPECT_EQ(model->parameter_names().size(), model->num_parameters());
  }
  EXPECT_EQ(nn::NeuralModel::from_name("nn-6-sigmoid"), nullptr);
}

TEST(NnModel, EvaluateMatchesEvalBatchBitwise) {
  const core::ModelPtr model = core::ModelRegistry::instance().create("nn-6-tanh");
  const num::Vector w =
      test_weights(*MlpSpec::from_name("nn-6-tanh"), 5);
  const std::vector<double> ts = {0.0, 0.5, 1.0, 2.0, 5.0, 9.0, 17.0};
  std::vector<double> batch(ts.size());
  for (const bool simd : {false, true}) {
    num::set_batch_simd_enabled(simd);
    model->eval_batch(ts, w, batch);
    for (std::size_t i = 0; i < ts.size(); ++i) {
      EXPECT_EQ(batch[i], model->evaluate(ts[i], w)) << "simd=" << simd << " i=" << i;
    }
  }
  num::set_batch_simd_enabled(true);
}

TEST(NnModel, GradientBatchMatchesScalarGradientBitwise) {
  const core::ModelPtr model = core::ModelRegistry::instance().create("nn-4x4-tanh");
  const num::Vector w = test_weights(*MlpSpec::from_name("nn-4x4-tanh"), 3);
  const std::vector<double> ts = {0.0, 0.75, 3.0, 6.0, 12.0};
  num::Matrix jac;
  for (const bool simd : {false, true}) {
    num::set_batch_simd_enabled(simd);
    model->gradient_batch(ts, w, &jac);
    ASSERT_EQ(jac.rows(), ts.size());
    ASSERT_EQ(jac.cols(), w.size());
    for (std::size_t i = 0; i < ts.size(); ++i) {
      const num::Vector g = model->gradient(ts[i], w);
      for (std::size_t j = 0; j < w.size(); ++j) {
        EXPECT_EQ(jac(i, j), g[j]) << "simd=" << simd << " i=" << i << " j=" << j;
      }
    }
  }
  num::set_batch_simd_enabled(true);
}

TEST(NnModel, InitialGuessesTrainOnTheFitWindow) {
  const auto& ds = data::recession("1990-93");
  nn::NeuralModel model(*MlpSpec::from_name("nn-6-tanh"));
  const auto guesses = model.initial_guesses(ds.series.head(ds.series.size() - 2));
  ASSERT_EQ(guesses.size(), 2u);
  EXPECT_EQ(guesses[0].size(), model.num_parameters());
  // The trained start must beat the cold init on the fit window.
  const auto window = ds.series.head(ds.series.size() - 2);
  auto sse = [&](const num::Vector& p) {
    double out = 0.0;
    for (std::size_t i = 0; i < window.size(); ++i) {
      const double r = model.evaluate(window.time(i), p) - window.value(i);
      out += r * r;
    }
    return out;
  };
  EXPECT_LT(sse(guesses[0]), sse(guesses[1]));
}

TEST(NnModel, TuneMultistartCapsExploration) {
  const core::ModelPtr model = core::ModelRegistry::instance().create("nn-6-tanh");
  opt::MultistartOptions options;
  options.sampled_starts = 40;
  options.jitter_per_start = 8;
  model->tune_multistart(options);
  EXPECT_LE(options.sampled_starts, 2);
  EXPECT_LE(options.jitter_per_start, 1);
}

TEST(NnModel, CloneIsIndependentAndEquivalent) {
  nn::NeuralModel model(*MlpSpec::from_name("nn-6-softplus"));
  const auto copy = model.clone();
  EXPECT_EQ(copy->name(), model.name());
  const num::Vector w = test_weights(*MlpSpec::from_name("nn-6-softplus"), 8);
  EXPECT_EQ(copy->evaluate(4.2, w), model.evaluate(4.2, w));
}

}  // namespace
