// prm::wal unit tests: frame codec round trips and corruption detection,
// segment append/scan with torn tails, the log manager's rotation and
// group-commit bookkeeping, fresh-segment-per-boot resumption, and the
// rotate/remove compaction primitives.
#include <gtest/gtest.h>

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "wal/compact.hpp"
#include "wal/crc32.hpp"
#include "wal/log.hpp"
#include "wal/record.hpp"
#include "wal/recovery.hpp"
#include "wal/segment.hpp"

namespace {

using namespace prm;

/// RAII temp directory under TMPDIR; removed (recursively) on destruction.
class TempDir {
 public:
  TempDir() {
    const char* base = std::getenv("TMPDIR");
    path_ = std::string(base != nullptr ? base : "/tmp") + "/prm_wal_XXXXXX";
    if (::mkdtemp(path_.data()) == nullptr) {
      throw std::runtime_error("mkdtemp failed");
    }
  }
  ~TempDir() { remove_tree(path_); }
  const std::string& path() const { return path_; }

  static void remove_tree(const std::string& dir) {
    if (DIR* handle = ::opendir(dir.c_str())) {
      while (const dirent* entry = ::readdir(handle)) {
        const std::string name = entry->d_name;
        if (name == "." || name == "..") continue;
        const std::string child = dir + "/" + name;
        struct stat st{};
        if (::lstat(child.c_str(), &st) == 0 && S_ISDIR(st.st_mode)) {
          remove_tree(child);
        } else {
          ::unlink(child.c_str());
        }
      }
      ::closedir(handle);
    }
    ::rmdir(dir.c_str());
  }

 private:
  std::string path_;
};

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void spit(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

// ---------------------------------------------------------------------------
// CRC32

TEST(Crc32, MatchesKnownVectors) {
  // IEEE 802.3 polynomial check values ("123456789" -> 0xcbf43926).
  EXPECT_EQ(wal::crc32("123456789"), 0xcbf43926u);
  EXPECT_EQ(wal::crc32(""), 0x00000000u);
  EXPECT_EQ(wal::crc32("a"), 0xe8b7be43u);
}

TEST(Crc32, DetectsSingleBitFlips) {
  std::string data = "the quick brown fox jumps over the lazy dog";
  const std::uint32_t clean = wal::crc32(data);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] ^= 0x04;
    EXPECT_NE(wal::crc32(data), clean) << "flip at byte " << i;
    data[i] ^= 0x04;
  }
}

// ---------------------------------------------------------------------------
// Frame codec

TEST(Record, FrameRoundTripsEveryType) {
  for (const auto type :
       {wal::RecordType::kStreamCreate, wal::RecordType::kIngest,
        wal::RecordType::kRefit, wal::RecordType::kRefitFail,
        wal::RecordType::kStreamRemove, wal::RecordType::kAlertRule}) {
    wal::Record original{type, "payload with spaces\nand a newline"};
    const std::string frame = wal::encode_frame(original);
    EXPECT_EQ(frame.size(), wal::kFrameHeaderBytes + original.payload.size());

    wal::Record decoded;
    std::size_t offset = 0;
    EXPECT_EQ(wal::decode_frame(frame, offset, decoded), wal::DecodeStatus::kOk);
    EXPECT_EQ(offset, frame.size());
    EXPECT_EQ(decoded.type, original.type);
    EXPECT_EQ(decoded.payload, original.payload);
  }
}

TEST(Record, EmptyPayloadAndBinaryPayloadRoundTrip) {
  for (const std::string& payload :
       {std::string(), std::string("\0\x01\xff\x7f", 4)}) {
    const std::string frame =
        wal::encode_frame({wal::RecordType::kIngest, payload});
    wal::Record decoded;
    std::size_t offset = 0;
    ASSERT_EQ(wal::decode_frame(frame, offset, decoded), wal::DecodeStatus::kOk);
    EXPECT_EQ(decoded.payload, payload);
  }
}

TEST(Record, CleanEndAndTornTailsAreDistinguished) {
  const std::string frame =
      wal::encode_frame({wal::RecordType::kIngest, "1 1 svc 0 1.0"});

  wal::Record out;
  std::size_t offset = frame.size();
  // Exactly at the end: clean.
  EXPECT_EQ(wal::decode_frame(frame, offset, out), wal::DecodeStatus::kEnd);

  // Every strict prefix of a frame is torn, never kOk and never kEnd.
  for (std::size_t cut = 1; cut < frame.size(); ++cut) {
    offset = 0;
    EXPECT_EQ(wal::decode_frame(std::string_view(frame).substr(0, cut), offset, out),
              wal::DecodeStatus::kTorn)
        << "cut at " << cut;
    EXPECT_EQ(offset, 0u);
  }
}

TEST(Record, CorruptedBytesReadAsTorn) {
  const std::string clean =
      wal::encode_frame({wal::RecordType::kRefit, "some fit payload"});
  wal::Record out;
  for (std::size_t i = 0; i < clean.size(); ++i) {
    std::string bad = clean;
    bad[i] = static_cast<char>(bad[i] ^ 0x40);
    std::size_t offset = 0;
    const auto status = wal::decode_frame(bad, offset, out);
    // Flipping a length byte may also make the frame "incomplete"; either
    // way it must not decode as a clean record.
    EXPECT_EQ(status, wal::DecodeStatus::kTorn) << "corrupt byte " << i;
  }
}

TEST(Record, TornFrameNeverHidesEarlierCleanFrames) {
  const std::string a = wal::encode_frame({wal::RecordType::kIngest, "first"});
  const std::string b = wal::encode_frame({wal::RecordType::kIngest, "second"});
  const std::string data = a + b.substr(0, b.size() - 3);

  std::size_t offset = 0;
  wal::Record out;
  ASSERT_EQ(wal::decode_frame(data, offset, out), wal::DecodeStatus::kOk);
  EXPECT_EQ(out.payload, "first");
  EXPECT_EQ(wal::decode_frame(data, offset, out), wal::DecodeStatus::kTorn);
  EXPECT_EQ(offset, a.size());
}

// ---------------------------------------------------------------------------
// Segment files

TEST(Segment, WriteScanRoundTrip) {
  TempDir dir;
  const std::string path = dir.path() + "/wal-0000-00000001.log";
  {
    wal::SegmentWriter writer(path);
    for (int i = 0; i < 10; ++i) {
      writer.append(wal::encode_frame(
          {wal::RecordType::kIngest, "rec " + std::to_string(i)}));
    }
    writer.sync();
  }
  std::vector<std::string> payloads;
  const wal::SegmentScan scan = wal::read_segment(
      path, [&](const wal::Record& r) { payloads.push_back(r.payload); });
  EXPECT_EQ(scan.records, 10u);
  EXPECT_FALSE(scan.torn);
  EXPECT_EQ(scan.clean_bytes, scan.total_bytes);
  ASSERT_EQ(payloads.size(), 10u);
  EXPECT_EQ(payloads.front(), "rec 0");
  EXPECT_EQ(payloads.back(), "rec 9");
}

TEST(Segment, ReopeningResumesAtTheOnDiskSize) {
  TempDir dir;
  const std::string path = dir.path() + "/wal-0000-00000001.log";
  const std::string frame = wal::encode_frame({wal::RecordType::kIngest, "x"});
  {
    wal::SegmentWriter writer(path);
    writer.append(frame);
    EXPECT_EQ(writer.size(), frame.size());
  }
  {
    wal::SegmentWriter writer(path);
    EXPECT_EQ(writer.size(), frame.size());  // resumed, not truncated
    writer.append(frame);
  }
  wal::SegmentScan scan = wal::read_segment(path, [](const wal::Record&) {});
  EXPECT_EQ(scan.records, 2u);
}

TEST(Segment, TruncatedTailIsReportedTornAndPrefixSurvives) {
  TempDir dir;
  const std::string path = dir.path() + "/wal-0000-00000001.log";
  {
    wal::SegmentWriter writer(path);
    writer.append(wal::encode_frame({wal::RecordType::kIngest, "keep me"}));
    writer.append(wal::encode_frame({wal::RecordType::kIngest, "torn off"}));
    writer.sync();
  }
  const std::string bytes = slurp(path);
  spit(path, bytes.substr(0, bytes.size() - 5));  // crash mid final frame

  std::vector<std::string> payloads;
  const wal::SegmentScan scan = wal::read_segment(
      path, [&](const wal::Record& r) { payloads.push_back(r.payload); });
  EXPECT_TRUE(scan.torn);
  EXPECT_EQ(scan.records, 1u);
  ASSERT_EQ(payloads.size(), 1u);
  EXPECT_EQ(payloads[0], "keep me");
  EXPECT_LT(scan.clean_bytes, scan.total_bytes);
}

// ---------------------------------------------------------------------------
// Log manager

wal::WalOptions test_wal_options(const std::string& dir) {
  wal::WalOptions options;
  options.dir = dir;
  options.fsync = wal::FsyncPolicy::kNever;  // unit tests drive sync_all()
  return options;
}

TEST(Wal, SegmentNamesRoundTripAndSortStably) {
  EXPECT_EQ(wal::segment_file_name(0, 1), "wal-0000-00000001.log");
  EXPECT_EQ(wal::segment_file_name(12, 345), "wal-0012-00000345.log");

  TempDir dir;
  for (const char* name : {"wal-0001-00000002.log", "wal-0000-00000010.log",
                           "wal-0000-00000002.log", "not-a-segment.txt",
                           "wal-0000-00000002.log.tmp"}) {
    spit(dir.path() + "/" + name, "");
  }
  const auto segments = wal::list_segments(dir.path());
  ASSERT_EQ(segments.size(), 3u);  // the decoys are ignored
  EXPECT_EQ(segments[0].shard, 0u);
  EXPECT_EQ(segments[0].seq, 2u);
  EXPECT_EQ(segments[1].seq, 10u);  // numeric, not lexicographic order
  EXPECT_EQ(segments[2].shard, 1u);
}

TEST(Wal, AppendsLandInTheRightShardAndCount) {
  TempDir dir;
  wal::Wal log(test_wal_options(dir.path()), 2);
  log.append(0, {wal::RecordType::kIngest, "shard zero"});
  log.append(1, {wal::RecordType::kIngest, "shard one"});
  log.append(1, {wal::RecordType::kIngest, "shard one again"});
  log.sync_all();

  const wal::WalStats stats = log.stats();
  EXPECT_EQ(stats.records, 3u);
  EXPECT_GT(stats.bytes, 0u);
  EXPECT_GE(stats.fsyncs, 1u);

  wal::RecoveryStats rec;
  const auto records = wal::read_all_records(dir.path(), rec);
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0].shard, 0u);
  EXPECT_EQ(records[0].record.payload, "shard zero");
  EXPECT_EQ(records[1].shard, 1u);
  EXPECT_EQ(records[2].record.payload, "shard one again");
  EXPECT_EQ(rec.torn_tails, 0u);
}

TEST(Wal, RotatesAtTheSegmentLimit) {
  TempDir dir;
  wal::WalOptions options = test_wal_options(dir.path());
  options.segment_bytes = 256;  // tiny, to force rotation quickly
  wal::Wal log(options, 1);
  for (int i = 0; i < 50; ++i) {
    log.append(0, {wal::RecordType::kIngest,
                   "padding padding padding " + std::to_string(i)});
  }
  log.sync_all();
  const wal::WalStats stats = log.stats();
  EXPECT_GT(stats.rotations, 0u);
  EXPECT_GT(stats.segments, 1u);
  EXPECT_EQ(stats.segments, wal::list_segments(dir.path()).size());

  // Rotation must not lose or reorder records.
  wal::RecoveryStats rec;
  const auto records = wal::read_all_records(dir.path(), rec);
  ASSERT_EQ(records.size(), 50u);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(records[static_cast<std::size_t>(i)].record.payload,
              "padding padding padding " + std::to_string(i));
  }
}

TEST(Wal, RestartOpensAFreshSegmentPastTheHighestOnDisk) {
  TempDir dir;
  {
    wal::Wal log(test_wal_options(dir.path()), 1);
    log.append(0, {wal::RecordType::kIngest, "before restart"});
    log.sync_all();
  }
  {
    // The restarted writer must never append to the old segment: a torn tail
    // from the "crash" would otherwise sit in the middle of live data.
    wal::Wal log(test_wal_options(dir.path()), 1);
    log.append(0, {wal::RecordType::kIngest, "after restart"});
    log.sync_all();
  }
  const auto segments = wal::list_segments(dir.path());
  ASSERT_EQ(segments.size(), 2u);
  EXPECT_EQ(segments[0].seq + 1, segments[1].seq);

  wal::RecoveryStats rec;
  const auto records = wal::read_all_records(dir.path(), rec);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].record.payload, "before restart");
  EXPECT_EQ(records[1].record.payload, "after restart");
}

TEST(Wal, RotateAllThenRemoveBelowCompactsSealedSegments) {
  TempDir dir;
  wal::Wal log(test_wal_options(dir.path()), 2);
  log.append(0, {wal::RecordType::kIngest, "old a"});
  log.append(1, {wal::RecordType::kIngest, "old b"});

  const std::vector<std::uint64_t> watermarks = log.rotate_all();
  ASSERT_EQ(watermarks.size(), 2u);
  log.append(0, {wal::RecordType::kIngest, "new a"});

  const std::uint64_t removed = log.remove_segments_below(watermarks);
  EXPECT_EQ(removed, 2u);  // both sealed pre-rotation segments

  wal::RecoveryStats rec;
  const auto records = wal::read_all_records(dir.path(), rec);
  ASSERT_EQ(records.size(), 1u);  // only the post-watermark record remains
  EXPECT_EQ(records[0].record.payload, "new a");
  EXPECT_EQ(log.stats().compactions, 1u);
}

TEST(Wal, EmptyActiveSegmentsAreNotRotated) {
  TempDir dir;
  wal::Wal log(test_wal_options(dir.path()), 1);
  const auto w1 = log.rotate_all();  // nothing written: no-op
  const auto w2 = log.rotate_all();
  EXPECT_EQ(w1, w2);
  EXPECT_EQ(log.stats().rotations, 0u);
}

TEST(Wal, AlwaysPolicyFsyncsEveryAppendAndGroupCommitsUnderContention) {
  TempDir dir;
  wal::WalOptions options = test_wal_options(dir.path());
  options.fsync = wal::FsyncPolicy::kAlways;
  wal::Wal log(options, 1);

  log.append(0, {wal::RecordType::kIngest, "solo"});
  EXPECT_GE(log.stats().fsyncs, 1u);

  // Hammer one shard from several threads: every append must return with
  // its bytes durable, and group commit means fsyncs <= records.
  constexpr int kThreads = 4;
  constexpr int kPerThread = 64;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&log, t] {
      for (int i = 0; i < kPerThread; ++i) {
        log.append(0, {wal::RecordType::kIngest,
                       std::to_string(t) + ":" + std::to_string(i)});
      }
    });
  }
  for (auto& thread : threads) thread.join();

  const wal::WalStats stats = log.stats();
  EXPECT_EQ(stats.records, 1u + kThreads * kPerThread);
  EXPECT_LE(stats.fsyncs, stats.records);

  wal::RecoveryStats rec;
  EXPECT_EQ(wal::read_all_records(dir.path(), rec).size(),
            1u + kThreads * kPerThread);
}

TEST(Wal, IntervalPolicyFlushesInTheBackground) {
  TempDir dir;
  wal::WalOptions options = test_wal_options(dir.path());
  options.fsync = wal::FsyncPolicy::kInterval;
  options.fsync_interval_ms = 5;
  wal::Wal log(options, 1);
  log.append(0, {wal::RecordType::kIngest, "flushed eventually"});
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (log.stats().fsyncs == 0 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_GE(log.stats().fsyncs, 1u);
}

TEST(Wal, FsyncPolicyParsesAndRejects) {
  EXPECT_EQ(wal::fsync_policy_from_string("always"), wal::FsyncPolicy::kAlways);
  EXPECT_EQ(wal::fsync_policy_from_string("interval"),
            wal::FsyncPolicy::kInterval);
  EXPECT_EQ(wal::fsync_policy_from_string("never"), wal::FsyncPolicy::kNever);
  EXPECT_STREQ(wal::to_string(wal::FsyncPolicy::kInterval), "interval");
  EXPECT_THROW(wal::fsync_policy_from_string("sometimes"),
               std::invalid_argument);
}

TEST(Wal, AtomicWriteFileReplacesContentCompletely) {
  TempDir dir;
  const std::string path = dir.path() + "/snapshot.prm";
  wal::atomic_write_file(path, "first version\n");
  EXPECT_EQ(slurp(path), "first version\n");
  wal::atomic_write_file(path, "v2\n");  // shorter: no stale tail may survive
  EXPECT_EQ(slurp(path), "v2\n");
  // No temp files left behind.
  std::uint64_t entries = 0;
  if (DIR* handle = ::opendir(dir.path().c_str())) {
    while (const dirent* entry = ::readdir(handle)) {
      const std::string name = entry->d_name;
      if (name != "." && name != "..") ++entries;
    }
    ::closedir(handle);
  }
  EXPECT_EQ(entries, 1u);
}

}  // namespace
