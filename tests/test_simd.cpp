// The SIMD layer's three contracts, each load-bearing for the fit hot path:
//   1. the native pack and the generic (plain-array) pack are bit-identical,
//   2. the vector math functions track libm to a couple of ulp,
//   3. the batch kernels agree with the scalar evaluate()/gradient() paths,
//      and a full fit produces identical parameters with SIMD on or off.
#include "numerics/simd.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "core/fitting.hpp"
#include "core/model.hpp"
#include "data/recessions.hpp"
#include "numerics/simd_math.hpp"

namespace prm {
namespace {

using num::f64x4;
using num::f64x4_generic;

// Bitwise comparison of a native pack against the generic reference pack
// evaluated on the same lanes.
template <typename NativeOp, typename GenericOp>
void expect_bit_parity(const double* lanes, NativeOp&& native_op,
                       GenericOp&& generic_op) {
  double native_out[4];
  double generic_out[4];
  native_op(f64x4::load(lanes)).store(native_out);
  generic_op(f64x4_generic::load(lanes)).store(generic_out);
  EXPECT_EQ(0, std::memcmp(native_out, generic_out, sizeof(native_out)))
      << "lanes " << lanes[0] << " " << lanes[1] << " " << lanes[2] << " "
      << lanes[3] << " -> native " << native_out[0] << " generic "
      << generic_out[0];
}

TEST(Simd, PackArithmeticMatchesGenericBitForBit) {
  const double a[4] = {1.25, -3.5, 0.0, 1e-300};
  const double b[4] = {2.0, 0.3, -1.0, 7.25e5};
  expect_bit_parity(a, [&](auto x) { return x + decltype(x)::load(b); },
                    [&](auto x) { return x + decltype(x)::load(b); });
  expect_bit_parity(a, [&](auto x) { return x - decltype(x)::load(b); },
                    [&](auto x) { return x - decltype(x)::load(b); });
  expect_bit_parity(a, [&](auto x) { return x * decltype(x)::load(b); },
                    [&](auto x) { return x * decltype(x)::load(b); });
  expect_bit_parity(a, [&](auto x) { return x / decltype(x)::load(b); },
                    [&](auto x) { return x / decltype(x)::load(b); });
  expect_bit_parity(a, [](auto x) { return -x; }, [](auto x) { return -x; });
  expect_bit_parity(a, [&](auto x) { return max(x, decltype(x)::load(b)); },
                    [&](auto x) { return max(x, decltype(x)::load(b)); });
  expect_bit_parity(a, [&](auto x) { return min(x, decltype(x)::load(b)); },
                    [&](auto x) { return min(x, decltype(x)::load(b)); });
}

TEST(Simd, SelectAndComparisonsMatchGeneric) {
  const double a[4] = {-1.0, 0.0, 2.0, -0.0};
  const double b[4] = {1.0, 0.0, -2.0, 0.0};
  expect_bit_parity(
      a,
      [&](auto x) {
        auto y = decltype(x)::load(b);
        return select(cmp_gt(x, y), x, y);
      },
      [&](auto x) {
        auto y = decltype(x)::load(b);
        return select(cmp_gt(x, y), x, y);
      });
  expect_bit_parity(
      a,
      [&](auto x) { return select(cmp_le(x, decltype(x)::broadcast(0.0)), x,
                                  decltype(x)::broadcast(9.0)); },
      [&](auto x) { return select(cmp_le(x, decltype(x)::broadcast(0.0)), x,
                                  decltype(x)::broadcast(9.0)); });
}

TEST(Simd, VectorMathMatchesGenericBitForBit) {
  // The whole point of the layer: simd_exp & friends run the same IEEE ops
  // on every backend, so enabling SIMD can never change a fit result bit.
  std::vector<double> probes;
  for (double x = -30.0; x <= 30.0; x += 0.37) probes.push_back(x);
  probes.insert(probes.end(), {-708.0, -1e-12, 0.0, 1e-12, 700.0});
  for (std::size_t i = 0; i + 4 <= probes.size(); i += 4) {
    expect_bit_parity(probes.data() + i,
                      [](auto x) { return simd_exp(x); },
                      [](auto x) { return simd_exp(x); });
    expect_bit_parity(probes.data() + i,
                      [](auto x) { return simd_expm1(x); },
                      [](auto x) { return simd_expm1(x); });
  }
  for (double x = 0.01; x < 100.0; x *= 1.7) {
    const double lanes[4] = {x, x * 1.03, x * 9.7, x * 0.31};
    expect_bit_parity(lanes, [](auto v) { return simd_log(v); },
                      [](auto v) { return simd_log(v); });
    expect_bit_parity(lanes, [](auto v) { return simd_log1p(v); },
                      [](auto v) { return simd_log1p(v); });
  }
}

TEST(Simd, VectorMathTracksLibm) {
  // Accuracy against libm: a few ulp is fine (the kernels are documented as
  // agreeing with the scalar path to ~1e-15 relative, not bit-exactly).
  for (double x = -40.0; x <= 40.0; x += 0.173) {
    const double got = num::simd_exp(f64x4::broadcast(x)).lane(0);
    EXPECT_NEAR(got, std::exp(x), 4e-15 * std::exp(x)) << "exp " << x;
    const double gotm1 = num::simd_expm1(f64x4::broadcast(x)).lane(1);
    EXPECT_NEAR(gotm1, std::expm1(x), 4e-15 * (std::fabs(std::expm1(x)) + 1.0))
        << "expm1 " << x;
  }
  for (double x = 1e-6; x < 1e6; x *= 1.83) {
    const double got = num::simd_log(f64x4::broadcast(x)).lane(2);
    EXPECT_NEAR(got, std::log(x), 4e-15 * (std::fabs(std::log(x)) + 1.0))
        << "log " << x;
  }
  for (double x = 0.25; x < 50.0; x *= 1.31) {
    for (double k : {0.5, 1.0, 2.7}) {
      const double got = num::simd_pow(f64x4::broadcast(x), f64x4::broadcast(k)).lane(3);
      EXPECT_NEAR(got, std::pow(x, k), 8e-15 * std::pow(x, k))
          << "pow " << x << "^" << k;
    }
  }
}

// All registered models: eval_batch must agree with pointwise evaluate() to
// ~1e-14 relative (bathtub kernels are bit-identical; the mixture kernels
// respell pow(r,k) as exp(k log r), which costs a few ulp).
TEST(Simd, EvalBatchMatchesScalarEvaluate) {
  const auto& ds = data::recession("1990-93");
  for (const std::string& name : core::ModelRegistry::instance().names()) {
    const core::ModelPtr model = core::ModelRegistry::instance().create(name);
    const num::Vector params = model->initial_guesses(ds.series).front();
    std::vector<double> batch(ds.series.size());
    model->eval_batch(ds.series.times(), params, batch);
    for (std::size_t i = 0; i < ds.series.size(); ++i) {
      const double scalar = model->evaluate(ds.series.time(i), params);
      EXPECT_NEAR(batch[i], scalar, 1e-13 * (std::fabs(scalar) + 1.0))
          << name << " at t=" << ds.series.time(i);
    }
  }
}

TEST(Simd, GradientBatchMatchesScalarGradient) {
  const auto& ds = data::recession("1990-93");
  for (const std::string& name : core::ModelRegistry::instance().names()) {
    const core::ModelPtr model = core::ModelRegistry::instance().create(name);
    const num::Vector params = model->initial_guesses(ds.series).front();
    num::Matrix jac;
    model->gradient_batch(ds.series.times(), params, &jac);
    ASSERT_EQ(jac.rows(), ds.series.size());
    ASSERT_EQ(jac.cols(), model->num_parameters());
    for (std::size_t i = 0; i < ds.series.size(); i += 7) {
      const num::Vector g = model->gradient(ds.series.time(i), params);
      for (std::size_t c = 0; c < g.size(); ++c) {
        EXPECT_NEAR(jac(i, c), g[c], 1e-10 * (std::fabs(g[c]) + 1.0))
            << name << " dP/dp" << c << " at t=" << ds.series.time(i);
      }
    }
  }
}

// RAII: restore the global SIMD toggle even if an assertion fails out.
struct ScopedSimdOff {
  ScopedSimdOff() { num::set_batch_simd_enabled(false); }
  ~ScopedSimdOff() { num::set_batch_simd_enabled(true); }
};

TEST(Simd, BatchKernelsIdenticalWithSimdDisabled) {
  const auto& ds = data::recession("2007-09");
  for (const std::string& name :
       {std::string("mix-wei-wei-log"), std::string("quadratic"),
        std::string("competing-risks"), std::string("mix-exp-wei-log")}) {
    const core::ModelPtr model = core::ModelRegistry::instance().create(name);
    const num::Vector params = model->initial_guesses(ds.series).front();
    std::vector<double> fast(ds.series.size());
    std::vector<double> slow(ds.series.size());
    num::Matrix jac_fast;
    num::Matrix jac_slow;
    model->eval_batch(ds.series.times(), params, fast);
    model->gradient_batch(ds.series.times(), params, &jac_fast);
    {
      ScopedSimdOff off;
      model->eval_batch(ds.series.times(), params, slow);
      model->gradient_batch(ds.series.times(), params, &jac_slow);
    }
    EXPECT_EQ(0, std::memcmp(fast.data(), slow.data(), fast.size() * sizeof(double)))
        << name;
    ASSERT_EQ(jac_fast.rows(), jac_slow.rows());
    EXPECT_EQ(0, std::memcmp(jac_fast.data(), jac_slow.data(),
                             jac_fast.rows() * jac_fast.cols() * sizeof(double)))
        << name;
  }
}

TEST(Simd, FitParametersIdenticalWithSimdDisabled) {
  // The acceptance-level parity check: a full multistart fit lands on the
  // same parameters whether the kernels run the native or the generic pack.
  const auto& ds = data::recession("1990-93");
  const core::FitResult with_simd =
      core::fit_model("mix-wei-wei-log", ds.series, ds.holdout);
  num::Vector params_off;
  double sse_off = 0.0;
  {
    ScopedSimdOff off;
    const core::FitResult without =
        core::fit_model("mix-wei-wei-log", ds.series, ds.holdout);
    params_off = without.parameters();
    sse_off = without.sse;
  }
  ASSERT_EQ(with_simd.parameters().size(), params_off.size());
  for (std::size_t i = 0; i < params_off.size(); ++i) {
    EXPECT_DOUBLE_EQ(with_simd.parameters()[i], params_off[i]) << "p" << i;
  }
  EXPECT_DOUBLE_EQ(with_simd.sse, sse_off);
}

TEST(Simd, BackendNameIsKnown) {
  const std::string backend = num::simd_backend();
  EXPECT_TRUE(backend == "avx" || backend == "sse2" || backend == "neon" ||
              backend == "scalar")
      << backend;
}

}  // namespace
}  // namespace prm
