// serve::http framing: incremental request parsing (byte-by-byte feeds,
// bodies, pipelining, keep-alive semantics), limit violations mapped to the
// right status codes, response serialization round trips, and header-block
// parsing edge cases. No sockets here -- the parsers are pure functions of
// the byte stream.
#include <gtest/gtest.h>

#include <map>
#include <string>

#include "serve/http.hpp"

namespace {

using namespace prm::serve::http;

TEST(RequestParser, ParsesSimpleGet) {
  RequestParser parser;
  EXPECT_TRUE(parser.feed("GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n"));
  ASSERT_TRUE(parser.done());
  const Request& request = parser.request();
  EXPECT_EQ(request.method, "GET");
  EXPECT_EQ(request.target, "/healthz");
  EXPECT_EQ(request.query, "");
  EXPECT_EQ(request.version, "HTTP/1.1");
  EXPECT_TRUE(request.body.empty());
  EXPECT_TRUE(request.keep_alive());
}

TEST(RequestParser, HandlesOneByteAtATimeFeeds) {
  const std::string wire =
      "POST /v1/fit?debug=1 HTTP/1.1\r\n"
      "Content-Type: application/json\r\n"
      "Content-Length: 13\r\n"
      "\r\n"
      "{\"series\":{}}";
  RequestParser parser;
  for (std::size_t i = 0; i < wire.size(); ++i) {
    const bool complete = parser.feed(wire.substr(i, 1));
    EXPECT_FALSE(parser.failed()) << "at byte " << i;
    EXPECT_EQ(complete, i + 1 == wire.size());
  }
  ASSERT_TRUE(parser.done());
  EXPECT_EQ(parser.request().target, "/v1/fit");
  EXPECT_EQ(parser.request().query, "debug=1");
  EXPECT_EQ(parser.request().body, "{\"series\":{}}");
}

TEST(RequestParser, LowercasesAndTrimsHeaders) {
  RequestParser parser;
  parser.feed("GET / HTTP/1.1\r\nX-Custom-THING:   spaced value  \r\n\r\n");
  ASSERT_TRUE(parser.done());
  const std::string* value = parser.request().header("x-custom-thing");
  ASSERT_NE(value, nullptr);
  EXPECT_EQ(*value, "spaced value");
  EXPECT_NE(parser.request().header("X-CUSTOM-thing"), nullptr);  // lookup case-blind
  EXPECT_EQ(parser.request().header("absent"), nullptr);
}

TEST(RequestParser, PipelinedRequestsSurviveNext) {
  RequestParser parser;
  parser.feed(
      "POST /a HTTP/1.1\r\nContent-Length: 2\r\n\r\nhi"
      "GET /b HTTP/1.1\r\n\r\n");
  ASSERT_TRUE(parser.done());
  EXPECT_EQ(parser.request().target, "/a");
  EXPECT_EQ(parser.request().body, "hi");
  parser.next();
  // The second message was already buffered; next() must finish it without
  // more feed() data.
  ASSERT_TRUE(parser.done());
  EXPECT_EQ(parser.request().target, "/b");
  parser.next();
  EXPECT_FALSE(parser.done());
  EXPECT_TRUE(parser.idle());
}

TEST(RequestParser, KeepAliveSemanticsPerVersion) {
  struct Case {
    const char* wire;
    bool expected;
  } cases[] = {
      {"GET / HTTP/1.1\r\n\r\n", true},
      {"GET / HTTP/1.1\r\nConnection: close\r\n\r\n", false},
      {"GET / HTTP/1.1\r\nConnection: Close\r\n\r\n", false},
      {"GET / HTTP/1.0\r\n\r\n", false},
      {"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n", true},
  };
  for (const Case& c : cases) {
    RequestParser parser;
    parser.feed(c.wire);
    ASSERT_TRUE(parser.done()) << c.wire;
    EXPECT_EQ(parser.request().keep_alive(), c.expected) << c.wire;
  }
}

TEST(RequestParser, MalformedRequestLineFailsWith400) {
  const char* bad[] = {
      "GET\r\n\r\n",
      "GET /\r\n\r\n",
      "GET / HTTP/2.0\r\n\r\n",
      "GET / HTTP/1.1\r\nno-colon-here\r\n\r\n",
      "GET / HTTP/1.1\r\nContent-Length: banana\r\n\r\n",
      "GET / HTTP/1.1\r\nContent-Length: -4\r\n\r\n",
  };
  for (const char* wire : bad) {
    RequestParser parser;
    parser.feed(wire);
    EXPECT_TRUE(parser.failed()) << wire;
    EXPECT_EQ(parser.error_status(), 400) << wire;
    EXPECT_FALSE(parser.error().empty()) << wire;
  }
}

TEST(RequestParser, OversizedHeaderBlockFailsWith431) {
  ParserLimits limits;
  limits.max_header_bytes = 128;
  RequestParser parser(limits);
  std::string wire = "GET / HTTP/1.1\r\nX-Big: ";
  wire.append(512, 'a');
  wire += "\r\n\r\n";
  parser.feed(wire);
  ASSERT_TRUE(parser.failed());
  EXPECT_EQ(parser.error_status(), 431);
}

TEST(RequestParser, OversizedBodyFailsWith413) {
  ParserLimits limits;
  limits.max_body_bytes = 8;
  RequestParser parser(limits);
  parser.feed("POST / HTTP/1.1\r\nContent-Length: 9\r\n\r\n");
  ASSERT_TRUE(parser.failed());  // rejected from the declared length alone
  EXPECT_EQ(parser.error_status(), 413);
}

TEST(RequestParser, ChunkedTransferEncodingFailsWith501) {
  RequestParser parser;
  parser.feed("POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n");
  ASSERT_TRUE(parser.failed());
  EXPECT_EQ(parser.error_status(), 501);
}

TEST(RequestParser, FeedAfterFailureStaysFailed) {
  RequestParser parser;
  parser.feed("BROKEN\r\n\r\n");
  ASSERT_TRUE(parser.failed());
  EXPECT_FALSE(parser.feed("GET / HTTP/1.1\r\n\r\n"));
  EXPECT_TRUE(parser.failed());
}

TEST(ResponseRoundTrip, SerializeThenParse) {
  Response response = Response::json(200, "{\"status\":\"ok\"}");
  response.headers["x-marker"] = "42";
  const std::string wire = serialize(response, /*keep_alive=*/true);
  EXPECT_NE(wire.find("HTTP/1.1 200 OK\r\n"), std::string::npos);
  EXPECT_NE(wire.find("Connection: keep-alive"), std::string::npos);

  ResponseParser parser;
  EXPECT_TRUE(parser.feed(wire));
  ASSERT_TRUE(parser.done());
  EXPECT_EQ(parser.response().status, 200);
  EXPECT_EQ(parser.response().body, "{\"status\":\"ok\"}");
  const auto& headers = parser.response().headers;
  EXPECT_EQ(headers.at("x-marker"), "42");
  EXPECT_EQ(headers.at("content-type"), "application/json");
  EXPECT_EQ(headers.at("content-length"), std::to_string(response.body.size()));
}

TEST(ResponseRoundTrip, CloseVariantAndErrorStatuses) {
  const std::string wire = serialize(Response::json(503, "{}"), /*keep_alive=*/false);
  EXPECT_NE(wire.find("HTTP/1.1 503 Service Unavailable\r\n"), std::string::npos);
  EXPECT_NE(wire.find("Connection: close"), std::string::npos);
  EXPECT_EQ(reason_phrase(404), "Not Found");
  EXPECT_EQ(reason_phrase(418), "Unknown");  // unmapped codes get a fallback
}

TEST(RequestSerialize, ClientSideWireFormat) {
  Request request;
  request.method = "POST";
  request.target = "/v1/fit";
  request.body = "{}";
  request.headers["content-type"] = "application/json";
  const std::string wire = serialize(request, "127.0.0.1:8080");
  EXPECT_EQ(wire.rfind("POST /v1/fit HTTP/1.1\r\n", 0), 0u) << wire;
  EXPECT_NE(wire.find("Host: 127.0.0.1:8080"), std::string::npos);
  EXPECT_NE(wire.find("Content-Length: 2"), std::string::npos);
  EXPECT_EQ(wire.substr(wire.size() - 6), "\r\n\r\n{}");

  // And the server-side parser accepts what the client emits.
  RequestParser parser;
  parser.feed(wire);
  ASSERT_TRUE(parser.done());
  EXPECT_EQ(parser.request().body, "{}");
}

TEST(RequestParser, ReleaseRequestMovesMessageOut) {
  RequestParser parser;
  parser.feed("POST /x HTTP/1.1\r\nContent-Length: 5\r\n\r\nhelloGET /next HTTP/1.1\r\n\r\n");
  ASSERT_TRUE(parser.done());
  Request request = parser.release_request();
  EXPECT_EQ(request.target, "/x");
  EXPECT_EQ(request.body, "hello");
  // The parser is still done() and next() re-arms it with the pipelined bytes.
  EXPECT_TRUE(parser.done());
  parser.next();
  ASSERT_TRUE(parser.done());
  EXPECT_EQ(parser.request().target, "/next");
}

TEST(ResponseParser, StartedAndHeaderCompleteTrackTruncationPoint) {
  // The client uses these to tell a stale keep-alive close (no bytes at all:
  // retryable) from a truncated response (bytes arrived: not retryable).
  ResponseParser parser;
  EXPECT_FALSE(parser.started());
  EXPECT_FALSE(parser.header_complete());

  parser.feed("HTTP/1.1 200 OK\r\nContent-Le");  // mid-headers
  EXPECT_TRUE(parser.started());
  EXPECT_FALSE(parser.header_complete());

  parser.feed("ngth: 10\r\n\r\nabc");  // headers done, body short
  EXPECT_TRUE(parser.started());
  EXPECT_TRUE(parser.header_complete());
  EXPECT_FALSE(parser.done());

  parser.feed("defghij");
  EXPECT_TRUE(parser.done());
  EXPECT_EQ(parser.response().body, "abcdefghij");
  parser.next();
  EXPECT_FALSE(parser.started());  // fresh exchange, nothing consumed yet
  EXPECT_FALSE(parser.header_complete());
}

TEST(HeaderBlock, ParsesAndRejects) {
  std::map<std::string, std::string> headers;
  EXPECT_TRUE(parse_header_block("A: 1\r\nB-Long: two words\r\n", headers));
  EXPECT_EQ(headers.at("a"), "1");
  EXPECT_EQ(headers.at("b-long"), "two words");

  headers.clear();
  EXPECT_TRUE(parse_header_block("", headers));
  EXPECT_TRUE(headers.empty());

  EXPECT_FALSE(parse_header_block("no colon\r\n", headers));
  EXPECT_FALSE(parse_header_block(": empty name\r\n", headers));
}

}  // namespace
