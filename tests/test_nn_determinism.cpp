// NeuralModel determinism acceptance: training and full fit_model pipelines
// must be bit-identical at every thread count (exact EXPECT_EQ, in the
// style of test_parallel_determinism.cpp), and a WAL-backed monitor fitting
// an nn model must recover to a byte-identical snapshot. These are the
// contracts that make the nn family safe under prm::par and prm::wal.
#include <gtest/gtest.h>

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/fitting.hpp"
#include "core/model.hpp"
#include "data/recessions.hpp"
#include "live/monitor.hpp"
#include "nn/mlp.hpp"
#include "nn/neural_model.hpp"
#include "nn/train.hpp"

namespace {

using namespace prm;

const std::vector<int> kThreadSettings = {1, 2, 8};

// ---------------------------------------------------------------------------
// train_multistart: restarts under prm::par.

TEST(NnDeterminism, TrainMultistartBitIdenticalAcrossThreadCounts) {
  const nn::MlpSpec spec = *nn::MlpSpec::from_name("nn-6-tanh");
  const auto& ds = data::recession("1990-93");
  std::vector<double> x, y;
  for (std::size_t i = 0; i < ds.series.size(); ++i) {
    x.push_back(nn::input_feature(ds.series.time(i)));
    y.push_back(ds.series.value(i));
  }

  nn::TrainOptions options;
  options.restarts = 8;
  options.adam.epochs = 120;
  options.threads = 1;
  const nn::TrainResult baseline = nn::train_multistart(spec, x, y, options);
  ASSERT_EQ(baseline.weights.size(), spec.num_weights());

  for (const int threads : kThreadSettings) {
    nn::TrainOptions run = options;
    run.threads = threads;
    const nn::TrainResult got = nn::train_multistart(spec, x, y, run);
    EXPECT_EQ(got.loss, baseline.loss) << "threads=" << threads;
    EXPECT_EQ(got.best_restart, baseline.best_restart) << "threads=" << threads;
    ASSERT_EQ(got.weights.size(), baseline.weights.size());
    for (std::size_t i = 0; i < got.weights.size(); ++i) {
      EXPECT_EQ(got.weights[i], baseline.weights[i])
          << "threads=" << threads << " weight " << i;
    }
  }
}

// ---------------------------------------------------------------------------
// fit_model: the full pipeline (train -> multistart LM polish).

TEST(NnDeterminism, FitModelBitIdenticalAcrossThreadCounts) {
  const auto& ds = data::recession("2007-09");

  core::FitOptions options;
  options.multistart.threads = 1;
  const core::FitResult baseline =
      core::fit_model("nn-6-tanh", ds.series, ds.holdout, options);

  for (const int threads : kThreadSettings) {
    core::FitOptions run = options;
    run.multistart.threads = threads;
    const core::FitResult fit =
        core::fit_model("nn-6-tanh", ds.series, ds.holdout, run);
    EXPECT_EQ(fit.sse, baseline.sse) << "threads=" << threads;
    ASSERT_EQ(fit.parameters().size(), baseline.parameters().size());
    for (std::size_t i = 0; i < fit.parameters().size(); ++i) {
      EXPECT_EQ(fit.parameters()[i], baseline.parameters()[i])
          << "threads=" << threads << " param " << i;
    }
  }
}

TEST(NnDeterminism, TrainingThreadsInsideTheModelAreAlsoBitIdentical) {
  // Thread the Adam restarts themselves (TrainOptions::threads) while the
  // surrounding multistart stays serial: still bit-identical.
  const auto& ds = data::recession("1990-93");
  const nn::MlpSpec spec = *nn::MlpSpec::from_name("nn-6-tanh");

  auto fit_with_training_threads = [&](int threads) {
    nn::TrainOptions train;
    train.threads = threads;
    const auto model = std::make_shared<nn::NeuralModel>(spec, train);
    return core::fit_model(*model, ds.series, ds.holdout);
  };

  const core::FitResult baseline = fit_with_training_threads(1);
  for (const int threads : kThreadSettings) {
    const core::FitResult fit = fit_with_training_threads(threads);
    EXPECT_EQ(fit.sse, baseline.sse) << "threads=" << threads;
    for (std::size_t i = 0; i < fit.parameters().size(); ++i) {
      EXPECT_EQ(fit.parameters()[i], baseline.parameters()[i])
          << "threads=" << threads << " param " << i;
    }
  }
}

// ---------------------------------------------------------------------------
// WAL crash-recovery round trip with an nn model.

double smoothstep(double x) {
  if (x <= 0.0) return 0.0;
  if (x >= 1.0) return 1.0;
  return x * x * (3.0 - 2.0 * x);
}

/// Noiseless V-shaped disruption: flat run-in, dip to 0.90, recovery to 1.02.
double v_curve(double t) {
  const double u = t - 16.0;
  if (u <= 0.0) return 1.0;
  if (u <= 10.0) return 1.0 - 0.10 * smoothstep(u / 10.0);
  return 0.90 + 0.12 * smoothstep((u - 10.0) / 30.0);
}

/// RAII temp directory; removed recursively on destruction.
class TempDir {
 public:
  TempDir() {
    const char* base = std::getenv("TMPDIR");
    path_ = std::string(base != nullptr ? base : "/tmp") + "/prm_nn_wal_XXXXXX";
    if (::mkdtemp(path_.data()) == nullptr) throw std::runtime_error("mkdtemp");
  }
  ~TempDir() { remove_tree(path_); }
  const std::string& path() const { return path_; }

  static void remove_tree(const std::string& dir) {
    if (DIR* handle = ::opendir(dir.c_str())) {
      while (const dirent* entry = ::readdir(handle)) {
        const std::string name = entry->d_name;
        if (name == "." || name == "..") continue;
        const std::string child = dir + "/" + name;
        struct stat st{};
        if (::lstat(child.c_str(), &st) == 0 && S_ISDIR(st.st_mode)) {
          remove_tree(child);
        } else {
          ::unlink(child.c_str());
        }
      }
      ::closedir(handle);
    }
    ::rmdir(dir.c_str());
  }

 private:
  std::string path_;
};

live::MonitorOptions nn_monitor_options(const std::string& wal_dir) {
  live::MonitorOptions options;
  options.model = "nn-6-tanh";
  options.refit_every = 8;
  options.min_fit_samples = 21;  // raised to num_weights + 2 internally anyway
  options.threads = 1;
  options.stream.window_capacity = 64;
  options.stream.cusum.baseline = 12;
  options.stream.confirm_samples = 3;
  options.stream.recovery_fraction = 0.98;
  options.wal.dir = wal_dir;
  options.wal.fsync = wal::FsyncPolicy::kNever;  // durability exercised elsewhere
  return options;
}

TEST(NnDeterminism, WalRecoveryReproducesNnFitsByteIdentically) {
  TempDir dir;
  std::string first_snapshot;
  {
    live::Monitor monitor(nn_monitor_options(dir.path()));
    for (std::size_t i = 0; i < 60; ++i) {
      const double t = static_cast<double>(i);
      monitor.ingest("svc", t, v_curve(t));
      monitor.drain();
    }
    const live::StreamSnapshot snap = monitor.snapshot("svc");
    ASSERT_TRUE(snap.has_fit) << "the nn model never fit; widen the window";
    EXPECT_EQ(snap.model, "nn-6-tanh");
    std::ostringstream out;
    monitor.save(out);
    first_snapshot = out.str();
  }  // destructor closes the WAL; nothing was compacted or flushed manually

  const auto recovered = live::Monitor::recover(nn_monitor_options(dir.path()));
  ASSERT_NE(recovered, nullptr);
  std::ostringstream out;
  recovered->save(out);
  EXPECT_EQ(out.str(), first_snapshot)
      << "WAL replay must rebuild nn fits byte-for-byte";

  // The recovered monitor keeps serving: one more sample round-trips.
  recovered->ingest("svc", 60.0, v_curve(60.0));
  recovered->drain();
  const live::StreamSnapshot snap = recovered->snapshot("svc");
  EXPECT_EQ(snap.samples_seen, 61u);
}

// ---------------------------------------------------------------------------
// Monitor save/load with an nn model (no WAL): byte-stable snapshots.

TEST(NnDeterminism, MonitorSaveLoadSaveIsByteStableForNn) {
  live::MonitorOptions options = nn_monitor_options("");
  options.wal.dir.clear();
  live::Monitor original(options);
  for (std::size_t i = 0; i < 60; ++i) {
    const double t = static_cast<double>(i);
    original.ingest("svc", t, v_curve(t));
    original.drain();
  }
  std::ostringstream first;
  original.save(first);

  std::istringstream in(first.str());
  const auto loaded = live::Monitor::load(in, options);
  ASSERT_NE(loaded, nullptr);
  std::ostringstream second;
  loaded->save(second);
  EXPECT_EQ(second.str(), first.str());
}

}  // namespace
