// The determinism contract of the parallel fit engine: every threaded entry
// point (multistart fits, residual bootstrap, Monte Carlo uncertainty,
// rolling-origin validation) must produce BIT-IDENTICAL results at any
// thread count. All comparisons below are exact (EXPECT_EQ on doubles), not
// tolerance-based -- per-index RNG streams plus fixed-order reductions make
// that possible.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/fitting.hpp"
#include "core/rolling.hpp"
#include "core/uncertainty.hpp"
#include "data/recessions.hpp"
#include "stats/bootstrap.hpp"

namespace prm {
namespace {

/// The thread settings every suite compares: serial default, explicit 1,
/// moderate, and oversubscribed (more workers than this box has cores).
const std::vector<int> kThreadSettings{1, 2, 8};

TEST(ParallelDeterminism, MultistartFitParametersAreBitIdentical) {
  const auto& ds = data::recession("1990-93");
  core::FitOptions serial;  // threads = 1 (serial path, no pool involvement)
  const core::FitResult baseline =
      core::fit_model("mix-wei-wei-log", ds.series, ds.holdout, serial);
  ASSERT_TRUE(baseline.success());

  for (const int threads : kThreadSettings) {
    core::FitOptions opts;
    opts.multistart.threads = threads;
    const core::FitResult fit =
        core::fit_model("mix-wei-wei-log", ds.series, ds.holdout, opts);
    ASSERT_TRUE(fit.success()) << "threads = " << threads;
    ASSERT_EQ(fit.parameters().size(), baseline.parameters().size());
    for (std::size_t i = 0; i < fit.parameters().size(); ++i) {
      EXPECT_EQ(fit.parameters()[i], baseline.parameters()[i])
          << "parameter " << i << " differs at threads = " << threads;
    }
    EXPECT_EQ(fit.sse, baseline.sse) << "threads = " << threads;
    EXPECT_EQ(fit.starts_tried, baseline.starts_tried);
  }
}

TEST(ParallelDeterminism, AutoThreadsMatchesSerialToo) {
  const auto& ds = data::recession("2001-05");
  const core::FitResult baseline = core::fit_model("quadratic", ds.series, ds.holdout);
  core::FitOptions opts;
  opts.multistart.threads = 0;  // auto = pool default
  const core::FitResult fit = core::fit_model("quadratic", ds.series, ds.holdout, opts);
  ASSERT_TRUE(fit.success());
  for (std::size_t i = 0; i < fit.parameters().size(); ++i) {
    EXPECT_EQ(fit.parameters()[i], baseline.parameters()[i]);
  }
}

TEST(ParallelDeterminism, BootstrapBandQuantilesAreBitIdentical) {
  // A cheap closed-form "refit" keeps the test fast while still exercising
  // the full per-replicate RNG and ensemble-assembly machinery: fit a mean
  // to the resampled window, predict it everywhere.
  const std::size_t n = 24;
  std::vector<double> observed(n);
  std::vector<double> predicted(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i);
    predicted[i] = 1.0 - 0.4 * std::exp(-0.1 * t);
    observed[i] = predicted[i] + 0.02 * std::sin(3.0 * t);
  }
  const auto refit = [](const std::vector<double>& resampled) {
    double mean = 0.0;
    for (double v : resampled) mean += v;
    mean /= static_cast<double>(resampled.size());
    return std::vector<double>(resampled.size(), mean);
  };

  stats::BootstrapOptions serial;
  serial.replicates = 64;
  const stats::BootstrapResult baseline =
      stats::bootstrap_confidence_band(observed, predicted, predicted, refit, serial);

  for (const int threads : kThreadSettings) {
    stats::BootstrapOptions opts;
    opts.replicates = 64;
    opts.threads = threads;
    const stats::BootstrapResult band =
        stats::bootstrap_confidence_band(observed, predicted, predicted, refit, opts);
    EXPECT_EQ(band.replicates_used, baseline.replicates_used);
    EXPECT_EQ(band.replicates_failed, baseline.replicates_failed);
    ASSERT_EQ(band.band.lower.size(), baseline.band.lower.size());
    for (std::size_t i = 0; i < band.band.lower.size(); ++i) {
      EXPECT_EQ(band.band.lower[i], baseline.band.lower[i]) << "threads = " << threads;
      EXPECT_EQ(band.band.upper[i], baseline.band.upper[i]) << "threads = " << threads;
    }
    EXPECT_EQ(band.band.sigma2, baseline.band.sigma2) << "threads = " << threads;
  }
}

TEST(ParallelDeterminism, UncertaintyIntervalsAreBitIdentical) {
  const auto& ds = data::recession("1990-93");
  const core::FitResult fit = core::fit_model("quadratic", ds.series, ds.holdout);
  ASSERT_TRUE(fit.success());

  core::UncertaintyOptions serial;
  serial.replicates = 16;
  serial.recovery_level = ds.series.value(0);
  const core::UncertaintyResult baseline = core::prediction_uncertainty(fit, serial);

  for (const int threads : kThreadSettings) {
    core::UncertaintyOptions opts;
    opts.replicates = 16;
    opts.recovery_level = ds.series.value(0);
    opts.threads = threads;
    const core::UncertaintyResult u = core::prediction_uncertainty(fit, opts);
    EXPECT_EQ(u.replicates_used, baseline.replicates_used) << "threads = " << threads;
    EXPECT_EQ(u.trough_time.lower, baseline.trough_time.lower);
    EXPECT_EQ(u.trough_time.upper, baseline.trough_time.upper);
    EXPECT_EQ(u.trough_value.lower, baseline.trough_value.lower);
    EXPECT_EQ(u.trough_value.upper, baseline.trough_value.upper);
    EXPECT_EQ(u.recovery_time.lower, baseline.recovery_time.lower);
    EXPECT_EQ(u.recovery_time.upper, baseline.recovery_time.upper);
    ASSERT_EQ(u.metrics.size(), baseline.metrics.size());
    for (std::size_t k = 0; k < u.metrics.size(); ++k) {
      EXPECT_EQ(u.metrics[k].second.lower, baseline.metrics[k].second.lower);
      EXPECT_EQ(u.metrics[k].second.upper, baseline.metrics[k].second.upper);
    }
  }
}

TEST(ParallelDeterminism, RollingOriginPmseCurveIsBitIdentical) {
  const auto& ds = data::recession("1990-93");
  core::RollingOptions serial;
  serial.horizon = 4;
  const core::RollingResult baseline =
      core::rolling_origin("quadratic", ds.series, serial);
  ASSERT_FALSE(baseline.points.empty());

  for (const int threads : kThreadSettings) {
    core::RollingOptions opts;
    opts.horizon = 4;
    opts.threads = threads;
    const core::RollingResult rolled = core::rolling_origin("quadratic", ds.series, opts);
    ASSERT_EQ(rolled.points.size(), baseline.points.size());
    for (std::size_t k = 0; k < rolled.points.size(); ++k) {
      EXPECT_EQ(rolled.points[k].origin, baseline.points[k].origin);
      EXPECT_EQ(rolled.points[k].fit_succeeded, baseline.points[k].fit_succeeded);
      EXPECT_EQ(rolled.points[k].pmse, baseline.points[k].pmse)
          << "origin " << baseline.points[k].origin << " threads " << threads;
      EXPECT_EQ(rolled.points[k].mape, baseline.points[k].mape);
    }
    ASSERT_EQ(rolled.error_by_horizon.size(), baseline.error_by_horizon.size());
    for (std::size_t j = 0; j < rolled.error_by_horizon.size(); ++j) {
      EXPECT_EQ(rolled.error_by_horizon[j], baseline.error_by_horizon[j]);
    }
  }
}

}  // namespace
}  // namespace prm
