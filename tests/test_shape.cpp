#include "data/shape.hpp"

#include <gtest/gtest.h>

#include "data/generator.hpp"

namespace prm::data {
namespace {

TEST(ShapeFeatures, DepthAndTroughFraction) {
  const PerformanceSeries s("x", {1.0, 0.95, 0.9, 0.95, 1.0});
  const ShapeFeatures f = extract_features(s);
  EXPECT_NEAR(f.depth, 0.1, 1e-12);
  EXPECT_NEAR(f.trough_fraction, 0.5, 1e-12);
  EXPECT_TRUE(f.recovered);
  EXPECT_NEAR(f.recovery_ratio, 1.0, 1e-12);
}

TEST(ShapeFeatures, CrashSpeedDetectsSingleStepCollapse) {
  const PerformanceSeries crash("c", {1.0, 0.86, 0.88, 0.9, 0.91, 0.92});
  const ShapeFeatures f = extract_features(crash);
  EXPECT_GT(f.crash_speed, 0.9);  // nearly all the loss in one step
}

TEST(ShapeFeatures, RequiresMinimumLength) {
  const PerformanceSeries tiny("t", {1.0, 0.9});
  EXPECT_THROW(extract_features(tiny), std::invalid_argument);
}

TEST(ClassifyShape, SyntheticShapesRoundTrip) {
  // The generator and classifier must agree on the easy shapes.
  EXPECT_EQ(classify_shape(generate_shape(RecessionShape::kV, 48, 7)), RecessionShape::kV);
  EXPECT_EQ(classify_shape(generate_shape(RecessionShape::kU, 48, 7)), RecessionShape::kU);
  EXPECT_EQ(classify_shape(generate_shape(RecessionShape::kW, 48, 7)), RecessionShape::kW);
  EXPECT_EQ(classify_shape(generate_shape(RecessionShape::kL, 48, 7)), RecessionShape::kL);
}

TEST(ClassifyShape, RealRecessionsMatchDocumentedClassesLoosely) {
  // The two shapes the paper singles out as unfittable must be detected.
  EXPECT_EQ(classify_shape(recession("1980").series), RecessionShape::kW);
  const RecessionShape s2020 = classify_shape(recession("2020-21").series);
  EXPECT_TRUE(s2020 == RecessionShape::kL || s2020 == RecessionShape::kK);
  // And the well-behaved ones must NOT be classified as hard shapes.
  EXPECT_FALSE(is_hard_shape(classify_shape(recession("1990-93").series)));
  EXPECT_FALSE(is_hard_shape(classify_shape(recession("1974-76").series)));
  EXPECT_FALSE(is_hard_shape(classify_shape(recession("2001-05").series)));
}

TEST(IsHardShape, ExactlyWLK) {
  EXPECT_TRUE(is_hard_shape(RecessionShape::kW));
  EXPECT_TRUE(is_hard_shape(RecessionShape::kL));
  EXPECT_TRUE(is_hard_shape(RecessionShape::kK));
  EXPECT_FALSE(is_hard_shape(RecessionShape::kV));
  EXPECT_FALSE(is_hard_shape(RecessionShape::kU));
  EXPECT_FALSE(is_hard_shape(RecessionShape::kJ));
}

TEST(ClassifyShape, MonotoneRecoveryWithoutDipIsNotW) {
  // Smooth V with no noise: exactly one dip.
  const auto s = generate_shape(RecessionShape::kV, 60, 3);
  const ShapeFeatures f = extract_features(s);
  EXPECT_EQ(f.num_dips, 1);
}

}  // namespace
}  // namespace prm::data
