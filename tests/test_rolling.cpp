#include "core/rolling.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/bathtub.hpp"
#include "data/generator.hpp"
#include "data/recessions.hpp"

namespace prm::core {
namespace {

// Exact quadratic data: every origin must forecast perfectly.
data::PerformanceSeries exact_series(std::size_t n) {
  const QuadraticBathtubModel m;
  const num::Vector p{1.0, -0.03, 0.0006};
  std::vector<double> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = m.evaluate(static_cast<double>(i), p);
  return data::PerformanceSeries("exact", std::move(v));
}

TEST(RollingOrigin, PerfectDataGivesZeroErrorEverywhere) {
  RollingOptions opts;
  opts.horizon = 4;
  const RollingResult r = rolling_origin("quadratic", exact_series(30), opts);
  ASSERT_FALSE(r.points.empty());
  for (const RollingPoint& p : r.points) {
    EXPECT_TRUE(p.fit_succeeded);
    EXPECT_LT(p.pmse, 1e-12) << "origin " << p.origin;
  }
  for (double e : r.error_by_horizon) EXPECT_LT(e, 1e-6);
}

TEST(RollingOrigin, OriginsFollowStride) {
  RollingOptions opts;
  opts.min_origin = 6;
  opts.stride = 3;
  opts.horizon = 2;
  const RollingResult r = rolling_origin("quadratic", exact_series(20), opts);
  ASSERT_GE(r.points.size(), 3u);
  EXPECT_EQ(r.points[0].origin, 6u);
  EXPECT_EQ(r.points[1].origin, 9u);
  EXPECT_EQ(r.points[2].origin, 12u);
}

TEST(RollingOrigin, DefaultMinOriginDependsOnModel) {
  const RollingResult r = rolling_origin("quadratic", exact_series(20));
  // quadratic has 3 parameters -> first origin 5.
  EXPECT_EQ(r.points.front().origin, 5u);
}

TEST(RollingOrigin, LastOriginTruncatesHorizon) {
  RollingOptions opts;
  opts.min_origin = 16;
  opts.horizon = 10;
  const RollingResult r = rolling_origin("quadratic", exact_series(20), opts);
  ASSERT_FALSE(r.points.empty());
  // Origin 19 can only be scored on one remaining sample.
  EXPECT_EQ(r.points.back().origin, 19u);
  EXPECT_EQ(r.points.back().abs_errors.size(), 1u);
}

TEST(RollingOrigin, ErrorShrinksWithMoreData) {
  // On a real recession, late origins (seeing the recovery) must beat the
  // earliest origins (seeing only decline) on average.
  const auto& ds = data::recession("1990-93");
  RollingOptions opts;
  opts.min_origin = 8;
  opts.horizon = 5;
  opts.stride = 4;
  const RollingResult r = rolling_origin("competing-risks", ds.series, opts);
  ASSERT_GE(r.points.size(), 5u);
  double early = 0.0;
  double late = 0.0;
  for (std::size_t i = 0; i < 2; ++i) early += r.points[i].pmse;
  for (std::size_t i = r.points.size() - 2; i < r.points.size(); ++i) {
    late += r.points[i].pmse;
  }
  EXPECT_LT(late, early);
}

TEST(RollingOrigin, ErrorGrowsWithHorizon) {
  const auto& ds = data::recession("1981-83");
  RollingOptions opts;
  opts.min_origin = 12;
  opts.horizon = 6;
  opts.stride = 2;
  const RollingResult r = rolling_origin("competing-risks", ds.series, opts);
  // Mean |error| at horizon 6 should exceed that at horizon 1.
  EXPECT_GT(r.error_by_horizon.back(), r.error_by_horizon.front());
}

TEST(RollingOrigin, StableOriginDetection) {
  RollingResult r;
  const auto mk = [](std::size_t origin, double pmse) {
    RollingPoint p;
    p.origin = origin;
    p.pmse = pmse;
    p.fit_succeeded = true;
    return p;
  };
  r.points = {mk(5, 1.0), mk(6, 0.05), mk(7, 0.2), mk(8, 0.03), mk(9, 0.02)};
  EXPECT_EQ(r.stable_origin(0.1), 8u);
  EXPECT_EQ(r.stable_origin(2.0), 5u);
  EXPECT_EQ(r.stable_origin(0.001), std::numeric_limits<std::size_t>::max());
}

TEST(RollingOrigin, InputValidation) {
  RollingOptions bad;
  bad.horizon = 0;
  EXPECT_THROW(rolling_origin("quadratic", exact_series(20), bad), std::invalid_argument);
  RollingOptions bad2;
  bad2.stride = 0;
  EXPECT_THROW(rolling_origin("quadratic", exact_series(20), bad2), std::invalid_argument);
  EXPECT_THROW(rolling_origin("quadratic", exact_series(5), {}), std::invalid_argument);
  EXPECT_THROW(rolling_origin("no-such-model", exact_series(20), {}), std::out_of_range);
}

}  // namespace
}  // namespace prm::core
