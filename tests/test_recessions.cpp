#include "data/recessions.hpp"

#include <gtest/gtest.h>

namespace prm::data {
namespace {

TEST(RecessionCatalog, HasSevenDatasetsInPaperOrder) {
  const auto& cat = recession_catalog();
  ASSERT_EQ(cat.size(), 7u);
  const std::vector<std::string> expected{"1974-76", "1980",    "1981-83", "1990-93",
                                          "2001-05", "2007-09", "2020-21"};
  for (std::size_t i = 0; i < 7; ++i) {
    EXPECT_EQ(cat[i].series.name(), expected[i]);
  }
}

TEST(RecessionCatalog, SampleCountsMatchDesign) {
  for (const auto& d : recession_catalog()) {
    if (d.series.name() == "2020-21") {
      EXPECT_EQ(d.series.size(), 24u);
      EXPECT_EQ(d.holdout, 3u);
    } else {
      EXPECT_EQ(d.series.size(), 48u);
      EXPECT_EQ(d.holdout, 5u);
    }
  }
}

TEST(RecessionCatalog, AllSeriesStartAtNominalPeak) {
  for (const auto& d : recession_catalog()) {
    EXPECT_DOUBLE_EQ(d.series.value(0), 1.0) << d.series.name();
    EXPECT_DOUBLE_EQ(d.series.time(0), 0.0) << d.series.name();
  }
}

TEST(RecessionCatalog, AllSeriesDipBelowNominal) {
  for (const auto& d : recession_catalog()) {
    EXPECT_LT(d.series.trough_value(), 1.0) << d.series.name();
    EXPECT_GT(d.series.trough_index(), 0u) << d.series.name();
  }
}

TEST(RecessionCatalog, ValuesAreSaneEmploymentIndices) {
  for (const auto& d : recession_catalog()) {
    for (double v : d.series.values()) {
      EXPECT_GT(v, 0.8) << d.series.name();
      EXPECT_LT(v, 1.15) << d.series.name();
    }
  }
}

TEST(RecessionCatalog, DocumentedDepthAnchors) {
  // Historical anchors the reconstruction preserves (see DESIGN.md).
  EXPECT_NEAR(recession("2020-21").series.trough_value(), 0.857, 0.01);
  EXPECT_EQ(recession("2020-21").series.trough_index(), 2u);  // two-month collapse
  EXPECT_NEAR(recession("2007-09").series.trough_value(), 0.937, 0.005);
  EXPECT_NEAR(recession("1990-93").series.trough_value(), 0.984, 0.003);
}

TEST(RecessionCatalog, DocumentedShapes) {
  EXPECT_EQ(recession("1980").documented_shape, RecessionShape::kW);
  EXPECT_EQ(recession("2020-21").documented_shape, RecessionShape::kL);
  EXPECT_EQ(recession("1990-93").documented_shape, RecessionShape::kU);
  EXPECT_EQ(recession("1974-76").documented_shape, RecessionShape::kV);
}

TEST(RecessionCatalog, WShaped1980HasTwoDips) {
  // The series recovers to ~nominal around month 13-14 then declines again.
  const auto& s = recession("1980").series;
  const std::size_t trough = s.trough_index();
  EXPECT_GT(trough, 20u);  // global trough is the second dip
  // Interim recovery peak between the dips reaches ~1.0.
  double interim_max = 0.0;
  for (std::size_t i = 8; i < 20; ++i) interim_max = std::max(interim_max, s.value(i));
  EXPECT_GT(interim_max, 0.999);
}

TEST(RecessionCatalog, LookupByNameThrowsForUnknown) {
  EXPECT_THROW(recession("1929"), std::out_of_range);
  EXPECT_NO_THROW(recession("1981-83"));
}

TEST(RecessionCatalog, NamesHelperMatchesCatalog) {
  const auto names = recession_names();
  ASSERT_EQ(names.size(), 7u);
  EXPECT_EQ(names.front(), "1974-76");
  EXPECT_EQ(names.back(), "2020-21");
}

TEST(RecessionShapeNames, ToStringCoversAll) {
  EXPECT_EQ(to_string(RecessionShape::kV), "V");
  EXPECT_EQ(to_string(RecessionShape::kU), "U");
  EXPECT_EQ(to_string(RecessionShape::kW), "W");
  EXPECT_EQ(to_string(RecessionShape::kL), "L");
  EXPECT_EQ(to_string(RecessionShape::kJ), "J");
  EXPECT_EQ(to_string(RecessionShape::kK), "K");
}

}  // namespace
}  // namespace prm::data
